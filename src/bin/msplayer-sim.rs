//! `msplayer-sim` — command-line front end for the simulator.
//!
//! ```sh
//! cargo run --release --bin msplayer-sim -- \
//!     --env testbed --scheduler harmonic --chunk 256K \
//!     --prebuffer 40 --seed 7 --refills 2 --trace
//! ```
//!
//! Runs one seeded session (or a `--runs N` sweep) and prints the QoE
//! summary, optionally with the per-path activity timeline
//! (`--timeline`) and an NDJSON telemetry trace of every session event
//! (`--trace <path>`).

use msplayer::core::chaos::{check_invariants, ChaosPlan};
use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::fleet::{FleetHost, FleetMode, FleetSpec, SelectionPolicy};
use msplayer::core::metrics::{SessionMetrics, TrafficPhase};
use msplayer::core::sim::{run_session, Scenario, SessionHost, StopCondition};
use msplayer::core::trace::render_timeline;
use msplayer::net::PathProfile;
use msplayer::simcore::stats::{median, Running};
use msplayer::simcore::telemetry;
use msplayer::simcore::units::ByteSize;
use msplayer::youtube::Network;

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
struct Options {
    env: String,       // testbed | youtube
    player: String,    // msplayer | wifi | lte
    scheduler: String, // harmonic | ewma | ratio | fixed
    chunk: u64,        // bytes
    prebuffer: f64,
    refills: usize,
    seed: u64,
    runs: u64,
    timeline: bool,
    trace: Option<String>, // NDJSON trace output path
    chaos: String,         // chaos plan / preset; empty = fault-free
    fleet: bool,
    fleet_sessions: u64,
    fleet_mode: FleetMode,
    fleet_policy: SelectionPolicy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            env: "testbed".into(),
            player: "msplayer".into(),
            scheduler: "harmonic".into(),
            chunk: 256 * 1024,
            prebuffer: 40.0,
            refills: 0,
            seed: 2014,
            runs: 1,
            timeline: false,
            trace: None,
            chaos: String::new(),
            fleet: false,
            fleet_sessions: 2_000,
            fleet_mode: FleetMode::Fluid,
            fleet_policy: SelectionPolicy::LoadBalanced,
        }
    }
}

const USAGE: &str = "\
msplayer-sim — run MSPlayer sessions on the deterministic simulator

OPTIONS
    --env <testbed|youtube>        environment profile        [testbed]
    --player <msplayer|wifi|lte>   who streams                [msplayer]
    --scheduler <harmonic|ewma|ratio|fixed>                   [harmonic]
    --chunk <SIZE>                 initial chunk, e.g. 64K/1M [256K]
    --prebuffer <SECS>             pre-buffer target          [40]
    --refills <N>                  steady-state cycles to run [0]
    --seed <N>                     base seed                  [2014]
    --runs <N>                     seeds to sweep             [1]
    --timeline                     print the activity timeline
    --trace <PATH>                 write an NDJSON telemetry trace of
                                   every session event to PATH and print
                                   a one-line telemetry summary on exit
    --chaos <PLAN>                 chaos preset or plan string, e.g.
                                   kitchen-sink or
                                   'skew:+250ms;overload:path=1,from=1s,until=10s'
    --fleet                        run a coupled fleet population instead
                                   of single sessions
    --fleet-sessions <N>           population size               [2000]
    --fleet-mode <fluid|exact>     fleet backend                 [fluid]
    --fleet-policy <cheapest-feasible|load-balanced|qoe-first>
                                   server-selection policy  [load-balanced]
    --help                         this text

Any chaos-corpus case replays in one command:
    msplayer-sim --seed <case seed> --chaos '<case plan>'

Fleet mode couples every session through shared replica capacity
(--chaos fleet plans like capacity-crunch apply fleet-wide); exact mode
runs full per-chunk sessions on the scenario picked by --env/--player:
    msplayer-sim --fleet --fleet-sessions 50000 --fleet-policy qoe-first
    msplayer-sim --fleet --fleet-mode exact --fleet-sessions 16
";

/// Parses a size like `64K`, `1M`, `256K`, or plain bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("bad size {s:?}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opt = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--env" => opt.env = value()?,
            "--player" => opt.player = value()?,
            "--scheduler" => opt.scheduler = value()?,
            "--chunk" => opt.chunk = parse_size(&value()?)?,
            "--prebuffer" => {
                opt.prebuffer = value()?.parse().map_err(|e| format!("--prebuffer: {e}"))?
            }
            "--refills" => opt.refills = value()?.parse().map_err(|e| format!("--refills: {e}"))?,
            "--seed" => opt.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--runs" => opt.runs = value()?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--timeline" => opt.timeline = true,
            "--trace" => opt.trace = Some(value()?),
            "--chaos" => {
                let v = value()?;
                ChaosPlan::preset(&v).map_err(|e| format!("--chaos: {e}"))?;
                opt.chaos = v;
            }
            "--fleet" => opt.fleet = true,
            "--fleet-sessions" => {
                opt.fleet_sessions = value()?
                    .parse()
                    .map_err(|e| format!("--fleet-sessions: {e}"))?
            }
            "--fleet-mode" => {
                let v = value()?;
                opt.fleet_mode = FleetMode::parse(&v)
                    .ok_or_else(|| format!("--fleet-mode: unknown mode {v:?} (fluid, exact)"))?
            }
            "--fleet-policy" => {
                let v = value()?;
                opt.fleet_policy = SelectionPolicy::parse(&v).ok_or_else(|| {
                    format!(
                        "--fleet-policy: unknown policy {v:?} ({})",
                        SelectionPolicy::ALL.map(|p| p.name()).join(", ")
                    )
                })?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    for (field, allowed) in [
        (&opt.env, &["testbed", "youtube"][..]),
        (&opt.player, &["msplayer", "wifi", "lte"][..]),
        (&opt.scheduler, &["harmonic", "ewma", "ratio", "fixed"][..]),
    ] {
        if !allowed.contains(&field.as_str()) {
            return Err(format!("invalid value {field:?}; allowed: {allowed:?}"));
        }
    }
    Ok(opt)
}

fn scenario_for(opt: &Options, seed: u64) -> Scenario {
    let kind = match opt.scheduler.as_str() {
        "ewma" => SchedulerKind::Ewma,
        "ratio" => SchedulerKind::Ratio,
        "fixed" => SchedulerKind::Fixed,
        _ => SchedulerKind::Harmonic,
    };
    let cfg = if opt.player == "msplayer" {
        PlayerConfig::msplayer()
            .with_scheduler(kind)
            .with_initial_chunk(ByteSize::bytes(opt.chunk))
            .with_prebuffer_secs(opt.prebuffer)
    } else {
        PlayerConfig::commercial_single_path(ByteSize::bytes(opt.chunk))
            .with_prebuffer_secs(opt.prebuffer)
    };
    let youtube = opt.env == "youtube";
    let mut scenario = match (youtube, opt.player.as_str()) {
        (false, "msplayer") => Scenario::testbed_msplayer(seed, cfg),
        (true, "msplayer") => Scenario::youtube_msplayer(seed, cfg),
        (false, "wifi") => {
            Scenario::testbed_single_path(seed, PathProfile::wifi_testbed(), Network::Wifi, cfg)
        }
        (true, "wifi") => {
            Scenario::youtube_single_path(seed, PathProfile::wifi_youtube(), Network::Wifi, cfg)
        }
        (false, _) => {
            Scenario::testbed_single_path(seed, PathProfile::lte_testbed(), Network::Cellular, cfg)
        }
        (true, _) => {
            Scenario::youtube_single_path(seed, PathProfile::lte_youtube(), Network::Cellular, cfg)
        }
    };
    scenario.stop = if opt.refills > 0 {
        StopCondition::AfterRefills(opt.refills)
    } else {
        StopCondition::PrebufferDone
    };
    scenario
}

/// Runs one seeded session, layering the chaos plan (if any) onto the
/// scenario's session spec without touching the scenario itself.
fn run_one(opt: &Options, seed: u64) -> SessionMetrics {
    let scenario = scenario_for(opt, seed);
    if opt.chaos.is_empty() {
        return run_session(&scenario);
    }
    let plan = ChaosPlan::preset(&opt.chaos).expect("plan validated during arg parsing");
    let spec = scenario.session_spec().with_chaos(plan);
    match SessionHost::new(scenario.service_spec()).run(&spec) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("invalid session under chaos plan {:?}: {e}", opt.chaos);
            std::process::exit(2);
        }
    }
}

/// Builds the fleet spec implied by the CLI options: fluid mode uses the
/// default mixed-access population, exact mode drives full per-chunk
/// sessions of the `--env`/`--player` scenario.
fn fleet_spec_for(opt: &Options) -> FleetSpec {
    let mut spec = match opt.fleet_mode {
        FleetMode::Fluid => FleetSpec::fluid(opt.seed, opt.fleet_sessions),
        FleetMode::Exact => FleetSpec::exact(scenario_for(opt, opt.seed), opt.fleet_sessions),
    };
    spec.policy = opt.fleet_policy;
    if !opt.chaos.is_empty() {
        spec.chaos =
            Some(ChaosPlan::preset(&opt.chaos).expect("plan validated during arg parsing"));
    }
    spec
}

/// Runs the coupled fleet population and prints its summary; returns the
/// exit code.
fn run_fleet_mode(opt: &Options) -> i32 {
    let spec = fleet_spec_for(opt);
    let mut host = match FleetHost::new(spec) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("invalid fleet spec: {e}");
            return 2;
        }
    };
    let m = host.run();
    let (cost, qoe) = m.cost_qoe();
    println!(
        "fleet ({}, {}): {} sessions, peak {} concurrent, {} events",
        m.mode.name(),
        m.policy.name(),
        m.sessions,
        m.peak_concurrent,
        m.events
    );
    println!(
        "  completed {}, rejected {}, stalled {} ({:.1}s total stall)",
        m.completed, m.rejected, m.stalled_sessions, m.total_stall_secs
    );
    println!(
        "  startup p50 {:.2}s p95 {:.2}s, served {:.2} GB",
        m.startup_p50_secs,
        m.startup_p95_secs,
        m.total_served_bytes as f64 / 1e9
    );
    println!("  cost {cost:.2}, mean QoE {qoe:.2}");
    for s in &m.servers {
        let mean_util = if s.utilization.is_empty() {
            0.0
        } else {
            s.utilization.iter().sum::<f64>() / s.utilization.len() as f64
        };
        println!(
            "  server {}: peak {} sessions, mean util {:.1}%, served {:.2} GB, cost {:.2}",
            s.server,
            s.peak_sessions,
            mean_util * 100.0,
            s.served_bytes as f64 / 1e9,
            s.cost
        );
    }
    for b in m.rebuffer_vs_load.iter().filter(|b| b.sessions > 0) {
        println!(
            "  load {:.1}-{:.1}: {} sessions, stall fraction {:.3}, {} rejected",
            b.demand_lo,
            b.demand_hi,
            b.sessions,
            b.stall_fraction(),
            b.rejected
        );
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == USAGE { 0 } else { 2 });
        }
    };
    if opt.trace.is_some() {
        telemetry::set_enabled(true);
        telemetry::set_trace_enabled(true);
    }
    if opt.fleet {
        std::process::exit(run_fleet_mode(&opt));
    }

    let mut prebuffer_stats = Running::new();
    let mut prebuffer_samples = Vec::new();
    let mut chaos_violations = 0usize;
    for run in 0..opt.runs {
        let seed = opt.seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let m = run_one(&opt, seed);
        if !opt.chaos.is_empty() {
            let violations = check_invariants(&m);
            if violations.is_empty() {
                println!(
                    "chaos (seed {seed}, plan {:?}): all invariants hold",
                    opt.chaos
                );
            } else {
                chaos_violations += violations.len();
                println!(
                    "chaos (seed {seed}, plan {:?}): {} violation(s)",
                    opt.chaos,
                    violations.len()
                );
                for v in &violations {
                    println!("  {v}");
                }
            }
        }
        if let Some(t) = m.prebuffer_time() {
            prebuffer_stats.push(t.as_secs_f64());
            prebuffer_samples.push(t.as_secs_f64());
        }
        if opt.runs == 1 {
            println!(
                "session (seed {seed}): {} chunks, pre-buffer {}",
                m.chunks.len(),
                m.prebuffer_time()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
            for (i, r) in m.refills.iter().enumerate() {
                println!(
                    "  refill {}: {:.2} s ({:.1} MB)",
                    i + 1,
                    r.duration().as_secs_f64(),
                    r.bytes as f64 / 1e6
                );
            }
            for phase in [TrafficPhase::PreBuffering, TrafficPhase::ReBuffering] {
                if let Some(f) = m.traffic_fraction(0, phase) {
                    println!("  WiFi share, {phase:?}: {:.1} %", f * 100.0);
                }
            }
            if !m.stalls.is_empty() {
                println!("  stalls: {} ({})", m.stalls.len(), m.total_stall_time());
            }
            if opt.timeline {
                println!("\n{}", render_timeline(&m, 96));
            }
        }
    }
    if opt.runs > 1 {
        println!(
            "{} runs: pre-buffer median {:.2} s, mean {} s (min {:.2}, max {:.2})",
            opt.runs,
            median(&prebuffer_samples),
            prebuffer_stats.mean_pm_std(),
            prebuffer_stats.min(),
            prebuffer_stats.max(),
        );
    }
    if let Some(path) = &opt.trace {
        if let Err(e) = write_trace(path) {
            eprintln!("--trace {path}: {e}");
            std::process::exit(2);
        }
    }
    if chaos_violations > 0 {
        std::process::exit(1);
    }
}

/// Flushes the captured NDJSON trace to `path` and prints the one-line
/// telemetry summary.
fn write_trace(path: &str) -> std::io::Result<()> {
    // Summarize before draining the buffer so the line reports the
    // actual trace depth.
    let summary = telemetry::summary_line();
    let events = telemetry::take_trace();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    telemetry::write_trace_ndjson(&events, &mut w)?;
    use std::io::Write as _;
    w.flush()?;
    println!("trace: {} events -> {path}", events.len());
    println!("{summary}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse_args(&[]).unwrap(), Options::default());
    }

    #[test]
    fn parses_everything() {
        let o = parse_args(&args(
            "--env youtube --player wifi --scheduler ewma --chunk 1M \
             --prebuffer 20 --refills 3 --seed 9 --runs 5 --timeline \
             --trace /tmp/session.ndjson",
        ))
        .unwrap();
        assert_eq!(o.env, "youtube");
        assert_eq!(o.player, "wifi");
        assert_eq!(o.scheduler, "ewma");
        assert_eq!(o.chunk, 1024 * 1024);
        assert_eq!(o.prebuffer, 20.0);
        assert_eq!(o.refills, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.runs, 5);
        assert!(o.timeline);
        assert_eq!(o.trace.as_deref(), Some("/tmp/session.ndjson"));
    }

    #[test]
    fn trace_flag_requires_a_path() {
        assert!(parse_args(&args("--trace")).is_err());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("64K").unwrap(), 65_536);
        assert_eq!(parse_size("1M").unwrap(), 1_048_576);
        assert_eq!(parse_size("512").unwrap(), 512);
        assert!(parse_size("abcK").is_err());
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--env mars")).is_err());
        assert!(parse_args(&args("--scheduler quantum")).is_err());
        assert!(parse_args(&args("--chunk")).is_err(), "missing value");
    }

    #[test]
    fn chaos_flag_parses_presets_and_plans_and_rejects_garbage() {
        let o = parse_args(&args("--chaos kitchen-sink")).unwrap();
        assert_eq!(o.chaos, "kitchen-sink");
        let o = parse_args(&["--chaos".into(), "skew:+250ms;token-expiry:6s".into()]).unwrap();
        assert_eq!(o.chaos, "skew:+250ms;token-expiry:6s");
        assert!(parse_args(&args("--chaos warp-drive:11")).is_err());
    }

    #[test]
    fn chaos_session_runs_deterministically_and_passes_the_oracle() {
        let o = Options {
            prebuffer: 5.0,
            chaos: "skew:+250ms;overload:path=1,from=1s,until=8s".into(),
            ..Options::default()
        };
        let a = run_one(&o, 33);
        let b = run_one(&o, 33);
        assert_eq!(a, b, "chaos replay must be bit-identical");
        assert!(check_invariants(&a).is_empty());
        // The plan actually changes the session.
        let clean = run_one(
            &Options {
                chaos: String::new(),
                ..o.clone()
            },
            33,
        );
        assert_ne!(a, clean, "the plan must perturb the session");
    }

    #[test]
    fn fleet_flags_parse_and_reject_garbage() {
        let o = parse_args(&args(
            "--fleet --fleet-sessions 500 --fleet-mode exact --fleet-policy load-balanced",
        ))
        .unwrap();
        assert!(o.fleet);
        assert_eq!(o.fleet_sessions, 500);
        assert_eq!(o.fleet_mode, FleetMode::Exact);
        assert_eq!(o.fleet_policy, SelectionPolicy::LoadBalanced);
        assert!(parse_args(&args("--fleet-mode plasma")).is_err());
        assert!(parse_args(&args("--fleet-policy dartboard")).is_err());
    }

    #[test]
    fn fleet_specs_build_for_both_modes() {
        let fluid = Options {
            fleet: true,
            fleet_sessions: 50,
            fleet_policy: SelectionPolicy::QoeFirst,
            ..Options::default()
        };
        FleetHost::new(fleet_spec_for(&fluid)).expect("fluid CLI spec validates");
        let exact = Options {
            fleet: true,
            fleet_sessions: 4,
            fleet_mode: FleetMode::Exact,
            ..Options::default()
        };
        let m = FleetHost::new(fleet_spec_for(&exact))
            .expect("exact CLI spec validates")
            .run();
        assert_eq!(m.sessions, 4);
        assert_eq!(m.completed + m.rejected, 4);
    }

    #[test]
    fn help_returns_usage() {
        let err = parse_args(&args("--help")).unwrap_err();
        assert!(err.contains("msplayer-sim"));
    }

    #[test]
    fn scenarios_build_for_all_combinations() {
        for env in ["testbed", "youtube"] {
            for player in ["msplayer", "wifi", "lte"] {
                let o = Options {
                    env: env.into(),
                    player: player.into(),
                    prebuffer: 5.0,
                    ..Options::default()
                };
                let s = scenario_for(&o, 1);
                let expected_paths = if player == "msplayer" { 2 } else { 1 };
                assert_eq!(s.paths.len(), expected_paths, "{env}/{player}");
            }
        }
    }

    #[test]
    fn cli_session_runs_end_to_end() {
        let o = Options {
            prebuffer: 5.0,
            ..Options::default()
        };
        let m = run_session(&scenario_for(&o, 42));
        assert!(m.prebuffer_time().is_some());
    }
}
