//! `msplayer-sim` — command-line front end for the simulator.
//!
//! ```sh
//! cargo run --release --bin msplayer-sim -- \
//!     --env testbed --scheduler harmonic --chunk 256K \
//!     --prebuffer 40 --seed 7 --refills 2 --trace
//! ```
//!
//! Runs one seeded session (or a `--runs N` sweep) and prints the QoE
//! summary, optionally with the per-path activity timeline.

use msplayer::core::chaos::{check_invariants, ChaosPlan};
use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::metrics::{SessionMetrics, TrafficPhase};
use msplayer::core::sim::{run_session, Scenario, SessionHost, StopCondition};
use msplayer::core::trace::render_timeline;
use msplayer::net::PathProfile;
use msplayer::simcore::stats::{median, Running};
use msplayer::simcore::units::ByteSize;
use msplayer::youtube::Network;

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
struct Options {
    env: String,       // testbed | youtube
    player: String,    // msplayer | wifi | lte
    scheduler: String, // harmonic | ewma | ratio | fixed
    chunk: u64,        // bytes
    prebuffer: f64,
    refills: usize,
    seed: u64,
    runs: u64,
    trace: bool,
    chaos: String, // chaos plan / preset; empty = fault-free
}

impl Default for Options {
    fn default() -> Self {
        Options {
            env: "testbed".into(),
            player: "msplayer".into(),
            scheduler: "harmonic".into(),
            chunk: 256 * 1024,
            prebuffer: 40.0,
            refills: 0,
            seed: 2014,
            runs: 1,
            trace: false,
            chaos: String::new(),
        }
    }
}

const USAGE: &str = "\
msplayer-sim — run MSPlayer sessions on the deterministic simulator

OPTIONS
    --env <testbed|youtube>        environment profile        [testbed]
    --player <msplayer|wifi|lte>   who streams                [msplayer]
    --scheduler <harmonic|ewma|ratio|fixed>                   [harmonic]
    --chunk <SIZE>                 initial chunk, e.g. 64K/1M [256K]
    --prebuffer <SECS>             pre-buffer target          [40]
    --refills <N>                  steady-state cycles to run [0]
    --seed <N>                     base seed                  [2014]
    --runs <N>                     seeds to sweep             [1]
    --trace                        print the activity timeline
    --chaos <PLAN>                 chaos preset or plan string, e.g.
                                   kitchen-sink or
                                   'skew:+250ms;overload:path=1,from=1s,until=10s'
    --help                         this text

Any chaos-corpus case replays in one command:
    msplayer-sim --seed <case seed> --chaos '<case plan>'
";

/// Parses a size like `64K`, `1M`, `256K`, or plain bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("bad size {s:?}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opt = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--env" => opt.env = value()?,
            "--player" => opt.player = value()?,
            "--scheduler" => opt.scheduler = value()?,
            "--chunk" => opt.chunk = parse_size(&value()?)?,
            "--prebuffer" => {
                opt.prebuffer = value()?.parse().map_err(|e| format!("--prebuffer: {e}"))?
            }
            "--refills" => opt.refills = value()?.parse().map_err(|e| format!("--refills: {e}"))?,
            "--seed" => opt.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--runs" => opt.runs = value()?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--trace" => opt.trace = true,
            "--chaos" => {
                let v = value()?;
                ChaosPlan::preset(&v).map_err(|e| format!("--chaos: {e}"))?;
                opt.chaos = v;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
    }
    for (field, allowed) in [
        (&opt.env, &["testbed", "youtube"][..]),
        (&opt.player, &["msplayer", "wifi", "lte"][..]),
        (&opt.scheduler, &["harmonic", "ewma", "ratio", "fixed"][..]),
    ] {
        if !allowed.contains(&field.as_str()) {
            return Err(format!("invalid value {field:?}; allowed: {allowed:?}"));
        }
    }
    Ok(opt)
}

fn scenario_for(opt: &Options, seed: u64) -> Scenario {
    let kind = match opt.scheduler.as_str() {
        "ewma" => SchedulerKind::Ewma,
        "ratio" => SchedulerKind::Ratio,
        "fixed" => SchedulerKind::Fixed,
        _ => SchedulerKind::Harmonic,
    };
    let cfg = if opt.player == "msplayer" {
        PlayerConfig::msplayer()
            .with_scheduler(kind)
            .with_initial_chunk(ByteSize::bytes(opt.chunk))
            .with_prebuffer_secs(opt.prebuffer)
    } else {
        PlayerConfig::commercial_single_path(ByteSize::bytes(opt.chunk))
            .with_prebuffer_secs(opt.prebuffer)
    };
    let youtube = opt.env == "youtube";
    let mut scenario = match (youtube, opt.player.as_str()) {
        (false, "msplayer") => Scenario::testbed_msplayer(seed, cfg),
        (true, "msplayer") => Scenario::youtube_msplayer(seed, cfg),
        (false, "wifi") => {
            Scenario::testbed_single_path(seed, PathProfile::wifi_testbed(), Network::Wifi, cfg)
        }
        (true, "wifi") => {
            Scenario::youtube_single_path(seed, PathProfile::wifi_youtube(), Network::Wifi, cfg)
        }
        (false, _) => {
            Scenario::testbed_single_path(seed, PathProfile::lte_testbed(), Network::Cellular, cfg)
        }
        (true, _) => {
            Scenario::youtube_single_path(seed, PathProfile::lte_youtube(), Network::Cellular, cfg)
        }
    };
    scenario.stop = if opt.refills > 0 {
        StopCondition::AfterRefills(opt.refills)
    } else {
        StopCondition::PrebufferDone
    };
    scenario
}

/// Runs one seeded session, layering the chaos plan (if any) onto the
/// scenario's session spec without touching the scenario itself.
fn run_one(opt: &Options, seed: u64) -> SessionMetrics {
    let scenario = scenario_for(opt, seed);
    if opt.chaos.is_empty() {
        return run_session(&scenario);
    }
    let plan = ChaosPlan::preset(&opt.chaos).expect("plan validated during arg parsing");
    let spec = scenario.session_spec().with_chaos(plan);
    match SessionHost::new(scenario.service_spec()).run(&spec) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("invalid session under chaos plan {:?}: {e}", opt.chaos);
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == USAGE { 0 } else { 2 });
        }
    };

    let mut prebuffer_stats = Running::new();
    let mut prebuffer_samples = Vec::new();
    let mut chaos_violations = 0usize;
    for run in 0..opt.runs {
        let seed = opt.seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let m = run_one(&opt, seed);
        if !opt.chaos.is_empty() {
            let violations = check_invariants(&m);
            if violations.is_empty() {
                println!(
                    "chaos (seed {seed}, plan {:?}): all invariants hold",
                    opt.chaos
                );
            } else {
                chaos_violations += violations.len();
                println!(
                    "chaos (seed {seed}, plan {:?}): {} violation(s)",
                    opt.chaos,
                    violations.len()
                );
                for v in &violations {
                    println!("  {v}");
                }
            }
        }
        if let Some(t) = m.prebuffer_time() {
            prebuffer_stats.push(t.as_secs_f64());
            prebuffer_samples.push(t.as_secs_f64());
        }
        if opt.runs == 1 {
            println!(
                "session (seed {seed}): {} chunks, pre-buffer {}",
                m.chunks.len(),
                m.prebuffer_time()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
            for (i, r) in m.refills.iter().enumerate() {
                println!(
                    "  refill {}: {:.2} s ({:.1} MB)",
                    i + 1,
                    r.duration().as_secs_f64(),
                    r.bytes as f64 / 1e6
                );
            }
            for phase in [TrafficPhase::PreBuffering, TrafficPhase::ReBuffering] {
                if let Some(f) = m.traffic_fraction(0, phase) {
                    println!("  WiFi share, {phase:?}: {:.1} %", f * 100.0);
                }
            }
            if !m.stalls.is_empty() {
                println!("  stalls: {} ({})", m.stalls.len(), m.total_stall_time());
            }
            if opt.trace {
                println!("\n{}", render_timeline(&m, 96));
            }
        }
    }
    if opt.runs > 1 {
        println!(
            "{} runs: pre-buffer median {:.2} s, mean {} s (min {:.2}, max {:.2})",
            opt.runs,
            median(&prebuffer_samples),
            prebuffer_stats.mean_pm_std(),
            prebuffer_stats.min(),
            prebuffer_stats.max(),
        );
    }
    if chaos_violations > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(parse_args(&[]).unwrap(), Options::default());
    }

    #[test]
    fn parses_everything() {
        let o = parse_args(&args(
            "--env youtube --player wifi --scheduler ewma --chunk 1M \
             --prebuffer 20 --refills 3 --seed 9 --runs 5 --trace",
        ))
        .unwrap();
        assert_eq!(o.env, "youtube");
        assert_eq!(o.player, "wifi");
        assert_eq!(o.scheduler, "ewma");
        assert_eq!(o.chunk, 1024 * 1024);
        assert_eq!(o.prebuffer, 20.0);
        assert_eq!(o.refills, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.runs, 5);
        assert!(o.trace);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("64K").unwrap(), 65_536);
        assert_eq!(parse_size("1M").unwrap(), 1_048_576);
        assert_eq!(parse_size("512").unwrap(), 512);
        assert!(parse_size("abcK").is_err());
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--env mars")).is_err());
        assert!(parse_args(&args("--scheduler quantum")).is_err());
        assert!(parse_args(&args("--chunk")).is_err(), "missing value");
    }

    #[test]
    fn chaos_flag_parses_presets_and_plans_and_rejects_garbage() {
        let o = parse_args(&args("--chaos kitchen-sink")).unwrap();
        assert_eq!(o.chaos, "kitchen-sink");
        let o = parse_args(&["--chaos".into(), "skew:+250ms;token-expiry:6s".into()]).unwrap();
        assert_eq!(o.chaos, "skew:+250ms;token-expiry:6s");
        assert!(parse_args(&args("--chaos warp-drive:11")).is_err());
    }

    #[test]
    fn chaos_session_runs_deterministically_and_passes_the_oracle() {
        let o = Options {
            prebuffer: 5.0,
            chaos: "skew:+250ms;overload:path=1,from=1s,until=8s".into(),
            ..Options::default()
        };
        let a = run_one(&o, 33);
        let b = run_one(&o, 33);
        assert_eq!(a, b, "chaos replay must be bit-identical");
        assert!(check_invariants(&a).is_empty());
        // The plan actually changes the session.
        let clean = run_one(
            &Options {
                chaos: String::new(),
                ..o.clone()
            },
            33,
        );
        assert_ne!(a, clean, "the plan must perturb the session");
    }

    #[test]
    fn help_returns_usage() {
        let err = parse_args(&args("--help")).unwrap_err();
        assert!(err.contains("msplayer-sim"));
    }

    #[test]
    fn scenarios_build_for_all_combinations() {
        for env in ["testbed", "youtube"] {
            for player in ["msplayer", "wifi", "lte"] {
                let o = Options {
                    env: env.into(),
                    player: player.into(),
                    prebuffer: 5.0,
                    ..Options::default()
                };
                let s = scenario_for(&o, 1);
                let expected_paths = if player == "msplayer" { 2 } else { 1 };
                assert_eq!(s.paths.len(), expected_paths, "{env}/{player}");
            }
        }
    }

    #[test]
    fn cli_session_runs_end_to_end() {
        let o = Options {
            prebuffer: 5.0,
            ..Options::default()
        };
        let m = run_session(&scenario_for(&o, 42));
        assert!(m.prebuffer_time().is_some());
    }
}
