//! # msplayer — reproduction of *MSPlayer: Multi-Source and multi-Path
//! LeverAged YoutubER* (CoNEXT 2014)
//!
//! This meta-crate re-exports every workspace crate under one roof so the
//! repository-level examples and integration tests exercise the complete
//! public API with a single dependency:
//!
//! * [`core`] ([`msplayer_core`]) — the paper's contribution: bandwidth
//!   estimators, chunk schedulers, playout buffer, the sans-I/O player, and
//!   the deterministic session driver;
//! * [`net`] ([`msim_net`]) — stochastic links, round-based TCP with CUBIC,
//!   path profiles, mobility, middleboxes;
//! * [`youtube`] ([`msim_youtube`]) — the emulated YouTube control plane
//!   (DNS views, proxies, tokens, signature cipher, video servers);
//! * [`http`] ([`msim_http`]) — HTTP/1.1 messages, ranges, wire codec, and
//!   the Fig. 1 TLS timing model;
//! * [`json`] ([`msim_json`]) — minimal JSON;
//! * [`simcore`] ([`msim_core`]) — event queue, RNG, stochastic processes,
//!   statistics, reporting;
//! * [`testbed`] ([`msim_testbed`]) — the real-socket loopback testbed.
//!
//! ## Quickstart
//!
//! ```
//! use msplayer::core::config::PlayerConfig;
//! use msplayer::core::sim::{run_session, Scenario};
//!
//! let cfg = PlayerConfig::msplayer().with_prebuffer_secs(10.0);
//! let metrics = run_session(&Scenario::testbed_msplayer(7, cfg));
//! assert!(metrics.prebuffer_time().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msim_core as simcore;
pub use msim_http as http;
pub use msim_json as json;
pub use msim_net as net;
pub use msim_testbed as testbed;
pub use msim_youtube as youtube;
pub use msplayer_core as core;
