//! Cross-crate property-based tests: invariants that must hold for *any*
//! configuration, seed, or message content.

use msplayer::core::config::{GammaRounding, PlayerConfig, SchedulerKind};
use msplayer::core::metrics::TrafficPhase;
use msplayer::core::sim::{run_session, Scenario, StopCondition};
use msplayer::simcore::units::ByteSize;
use proptest::prelude::*;

fn scheduler_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(vec![
        SchedulerKind::Harmonic,
        SchedulerKind::Ewma,
        SchedulerKind::Ratio,
        SchedulerKind::HarmonicWindowed,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // full sessions are not free; two dozen random configs
        ..ProptestConfig::default()
    })]

    /// Any (seed, scheduler, chunk size, watermark, γ-mode) combination
    /// yields a session that terminates, reaches its pre-buffer target, and
    /// reports self-consistent metrics.
    #[test]
    fn random_configs_stream_successfully(
        seed in 0u64..1_000_000,
        kind in scheduler_strategy(),
        chunk_kb in prop::sample::select(vec![16u64, 64, 128, 256, 512, 1024]),
        prebuffer in 5.0f64..30.0,
        ooo_cap in 0usize..4,
        gamma_ceil in any::<bool>(),
    ) {
        let mut cfg = PlayerConfig::msplayer()
            .with_scheduler(kind)
            .with_initial_chunk(ByteSize::kb(chunk_kb))
            .with_prebuffer_secs(prebuffer);
        cfg.ooo_cap = ooo_cap;
        cfg.gamma_rounding = if gamma_ceil { GammaRounding::Ceil } else { GammaRounding::Exact };
        let m = run_session(&Scenario::testbed_msplayer(seed, cfg));

        // Terminates with the target reached.
        let t = m.prebuffer_time().expect("prebuffer reached");
        prop_assert!(t.as_secs_f64() > 0.0);
        prop_assert!(t.as_secs_f64() < 600.0, "absurd time {t}");

        // Chunk accounting is self-consistent.
        let total: u64 = m.chunks.iter().map(|c| c.bytes).sum();
        let target = prebuffer * 312_500.0;
        prop_assert!(total as f64 >= target * 0.98, "fetched {total} of {target}");
        for c in &m.chunks {
            prop_assert!(c.bytes > 0);
            prop_assert!(c.completed_at >= c.requested_at);
            prop_assert!(c.goodput_bps > 0.0);
            prop_assert!(c.path < 2);
        }

        // First bytes happen before completions.
        for path in 0..2 {
            if let Some(fb) = m.first_byte_at[path] {
                let first_completion = m
                    .chunks
                    .iter()
                    .filter(|c| c.path == path)
                    .map(|c| c.completed_at)
                    .min()
                    .expect("path with first byte has chunks");
                prop_assert!(fb <= first_completion);
            }
        }
    }

    /// Traffic fractions are probabilities summing to 1 whenever a phase
    /// saw traffic, for random steady-state sessions.
    #[test]
    fn traffic_split_is_consistent(
        seed in 0u64..100_000,
        kind in scheduler_strategy(),
    ) {
        let mut s = Scenario::testbed_msplayer(
            seed,
            PlayerConfig::msplayer()
                .with_scheduler(kind)
                .with_prebuffer_secs(10.0),
        );
        s.stop = StopCondition::AfterRefills(1);
        let m = run_session(&s);
        for phase in [TrafficPhase::PreBuffering, TrafficPhase::ReBuffering] {
            if let (Some(f0), Some(f1)) =
                (m.traffic_fraction(0, phase), m.traffic_fraction(1, phase))
            {
                prop_assert!((0.0..=1.0).contains(&f0));
                prop_assert!((f0 + f1 - 1.0).abs() < 1e-9);
            }
        }
    }

    /// The emulated YouTube JSON round-trips through text for arbitrary
    /// catalog content.
    #[test]
    fn video_info_json_roundtrips(
        seed in any::<u64>(),
        title in "[a-zA-Z0-9 \\-_.]{1,40}",
        author in "[a-z0-9\\-]{1,20}",
        duration_secs in 30.0f64..3600.0,
        copyrighted in any::<bool>(),
    ) {
        use msplayer::youtube::*;
        use msplayer::simcore::time::{SimDuration, SimTime};

        let mut rng = msplayer::simcore::rng::Prng::new(seed);
        let id = VideoId::generate(&mut rng);
        let mut catalog = Catalog::new();
        catalog.add(Video::new(id, title.clone(), author.clone(),
            SimDuration::from_secs_f64(duration_secs), copyrighted));
        let mut service = YoutubeService::new(seed, catalog, ServiceConfig::default());
        let json = service
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::from_secs(1))
            .expect("watch ok");
        // Value → text → Value → VideoInfo
        let text = msplayer::json::to_string(&json);
        let back = msplayer::json::from_str(&text).expect("parses");
        let info = parse_video_info(&back).expect("decodes");
        prop_assert_eq!(info.video_id, id.as_str());
        prop_assert_eq!(info.title, title);
        prop_assert_eq!(info.author, author);
        prop_assert_eq!(info.copyrighted, copyrighted);
        prop_assert_eq!(info.enciphered_sig.is_some(), copyrighted);
        prop_assert!(!info.server_domains.is_empty());

        // The signature flow authorises exactly when deciphered.
        if copyrighted {
            let enc = info.enciphered_sig.clone().unwrap();
            let sig = service.decoder_page().decipher(&enc);
            let addr = service.server_by_domain(&info.server_domains[0]).unwrap().addr;
            prop_assert!(service
                .check_range_request(addr, SimTime::from_secs(1), id, "203.0.113.7", &info.token, Some(&sig), 22)
                .is_ok());
            prop_assert!(service
                .check_range_request(addr, SimTime::from_secs(1), id, "203.0.113.7", &info.token, Some(&enc), 22)
                .is_err());
        }
    }

    /// HTTP request/response wire roundtrip for arbitrary ranges and bodies.
    #[test]
    fn http_wire_roundtrips(
        start in 0u64..10_000_000,
        len in 1u64..100_000,
        body_len in 0usize..10_000,
        status in prop::sample::select(vec![200u16, 206, 403, 404, 500, 503]),
    ) {
        use msplayer::http::*;
        let range = ByteRange::from_offset_len(start, len);
        let req = Request::get("/videoplayback?id=x").with_range(range);
        let wire = encode_request(&req);
        match decode_request(&wire).unwrap() {
            Decoded::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.range().unwrap().unwrap(), range);
            }
            Decoded::NeedMore => prop_assert!(false, "complete request not decoded"),
        }
        let body: Vec<u8> = (0..body_len).map(|i| (i % 251) as u8).collect();
        let resp = Response::new(StatusCode(status), body.clone());
        let wire = encode_response(&resp);
        match decode_response(&wire).unwrap() {
            Decoded::Complete { message, consumed } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(message.status.0, status);
                prop_assert_eq!(&message.body[..], &body[..]);
            }
            Decoded::NeedMore => prop_assert!(false, "complete response not decoded"),
        }
    }
}
