//! End-to-end integration tests across all crates: complete streaming
//! sessions through the simulated links, TCP model, YouTube control plane
//! and the player.

use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::metrics::TrafficPhase;
use msplayer::core::sim::{run_session, Scenario, StopCondition};
use msplayer::net::PathProfile;
use msplayer::simcore::units::ByteSize;
use msplayer::youtube::Network;

fn quick() -> PlayerConfig {
    PlayerConfig::msplayer().with_prebuffer_secs(15.0)
}

#[test]
fn full_session_all_schedulers_both_environments() {
    for kind in [
        SchedulerKind::Harmonic,
        SchedulerKind::Ewma,
        SchedulerKind::Ratio,
        SchedulerKind::HarmonicWindowed,
    ] {
        for scenario in [
            Scenario::testbed_msplayer(5, quick().with_scheduler(kind)),
            Scenario::youtube_msplayer(5, quick().with_scheduler(kind)),
        ] {
            let m = run_session(&scenario);
            let t = m
                .prebuffer_time()
                .unwrap_or_else(|| panic!("{kind:?} failed to pre-buffer"));
            assert!(
                (0.5..60.0).contains(&t.as_secs_f64()),
                "{kind:?}: implausible pre-buffer time {t}"
            );
        }
    }
}

#[test]
fn deterministic_replay_full_stack() {
    let run = || {
        let mut s = Scenario::youtube_msplayer(1234, quick());
        s.stop = StopCondition::AfterRefills(2);
        run_session(&s)
    };
    let a = run();
    let b = run();
    assert_eq!(a.prebuffer_done_at, b.prebuffer_done_at);
    assert_eq!(a.chunks.len(), b.chunks.len());
    assert_eq!(a.refills.len(), b.refills.len());
    for (x, y) in a.chunks.iter().zip(&b.chunks) {
        assert_eq!(x.bytes, y.bytes);
        assert_eq!(x.completed_at, y.completed_at);
        assert_eq!(x.path, y.path);
    }
}

#[test]
fn chunk_ranges_cover_prefix_without_overlap() {
    let mut s = Scenario::testbed_msplayer(9, quick());
    s.stop = StopCondition::AfterRefills(1);
    let m = run_session(&s);
    // Sort all completed chunks by their metric record; re-derive coverage
    // from the byte counts: total fetched equals the contiguous target plus
    // at most max_chunk of overshoot per path.
    let total: u64 = m.chunks.iter().map(|c| c.bytes).sum();
    let target = (15.0 + 20.0) * 312_500.0; // prebuffer + one refill
    assert!(
        total as f64 >= target * 0.99,
        "fetched {total} < target {target}"
    );
    assert!(
        (total as f64) < target + 3.0 * 4.0 * 1024.0 * 1024.0,
        "overshoot too large: {total}"
    );
}

#[test]
fn traffic_fractions_are_probabilities_and_sum_to_one() {
    let mut s = Scenario::testbed_msplayer(21, quick());
    s.stop = StopCondition::AfterRefills(2);
    let m = run_session(&s);
    for phase in [TrafficPhase::PreBuffering, TrafficPhase::ReBuffering] {
        let f0 = m.traffic_fraction(0, phase).expect("traffic exists");
        let f1 = m.traffic_fraction(1, phase).expect("traffic exists");
        assert!((0.0..=1.0).contains(&f0));
        assert!((f0 + f1 - 1.0).abs() < 1e-9, "fractions sum to 1");
    }
}

#[test]
fn no_stalls_on_healthy_links() {
    let mut s = Scenario::testbed_msplayer(33, quick());
    s.stop = StopCondition::AfterRefills(3);
    let m = run_session(&s);
    assert_eq!(
        m.stalls.len(),
        0,
        "healthy links must not stall: {:?}",
        m.stalls
    );
    assert_eq!(m.failovers, [0, 0]);
}

#[test]
fn single_path_commercial_profiles_work_at_both_chunk_sizes() {
    for chunk in [64u64, 256] {
        let m = run_session(&Scenario::testbed_single_path(
            3,
            PathProfile::wifi_testbed(),
            Network::Wifi,
            PlayerConfig::commercial_single_path(ByteSize::kb(chunk)).with_prebuffer_secs(15.0),
        ));
        assert!(m.prebuffer_time().is_some(), "{chunk} KB profile streams");
        assert_eq!(m.chunk_count(1), 0);
    }
}

#[test]
fn longer_prebuffer_takes_longer() {
    let t = |pb: f64| {
        run_session(&Scenario::testbed_msplayer(
            11,
            PlayerConfig::msplayer().with_prebuffer_secs(pb),
        ))
        .prebuffer_time()
        .unwrap()
        .as_secs_f64()
    };
    let t20 = t(20.0);
    let t40 = t(40.0);
    let t60 = t(60.0);
    assert!(
        t20 < t40 && t40 < t60,
        "monotone in pre-buffer: {t20} {t40} {t60}"
    );
}

#[test]
fn copyrighted_videos_pay_a_bootstrap_penalty() {
    let mut free = Scenario::testbed_msplayer(17, quick());
    free.copyrighted = false;
    let mut protected = Scenario::testbed_msplayer(17, quick());
    protected.copyrighted = true;
    let t_free = run_session(&free).prebuffer_time().unwrap();
    let t_protected = run_session(&protected).prebuffer_time().unwrap();
    assert!(
        t_protected > t_free,
        "decoder-page fetch costs time: {t_protected} vs {t_free}"
    );
}

#[test]
fn head_start_config_controls_first_bytes() {
    let with = run_session(&Scenario::testbed_msplayer(25, quick()));
    let mut cfg = quick();
    cfg.head_start = false;
    let without = run_session(&Scenario::testbed_msplayer(25, cfg));
    // Without head start both paths begin together.
    let gap_with = with.observed_head_start().unwrap().as_secs_f64();
    let gap_without = without.observed_head_start().unwrap().as_secs_f64();
    assert!(
        gap_with > gap_without,
        "head start widens the first-byte gap: {gap_with} vs {gap_without}"
    );
}
