//! Robustness integration tests: outages, server failures, and the
//! middlebox motivation — the §2 claims that do not have figures in the
//! paper ("Due to space constraint, we do not report the results on how
//! MSPlayer provides robustness for video delivery in mobile scenarios").

use msplayer::core::config::PlayerConfig;
use msplayer::core::sim::{run_session, Scenario, ServerFailure, StopCondition};
use msplayer::net::middlebox::{negotiate_mptcp, us_carrier_survey, MptcpNegotiation};
use msplayer::net::OutageSchedule;
use msplayer::simcore::rng::Prng;
use msplayer::simcore::time::{SimDuration, SimTime};

fn quick() -> PlayerConfig {
    PlayerConfig::msplayer().with_prebuffer_secs(15.0)
}

#[test]
fn wifi_outage_does_not_stall_playback() {
    // WiFi dies shortly after playback starts; LTE must carry the stream.
    let mut s = Scenario::testbed_msplayer(101, quick());
    s.paths[0].outages = Some(OutageSchedule::from_windows(vec![(
        SimTime::from_secs(6),
        SimTime::from_secs(30),
    )]));
    s.stop = StopCondition::AfterRefills(2);
    let m = run_session(&s);
    assert!(m.prebuffer_done_at.is_some());
    assert!(m.refills.len() >= 2);
    assert_eq!(
        m.total_stall_time(),
        SimDuration::ZERO,
        "the second path hides the outage: {:?}",
        m.stalls
    );
}

#[test]
fn single_path_suffers_where_msplayer_does_not() {
    // The same outage applied to a single-path player: the viewer stalls.
    let outage =
        OutageSchedule::from_windows(vec![(SimTime::from_secs(6), SimTime::from_secs(40))]);
    let mut single = Scenario::testbed_single_path(
        101,
        msplayer::net::PathProfile::wifi_testbed(),
        msplayer::youtube::Network::Wifi,
        PlayerConfig::commercial_single_path(msplayer::simcore::units::ByteSize::kb(256))
            .with_prebuffer_secs(15.0),
    );
    single.paths[0].outages = Some(outage);
    single.stop = StopCondition::AfterRefills(2);
    let m = run_session(&single);
    assert!(
        !m.stalls.is_empty(),
        "a 34 s outage must stall a single-path player"
    );
}

#[test]
fn repeated_outages_random_schedule() {
    // A flaky WiFi link with random outages: sessions still finish.
    for seed in 0..5u64 {
        let mut rng = Prng::new(seed);
        let schedule = OutageSchedule::generate(
            SimTime::from_secs(300),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
            &mut rng,
        );
        let mut s = Scenario::testbed_msplayer(seed, quick());
        s.paths[0].outages = Some(schedule);
        s.stop = StopCondition::AfterRefills(1);
        let m = run_session(&s);
        assert!(
            m.prebuffer_done_at.is_some(),
            "seed {seed}: flaky WiFi must not kill the session"
        );
    }
}

#[test]
fn server_failure_failover_to_replica_in_same_network() {
    let mut s = Scenario::testbed_msplayer(55, quick());
    s.server_failure = Some(ServerFailure {
        path: 0,
        from: SimTime::from_secs(1),
        until: SimTime::from_secs(600),
    });
    s.stop = StopCondition::AfterRefills(1);
    let m = run_session(&s);
    assert!(m.failovers[0] >= 1, "failover executed");
    assert!(m.prebuffer_done_at.is_some(), "replica carried the stream");
    // The WiFi path keeps contributing after the switch.
    assert!(m.chunk_count(0) > 1, "wifi path resumed after failover");
}

#[test]
fn failure_before_any_traffic_is_survivable() {
    let mut s = Scenario::testbed_msplayer(66, quick());
    s.server_failure = Some(ServerFailure {
        path: 1,
        from: SimTime::ZERO,
        until: SimTime::from_secs(600),
    });
    s.stop = StopCondition::PrebufferDone;
    let m = run_session(&s);
    assert!(m.prebuffer_done_at.is_some());
}

#[test]
fn both_paths_with_disjoint_outages_still_complete() {
    let mut s = Scenario::testbed_msplayer(77, quick());
    s.paths[0].outages = Some(OutageSchedule::from_windows(vec![(
        SimTime::from_secs(4),
        SimTime::from_secs(12),
    )]));
    s.paths[1].outages = Some(OutageSchedule::from_windows(vec![(
        SimTime::from_secs(14),
        SimTime::from_secs(22),
    )]));
    s.stop = StopCondition::AfterRefills(1);
    let m = run_session(&s);
    assert!(m.prebuffer_done_at.is_some());
    assert!(!m.refills.is_empty());
}

#[test]
fn middlebox_survey_matches_paper() {
    let broken = us_carrier_survey()
        .iter()
        .filter(|(_, r)| *r != MptcpNegotiation::MultipathOk)
        .count();
    assert_eq!(broken, 2, "two of three carriers break MPTCP (§2)");
    // And a clean path is genuinely clean.
    assert_eq!(negotiate_mptcp(&[]), MptcpNegotiation::MultipathOk);
}

#[test]
fn energy_extension_reports_lte_cost() {
    use msplayer::core::energy::{joules_per_mb, InterfaceEnergyModel};
    let mut s = Scenario::testbed_msplayer(88, quick());
    s.stop = StopCondition::AfterRefills(1);
    let m = run_session(&s);
    let wifi_jpm = joules_per_mb(&m, 0, InterfaceEnergyModel::wifi()).expect("wifi active");
    let lte_jpm = joules_per_mb(&m, 1, InterfaceEnergyModel::lte()).expect("lte active");
    assert!(
        lte_jpm > wifi_jpm,
        "LTE joules/MB ({lte_jpm:.2}) exceed WiFi's ({wifi_jpm:.2}) — the §7 energy concern"
    );
}
