//! Fleet-level integration pins (tier 1):
//!
//! * fluid-mode populations are bit-identical for any worker count —
//!   workers only shard the index-keyed attribute precomputation, so
//!   parallelism can never change a result;
//! * an exact-mode fleet of one is bit-identical to the same scenario
//!   run standalone through `SessionHost::run` — the fleet's load
//!   injection is exactly inert when there is no other load to inject.

use msplayer::core::config::PlayerConfig;
use msplayer::core::fleet::{FleetHost, FleetSpec, SelectionPolicy};
use msplayer::core::sim::{Scenario, SessionHost};

#[test]
fn fluid_fleet_is_bit_identical_across_worker_counts() {
    let run = |workers: usize| {
        let mut spec = FleetSpec::fluid(0xF1EE_2014, 600).with_policy(SelectionPolicy::QoeFirst);
        spec.workers = workers;
        FleetHost::new(spec).expect("spec validates").run()
    };
    let serial = run(0);
    for workers in [1, 2, 3, 8] {
        assert_eq!(
            serial,
            run(workers),
            "fluid fleet must be bit-identical with {workers} workers"
        );
    }
    // The population actually did something worth pinning.
    assert_eq!(serial.sessions, 600);
    assert!(serial.completed > 0);
    assert!(serial.events > 0);
}

#[test]
fn exact_fleet_of_one_matches_a_standalone_session() {
    let base = Scenario::testbed_msplayer(2014, PlayerConfig::msplayer());
    let fleet_spec = FleetSpec::exact(base.clone(), 1);
    let seed = fleet_spec.session_seed(0);
    let fleet = FleetHost::new(fleet_spec).expect("spec validates").run();
    assert_eq!(fleet.sessions, 1);
    assert_eq!(fleet.completed, 1);
    assert_eq!(fleet.exact_sessions.len(), 1);

    let mut spec = base.session_spec();
    spec.seed = seed;
    let standalone = SessionHost::new(base.service_spec())
        .run(&spec)
        .expect("base spec validates");

    assert_eq!(
        fleet.exact_sessions[0], standalone,
        "an exact fleet of one must reproduce SessionHost::run bit for bit"
    );
}
