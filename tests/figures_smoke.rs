//! Figure-shape smoke tests: small-N versions of every figure/table
//! experiment asserting the *qualitative* claims of the paper hold for the
//! default seeds. The full-N versions live in `crates/bench/benches/`.

use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::metrics::TrafficPhase;
use msplayer::core::sim::{run_session, Scenario, StopCondition};
use msplayer::http::tls::TlsTimingModel;
use msplayer::net::PathProfile;
use msplayer::simcore::stats::median;
use msplayer::simcore::time::SimDuration;
use msplayer::simcore::units::ByteSize;
use msplayer::youtube::Network;

const RUNS: u64 = 8;

fn seeds() -> impl Iterator<Item = u64> {
    (0..RUNS).map(|r| 0x5eed ^ (r.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn prebuffer_median(make: impl Fn(u64) -> Scenario) -> f64 {
    let times: Vec<f64> = seeds()
        .map(|s| {
            run_session(&make(s))
                .prebuffer_time()
                .expect("completes")
                .as_secs_f64()
        })
        .collect();
    median(&times)
}

fn msplayer_cfg(kind: SchedulerKind, chunk_kb: u64, pb: f64) -> PlayerConfig {
    PlayerConfig::msplayer()
        .with_scheduler(kind)
        .with_initial_chunk(ByteSize::kb(chunk_kb))
        .with_prebuffer_secs(pb)
}

fn commercial(chunk_kb: u64, pb: f64) -> PlayerConfig {
    PlayerConfig::commercial_single_path(ByteSize::kb(chunk_kb)).with_prebuffer_secs(pb)
}

// --- Fig. 1 ----------------------------------------------------------------

#[test]
fn fig1_formulas_hold() {
    let m = TlsTimingModel::default();
    let r1 = SimDuration::from_millis(25);
    let r2 = SimDuration::from_millis(65);
    assert_eq!(m.pi(r1), m.psi(r1) + m.eta(r1));
    // Head start = 10(θ−1)R1, independent of Δs.
    assert_eq!(
        m.head_start(r1, r2),
        SimDuration::from_micros(10 * (r2.as_micros() - r1.as_micros()))
    );
}

// --- Fig. 2 ----------------------------------------------------------------

#[test]
fn fig2_msplayer_beats_both_single_paths() {
    let ms = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Ratio, 1024, 40.0))
    });
    let wifi = prebuffer_median(|s| {
        Scenario::testbed_single_path(
            s,
            PathProfile::wifi_testbed(),
            Network::Wifi,
            commercial(1024, 40.0),
        )
    });
    let lte = prebuffer_median(|s| {
        Scenario::testbed_single_path(
            s,
            PathProfile::lte_testbed(),
            Network::Cellular,
            commercial(1024, 40.0),
        )
    });
    assert!(wifi < lte, "WiFi is the best single path: {wifi} vs {lte}");
    let reduction = 1.0 - ms / wifi;
    assert!(
        reduction > 0.15,
        "MSPlayer cuts start-up delay materially: ms={ms:.2} wifi={wifi:.2} ({:.0} %)",
        reduction * 100.0
    );
}

// --- Fig. 3 ----------------------------------------------------------------

#[test]
fn fig3_larger_initial_chunks_download_faster() {
    let t16 = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 16, 40.0))
    });
    let t1m = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 1024, 40.0))
    });
    assert!(t1m < t16, "1 MB beats 16 KB: {t1m} vs {t16}");
}

#[test]
fn fig3_ratio_baseline_is_much_worse_at_small_chunks() {
    let harmonic = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 16, 40.0))
    });
    let ratio = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Ratio, 16, 40.0))
    });
    assert!(
        ratio > harmonic * 1.3,
        "Ratio cannot grow the slow path's chunks: ratio={ratio:.2} harmonic={harmonic:.2}"
    );
}

#[test]
fn fig3_harmonic_default_chunk_choice_is_justified() {
    // §5.2: Harmonic(256 KB) ≈ Harmonic(1 MB), so 256 KB is preferred for
    // smaller bursts.
    let t256 = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 256, 40.0))
    });
    let t1m = prebuffer_median(|s| {
        Scenario::testbed_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 1024, 40.0))
    });
    assert!(
        (t256 - t1m).abs() / t1m < 0.25,
        "256 KB within 25 % of 1 MB: {t256:.2} vs {t1m:.2}"
    );
}

// --- Fig. 4 ----------------------------------------------------------------

#[test]
fn fig4_youtube_msplayer_beats_best_single_path_at_all_prebuffers() {
    for pb in [20.0, 40.0, 60.0] {
        let ms = prebuffer_median(|s| {
            Scenario::youtube_msplayer(s, msplayer_cfg(SchedulerKind::Harmonic, 256, pb))
        });
        let wifi = prebuffer_median(|s| {
            Scenario::youtube_single_path(
                s,
                PathProfile::wifi_youtube(),
                Network::Wifi,
                commercial(256, pb),
            )
        });
        assert!(
            ms < wifi,
            "pb={pb}: MSPlayer {ms:.2} must beat WiFi {wifi:.2}"
        );
    }
}

// --- Fig. 5 ----------------------------------------------------------------

fn refill_median(who: &str, cfg: PlayerConfig) -> f64 {
    let samples: Vec<f64> = seeds()
        .flat_map(|seed| {
            let mut s = match who {
                "ms" => Scenario::youtube_msplayer(seed, cfg.clone()),
                "wifi" => Scenario::youtube_single_path(
                    seed,
                    PathProfile::wifi_youtube(),
                    Network::Wifi,
                    cfg.clone(),
                ),
                _ => unreachable!(),
            };
            s.stop = StopCondition::AfterRefills(2);
            run_session(&s)
                .refills
                .iter()
                .map(|r| r.duration().as_secs_f64())
                .collect::<Vec<_>>()
        })
        .collect();
    median(&samples)
}

#[test]
fn fig5_bigger_chunks_refill_faster_and_msplayer_is_fastest() {
    let wifi64 = refill_median("wifi", commercial(64, 40.0).with_rebuffer_secs(20.0));
    let wifi256 = refill_median("wifi", commercial(256, 40.0).with_rebuffer_secs(20.0));
    let ms = refill_median(
        "ms",
        msplayer_cfg(SchedulerKind::Harmonic, 256, 40.0).with_rebuffer_secs(20.0),
    );
    assert!(
        wifi256 < wifi64,
        "256 KB < 64 KB: {wifi256:.2} vs {wifi64:.2}"
    );
    assert!(ms < wifi256, "MSPlayer fastest: {ms:.2} vs {wifi256:.2}");
}

// --- Table 1 ---------------------------------------------------------------

#[test]
fn table1_wifi_carries_majority_of_prebuffer_traffic() {
    let mut fractions = Vec::new();
    for seed in seeds() {
        let mut s =
            Scenario::youtube_msplayer(seed, msplayer_cfg(SchedulerKind::Harmonic, 256, 40.0));
        s.stop = StopCondition::AfterRefills(1);
        let m = run_session(&s);
        if let Some(f) = m.traffic_fraction(0, TrafficPhase::PreBuffering) {
            fractions.push(f * 100.0);
        }
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(
        (50.0..80.0).contains(&avg),
        "WiFi pre-buffer share ≈ 60 % band, got {avg:.1} % ({fractions:?})"
    );
}
