//! Real-socket integration: the sans-I/O player over loopback TCP with
//! shaped links, mirroring the §5 physical testbed.

use msplayer::core::config::PlayerConfig;
use msplayer::simcore::units::ByteSize;
use msplayer::testbed::{Testbed, TestbedStop};
use std::time::Duration;

/// 1 Mbit/s stream → loopback sessions finish in a couple of wall seconds.
const BPS: f64 = 125_000.0;

fn quick_player() -> PlayerConfig {
    PlayerConfig::msplayer()
        .with_initial_chunk(ByteSize::kb(64))
        .with_prebuffer_secs(3.0)
}

#[test]
fn loopback_prebuffer_with_real_bytes() {
    let tb = Testbed::start(30.0, BPS, 1).expect("testbed");
    let m = tb
        .run(
            quick_player(),
            TestbedStop::PrebufferDone,
            Duration::from_secs(25),
        )
        .expect("session");
    assert!(m.prebuffer_time().is_some());
    let total: u64 = m.chunks.iter().map(|c| c.bytes).sum();
    assert!(
        total >= (3.0 * BPS) as u64,
        "at least the pre-buffer amount moved: {total}"
    );
    assert!(
        m.chunk_count(0) > 0 && m.chunk_count(1) > 0,
        "both paths used"
    );
}

#[test]
fn loopback_refill_cycle() {
    let tb = Testbed::start(60.0, BPS, 1).expect("testbed");
    let player = quick_player().with_rebuffer_secs(2.0);
    // Low watermark default is 10 s > prebuffer 3 s, so the buffer turns ON
    // immediately after pre-buffering; one refill completes quickly.
    let m = tb
        .run(
            player,
            TestbedStop::AfterRefills(1),
            Duration::from_secs(30),
        )
        .expect("session");
    assert!(
        !m.refills.is_empty(),
        "refill cycle completed: {:?}",
        m.refills.len()
    );
    assert!(m.refills[0].bytes >= (2.0 * BPS) as u64);
}

#[test]
fn loopback_failover_and_recovery() {
    let tb = Testbed::start(30.0, BPS, 2).expect("testbed");
    tb.set_primary_failed(1, true);
    let m = tb
        .run(
            quick_player(),
            TestbedStop::PrebufferDone,
            Duration::from_secs(25),
        )
        .expect("session");
    assert!(
        m.prebuffer_time().is_some(),
        "stream survives the dead primary"
    );
    assert!(m.failovers[1] >= 1, "failover happened on path 1");
}

#[test]
fn loopback_wifi_like_path_carries_more() {
    // Path 0 is shaped faster (wifi-like); over a longer session it should
    // carry at least as many bytes as the lte-like path.
    let tb = Testbed::start(60.0, BPS, 1).expect("testbed");
    let m = tb
        .run(
            quick_player().with_prebuffer_secs(6.0),
            TestbedStop::PrebufferDone,
            Duration::from_secs(30),
        )
        .expect("session");
    let b0: u64 = m
        .chunks
        .iter()
        .filter(|c| c.path == 0)
        .map(|c| c.bytes)
        .sum();
    let b1: u64 = m
        .chunks
        .iter()
        .filter(|c| c.path == 1)
        .map(|c| c.bytes)
        .sum();
    assert!(
        b0 * 10 >= b1 * 8,
        "fast path not starved: wifi-like {b0} vs lte-like {b1}"
    );
}
