//! The §7 future-work extension in action: DASH-style bitrate adaptation
//! driven by MSPlayer's aggregate (two-path) harmonic bandwidth estimates.
//!
//! A session is simulated on the YouTube profile; the chunk-level goodput
//! samples from both paths feed per-path harmonic estimators, and the
//! adapter re-decides the itag at every refill boundary.
//!
//! ```sh
//! cargo run --release --example rate_adaptation
//! ```

use msplayer::core::adaptation::{AdaptationConfig, RateAdapter, SwitchReason};
use msplayer::core::config::PlayerConfig;
use msplayer::core::estimator::{BandwidthEstimator, HarmonicInc};
use msplayer::core::sim::{run_session, Scenario, StopCondition};
use msplayer::simcore::units::BitRate;
use msplayer::youtube::ITAGS;

fn main() {
    // Stream a long session to collect realistic per-chunk samples.
    let mut scenario = Scenario::youtube_msplayer(31, PlayerConfig::msplayer());
    scenario.stop = StopCondition::AfterRefills(6);
    let metrics = run_session(&scenario);

    let mut estimators = [HarmonicInc::new(), HarmonicInc::new()];
    let mut adapter = RateAdapter::new(AdaptationConfig::default(), ITAGS.to_vec());

    println!(
        "itag ladder: {:?}\n",
        ITAGS.iter().map(|f| f.quality_label).collect::<Vec<_>>()
    );
    println!("time     aggregate est.   buffer   decision");
    println!("-------  ---------------  -------  -----------------------------");

    // Re-decide after every 8 completed chunks (≈ once per refill window).
    let mut since_last = 0;
    for (i, chunk) in metrics.chunks.iter().enumerate() {
        estimators[chunk.path].update(chunk.goodput_bps);
        since_last += 1;
        if since_last < 8 {
            continue;
        }
        since_last = 0;
        let aggregate = BitRate::bps(
            estimators[0].estimate_bps().unwrap_or(0.0)
                + estimators[1].estimate_bps().unwrap_or(0.0),
        );
        // Proxy for the buffer level at this instant: seconds of video
        // fetched minus seconds elapsed.
        let fetched_secs = metrics.chunks[..=i]
            .iter()
            .map(|c| c.bytes as f64)
            .sum::<f64>()
            / 312_500.0;
        let elapsed = chunk.completed_at.as_secs_f64();
        let buffer = (fetched_secs - elapsed).max(0.0);
        let (format, reason) = adapter.decide(aggregate, buffer);
        let marker = match reason {
            SwitchReason::RateUp => "▲",
            SwitchReason::RateDown | SwitchReason::BufferPanic => "▼",
            _ => " ",
        };
        println!(
            "{:>6.2}s  {:>13}  {:>6.1}s  {} {:>5} ({:?})",
            elapsed,
            format!("{aggregate}"),
            buffer,
            marker,
            format.quality_label,
            reason,
        );
    }
    println!(
        "\nfinal quality: {} at {} — chosen from two-path aggregate bandwidth\n\
         (the paper streams fixed 720p; this module is its §7 'rate adaption' future work)",
        adapter.current().quality_label,
        adapter.current().bitrate,
    );
}
