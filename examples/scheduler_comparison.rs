//! Compare the three chunk schedulers of §3.3 (Ratio baseline, DCSA+EWMA,
//! DCSA+Harmonic) head-to-head on identical seeded link conditions.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::sim::{run_session, Scenario};
use msplayer::simcore::report::Table;
use msplayer::simcore::stats::{median, Running};
use msplayer::simcore::units::ByteSize;

fn main() {
    let runs = 15;
    let prebuffer = 40.0;
    println!(
        "Scheduler comparison: {prebuffer:.0} s pre-buffer on the emulated testbed, {runs} seeds\n"
    );

    let mut table = Table::new(&[
        "scheduler",
        "initial chunk",
        "median (s)",
        "mean ± std (s)",
        "worst (s)",
    ]);
    for kind in [
        SchedulerKind::Harmonic,
        SchedulerKind::Ewma,
        SchedulerKind::Ratio,
    ] {
        for chunk_kb in [64u64, 256, 1024] {
            let mut stats = Running::new();
            let mut samples = Vec::new();
            for seed in 0..runs {
                let cfg = PlayerConfig::msplayer()
                    .with_scheduler(kind)
                    .with_initial_chunk(ByteSize::kb(chunk_kb))
                    .with_prebuffer_secs(prebuffer);
                let m = run_session(&Scenario::testbed_msplayer(seed, cfg));
                let t = m.prebuffer_time().expect("completes").as_secs_f64();
                stats.push(t);
                samples.push(t);
            }
            table.row(&[
                kind.name(),
                &ByteSize::kb(chunk_kb).to_string(),
                &format!("{:.2}", median(&samples)),
                &stats.mean_pm_std(),
                &format!("{:.2}", stats.max()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "\nExpected shape (paper Fig. 3): larger initial chunks are faster;\n\
         the Ratio baseline trails the dynamic schedulers and is the most variable;\n\
         Harmonic edges out EWMA because outlier samples barely move its estimate."
    );
}
