//! Compare the three chunk schedulers of §3.3 (Ratio baseline, DCSA+EWMA,
//! DCSA+Harmonic) head-to-head on identical seeded link conditions.
//!
//! Showcases the batch API: one [`SessionHost`] is built per service
//! profile and every (scheduler × chunk × seed) cell runs over it via
//! [`SessionHost::run_batch`] — the control-plane bootstrap is paid once,
//! not `schedulers × chunks × seeds` times, and results are bit-identical
//! to independent `run_session` calls.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use msplayer::core::config::{PlayerConfig, SchedulerKind};
use msplayer::core::sim::{Scenario, SessionHost, StopCondition};
use msplayer::simcore::report::Table;
use msplayer::simcore::stats::{median, Running};
use msplayer::simcore::units::ByteSize;

fn main() {
    let runs = 15;
    let prebuffer = 40.0;
    println!(
        "Scheduler comparison: {prebuffer:.0} s pre-buffer on the emulated testbed, {runs} seeds\n"
    );

    // One warmed host for the whole grid — every cell below shares the
    // same emulated service.
    let template = Scenario::testbed_msplayer(0, PlayerConfig::msplayer());
    let mut host = SessionHost::new(template.service_spec());
    let seeds: Vec<u64> = (0..runs).collect();

    let mut table = Table::new(&[
        "scheduler",
        "initial chunk",
        "median (s)",
        "mean ± std (s)",
        "worst (s)",
    ]);
    for kind in [
        SchedulerKind::Harmonic,
        SchedulerKind::Ewma,
        SchedulerKind::Ratio,
    ] {
        for chunk_kb in [64u64, 256, 1024] {
            let cfg = PlayerConfig::msplayer()
                .with_scheduler(kind)
                .with_initial_chunk(ByteSize::kb(chunk_kb))
                .with_prebuffer_secs(prebuffer);
            let mut spec = Scenario::testbed_msplayer(0, cfg).session_spec();
            spec.stop = StopCondition::PrebufferDone;
            let batch = host.run_batch(&seeds, &spec).expect("valid spec");

            let mut stats = Running::new();
            let mut samples = Vec::new();
            for m in &batch {
                let t = m.prebuffer_time().expect("completes").as_secs_f64();
                stats.push(t);
                samples.push(t);
            }
            table.row(&[
                kind.name(),
                &ByteSize::kb(chunk_kb).to_string(),
                &format!("{:.2}", median(&samples)),
                &stats.mean_pm_std(),
                &format!("{:.2}", stats.max()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "\nExpected shape (paper Fig. 3): larger initial chunks are faster;\n\
         the Ratio baseline trails the dynamic schedulers and is the most variable;\n\
         Harmonic edges out EWMA because outlier samples barely move its estimate."
    );
}
