//! Robustness scenarios (§2 "Robust Data Transport" / "Content Source
//! Diversity"): a WiFi outage mid-stream and a video-server failure, both of
//! which MSPlayer rides out without stalling playback.
//!
//! ```sh
//! cargo run --release --example mobility_failover
//! ```

use msplayer::core::config::PlayerConfig;
use msplayer::core::sim::{run_session, Scenario, ServerFailure, StopCondition};
use msplayer::net::OutageSchedule;
use msplayer::simcore::time::SimTime;

fn main() {
    let player = PlayerConfig::msplayer();

    // --- Scenario A: the WiFi link dies for 15 s during playback ---------
    println!("== A) WiFi outage from t=8 s to t=23 s ==");
    let mut scenario = Scenario::testbed_msplayer(77, player.clone());
    scenario.paths[0].outages = Some(OutageSchedule::from_windows(vec![(
        SimTime::from_secs(8),
        SimTime::from_secs(23),
    )]));
    scenario.stop = StopCondition::AfterRefills(3);
    let m = run_session(&scenario);
    println!(
        "   pre-buffer: {}   refills completed: {}   stalls: {} ({} total)",
        m.prebuffer_time().expect("completed"),
        m.refills.len(),
        m.stalls.len(),
        m.total_stall_time(),
    );
    println!(
        "   LTE carried {} chunks while WiFi was dark; WiFi resumed with {} chunks total\n",
        m.chunk_count(1),
        m.chunk_count(0),
    );

    // --- Scenario B: WiFi's primary video server fails at t=2 s ----------
    println!("== B) WiFi-side video server fails at t=2 s (source diversity) ==");
    let mut scenario = Scenario::testbed_msplayer(78, player.clone());
    scenario.server_failure = Some(ServerFailure {
        path: 0,
        from: SimTime::from_secs(2),
        until: SimTime::from_secs(300),
    });
    scenario.stop = StopCondition::AfterRefills(2);
    let m = run_session(&scenario);
    println!(
        "   pre-buffer: {}   failovers on WiFi path: {}   refills: {}",
        m.prebuffer_time().expect("completed"),
        m.failovers[0],
        m.refills.len(),
    );
    println!(
        "   MSPlayer switched to the backup replica in the same network and kept streaming.\n"
    );

    // --- Baseline: a single-path player facing the same WiFi outage ------
    println!("== C) The same outage with a single-path WiFi player ==");
    let mut scenario = Scenario::testbed_single_path(
        77,
        msplayer::net::PathProfile::wifi_testbed(),
        msplayer::youtube::Network::Wifi,
        PlayerConfig::commercial_single_path(msplayer::simcore::units::ByteSize::kb(256)),
    );
    scenario.paths[0].outages = Some(OutageSchedule::from_windows(vec![(
        SimTime::from_secs(8),
        SimTime::from_secs(23),
    )]));
    scenario.stop = StopCondition::AfterRefills(3);
    let m = run_session(&scenario);
    println!(
        "   refills completed: {}   stalls: {} ({} of frozen playback)",
        m.refills.len(),
        m.stalls.len(),
        m.total_stall_time(),
    );
    println!("   Without a second path, the viewer watches a spinner until WiFi returns.");
}
