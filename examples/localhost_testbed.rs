//! Run MSPlayer over **real TCP sockets**: shaped loopback servers play the
//! role of §5's Apache boxes, and the very same sans-I/O player state
//! machine that drives the simulator moves real bytes.
//!
//! ```sh
//! cargo run --release --example localhost_testbed
//! ```

use msplayer::core::config::PlayerConfig;
use msplayer::simcore::units::ByteSize;
use msplayer::testbed::{Testbed, TestbedStop};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // A 2 Mbit/s stream so the demo finishes in a few wall-clock seconds.
    let bytes_per_sec = 250_000.0;
    let testbed = Testbed::start(
        /* video_secs */ 60.0,
        bytes_per_sec,
        /* replicas */ 2,
    )?;
    println!("loopback testbed up:");
    for (path, servers) in testbed.servers.iter().enumerate() {
        let addrs: Vec<String> = servers.iter().map(|s| s.addr.to_string()).collect();
        println!("  path {path}: video servers {addrs:?}");
    }

    let player = PlayerConfig::msplayer()
        .with_initial_chunk(ByteSize::kb(128))
        .with_prebuffer_secs(8.0);

    println!("\n-- streaming an 8 s pre-buffer over two shaped paths --");
    let m = testbed.run(
        player.clone(),
        TestbedStop::PrebufferDone,
        Duration::from_secs(30),
    )?;
    println!(
        "pre-buffer reached in {} wall-clock; {} + {} chunks over the two paths",
        m.prebuffer_time().expect("reached"),
        m.chunk_count(0),
        m.chunk_count(1),
    );
    let total: u64 = m.chunks.iter().map(|c| c.bytes).sum();
    println!("real bytes moved: {:.2} MB", total as f64 / 1e6);

    println!("\n-- same, but path 0's primary server is dead (failover) --");
    testbed.set_primary_failed(0, true);
    let m = testbed.run(player, TestbedStop::PrebufferDone, Duration::from_secs(30))?;
    println!(
        "pre-buffer reached in {} despite the failure; failovers: {:?}",
        m.prebuffer_time().expect("reached"),
        m.failovers,
    );
    Ok(())
}
