//! The §2 motivation demo: why a client-side, legacy-TCP design instead of
//! MPTCP. Two of three major US carriers interfered with MPTCP on port 80
//! in the authors' measurements; MSPlayer's plain HTTP range requests pass
//! every middlebox.
//!
//! ```sh
//! cargo run --release --example mptcp_middlebox
//! ```

use msplayer::net::middlebox::{
    negotiate_mptcp, negotiate_plain_tcp, us_carrier_survey, Middlebox, MptcpNegotiation,
};

fn main() {
    println!("== MPTCP vs plain TCP through cellular middleboxes (§2) ==\n");

    println!("per-carrier MPTCP negotiation on port 80:");
    let mut broken = 0;
    for (carrier, outcome) in us_carrier_survey() {
        let verdict = match outcome {
            MptcpNegotiation::MultipathOk => "multipath works",
            MptcpNegotiation::FellBackToSinglePath => {
                broken += 1;
                "options stripped -> silent fallback to single-path TCP"
            }
            MptcpNegotiation::ConnectBlockedThenFallback => {
                broken += 1;
                "SYN with MP_CAPABLE dropped -> retry without options"
            }
        };
        println!("  {carrier}: {verdict}");
    }
    println!("\n{broken} of 3 carriers break MPTCP (matches the paper's measurement).\n");

    let hostile_path = [
        Middlebox::transparent(),
        Middlebox::option_stripper(),
        Middlebox::syn_dropper(),
    ];
    println!(
        "MPTCP through the worst path: {:?}",
        negotiate_mptcp(&hostile_path)
    );
    println!(
        "MSPlayer's plain HTTP/TCP through the same path: passes = {}",
        negotiate_plain_tcp(&hostile_path)
    );
    println!(
        "\nMSPlayer needs no kernel changes on either end and still aggregates\n\
         both interfaces — by scheduling chunks above TCP instead of below it."
    );
}
