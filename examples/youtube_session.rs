//! Walk through the full YouTube control plane the way §3.1/§4 describe it:
//! watch URL → per-network DNS → web proxy → JSON video info → access token
//! → signature decipher (copyrighted video) → synthesized video URL →
//! multi-source streaming.
//!
//! ```sh
//! cargo run --release --example youtube_session
//! ```

use msplayer::core::config::PlayerConfig;
use msplayer::core::sim::{run_session, Scenario, StopCondition};
use msplayer::simcore::time::SimTime;
use msplayer::youtube::{
    parse_video_info, Catalog, DnsResolver, Network, ServiceConfig, Video, VideoId, YoutubeService,
    PROXY_DOMAIN,
};

fn main() {
    // A copyrighted video: the player must also fetch the decoder page.
    let url = "http://www.youtube.com/watch?v=qjT4T2gU9sM";
    let id = VideoId::from_watch_url(url).expect("valid watch URL");
    println!("watch URL: {url}\nvideo id:  {id}\n");

    let mut catalog = Catalog::new();
    catalog.add(Video::new(
        id,
        "A Copyrighted Documentary",
        "some-studio",
        msplayer::simcore::time::SimDuration::from_secs(600),
        true,
    ));
    let mut service = YoutubeService::new(99, catalog, ServiceConfig::default());

    // Per-network DNS views (the source-diversity mechanism of §2).
    for network in Network::ALL {
        let mut resolver = DnsResolver::new(network);
        let (ans, _) = resolver
            .resolve(
                service.zone(),
                PROXY_DOMAIN,
                SimTime::ZERO,
                msplayer::simcore::time::SimDuration::from_millis(30),
            )
            .expect("proxy resolves");
        println!("{network}: {PROXY_DOMAIN} -> {:?}", ans.addrs);
    }
    println!();

    // Watch request on each interface: each network gets its own JSON with
    // its own server list and a token bound to that interface's public IP.
    for (network, client_ip) in [
        (Network::Wifi, "203.0.113.7"),
        (Network::Cellular, "198.51.100.23"),
    ] {
        let json = service
            .watch_request(network, id, client_ip, SimTime::from_secs(1))
            .expect("watch ok");
        let info = parse_video_info(&json).expect("well-formed");
        println!("[{network}] JSON video info:");
        println!("  title:    {} by {}", info.title, info.author);
        println!("  servers:  {:?}", info.server_domains);
        println!("  token:    {}...", &info.token[..24.min(info.token.len())]);
        let f = info.format(22).expect("720p offered");
        println!(
            "  itag 22:  {} ({:.1} MB)",
            f.quality,
            f.size_bytes as f64 / 1e6
        );

        // Decipher the signature with the decoder from the "video page".
        let enc = info.enciphered_sig.clone().expect("copyrighted");
        let sig = service.decoder_page().decipher(&enc);
        println!("  signature: {enc} -> {sig}");
        let final_url = info.synthesize_url(22, Some(&sig)).expect("url");
        println!("  video URL: {final_url}\n");
    }

    // Now stream it end to end on the §6 YouTube profile.
    let mut scenario = Scenario::youtube_msplayer(99, PlayerConfig::msplayer());
    scenario.stop = StopCondition::AfterRefills(1);
    let m = run_session(&scenario);
    println!(
        "streamed: pre-buffer in {}, first refill in {:.2} s, WiFi share {:.0} %",
        m.prebuffer_time().expect("completed"),
        m.refills[0].duration().as_secs_f64(),
        m.traffic_fraction(0, msplayer::core::metrics::TrafficPhase::PreBuffering)
            .unwrap_or(0.0)
            * 100.0
    );
}
