//! Quickstart: stream one video with MSPlayer on the emulated §5 testbed
//! and print the session's QoE summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use msplayer::core::config::PlayerConfig;
use msplayer::core::metrics::TrafficPhase;
use msplayer::core::sim::{run_session, Scenario, StopCondition};

fn main() {
    // The paper's default player: Harmonic scheduler, 256 KB initial
    // chunks, 40 s pre-buffer, 10 s low watermark, 20 s refills.
    let config = PlayerConfig::msplayer();

    // WiFi + LTE against two video sources per network; run through the
    // pre-buffering phase and two steady-state refill cycles.
    let mut scenario = Scenario::testbed_msplayer(/* seed */ 2014, config);
    scenario.stop = StopCondition::AfterRefills(2);

    let metrics = run_session(&scenario);

    println!("== MSPlayer quickstart (emulated testbed, seed 2014) ==\n");
    println!(
        "start-up delay (40 s pre-buffer): {}",
        metrics.prebuffer_time().expect("pre-buffer completed")
    );
    if let Some(head_start) = metrics.observed_head_start() {
        println!("WiFi head start over LTE:         {head_start}");
    }
    for (i, refill) in metrics.refills.iter().enumerate() {
        println!(
            "refill cycle {}: {:.2} s for {:.1} MB",
            i + 1,
            refill.duration().as_secs_f64(),
            refill.bytes as f64 / 1e6
        );
    }
    for phase in [TrafficPhase::PreBuffering, TrafficPhase::ReBuffering] {
        if let Some(f) = metrics.traffic_fraction(0, phase) {
            println!("WiFi traffic share, {phase:?}: {:.1} %", f * 100.0);
        }
    }
    println!(
        "chunks fetched: {} over WiFi, {} over LTE",
        metrics.chunk_count(0),
        metrics.chunk_count(1)
    );
    println!("stall time: {}", metrics.total_stall_time());
}
