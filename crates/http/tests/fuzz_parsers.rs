//! Byte-mutation fuzz targets for the hand-rolled HTTP parsers.
//!
//! Built on the in-repo zero-dependency fuzz driver
//! (`proptest::fuzz`): each target mutates a valid seed corpus with a
//! deterministic, per-target-named stream of classic fuzzing moves and
//! asserts the parser never panics and upholds its structural contract.
//! Edge cases found here get promoted to permanent unit tests next to
//! the parser (see `range.rs` / `wire.rs` fuzz-promoted tests).

use msim_http::range::{ByteRange, RangeError};
use msim_http::wire::{decode_request, decode_response, Decoded, WireError};
use proptest::fuzz;

const FUZZ_CASES: u32 = 2_000;

const WIRE_CORPUS: &[&[u8]] = &[
    b"GET /videoplayback?id=qjT4T2gU9sM&itag=22 HTTP/1.1\r\nHost: r3.example.net\r\nRange: bytes=0-262143\r\n\r\n",
    b"GET / HTTP/1.0\r\n\r\n",
    b"HTTP/1.1 206 Partial Content\r\nContent-Range: bytes 0-9/4096\r\nContent-Length: 10\r\n\r\n0123456789",
    b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n",
    b"HTTP/1.1 403 Forbidden\r\nContent-Length: 5\r\n\r\ndeny!",
];

const RANGE_CORPUS: &[&[u8]] = &[
    b"bytes=0-262143",
    b"bytes=65536-131071",
    b"bytes 0-1023/4096",
    b"bytes 1048576-2097151/734003200",
    b"bytes=18446744073709551615-0",
];

#[test]
fn fuzz_decode_request_never_panics_and_consumes_in_bounds() {
    fuzz::run(
        "http::wire::decode_request",
        WIRE_CORPUS,
        FUZZ_CASES,
        |data| match decode_request(data) {
            Ok(Decoded::Complete { consumed, .. }) => {
                assert!(
                    consumed <= data.len(),
                    "consumed {consumed} > {}",
                    data.len()
                );
                assert!(consumed > 0, "a complete message cannot be zero bytes");
            }
            Ok(Decoded::NeedMore) | Err(_) => {}
        },
    );
}

#[test]
fn fuzz_decode_response_never_panics_and_consumes_in_bounds() {
    fuzz::run(
        "http::wire::decode_response",
        WIRE_CORPUS,
        FUZZ_CASES,
        |data| match decode_response(data) {
            Ok(Decoded::Complete { consumed, .. }) => {
                assert!(
                    consumed <= data.len(),
                    "consumed {consumed} > {}",
                    data.len()
                );
                assert!(consumed > 0, "a complete message cannot be zero bytes");
            }
            Ok(Decoded::NeedMore) | Err(_) => {}
        },
    );
}

#[test]
fn fuzz_range_parsers_never_panic_and_accepted_ranges_are_sound() {
    fuzz::run("http::range::parsers", RANGE_CORPUS, FUZZ_CASES, |data| {
        let text = String::from_utf8_lossy(data);
        if let Ok(r) = ByteRange::parse_header_value(&text) {
            // Accepted ranges must have overflow-free arithmetic.
            assert!(r.start <= r.end);
            assert!(r.end <= ByteRange::MAX_OFFSET);
            let _ = r.len();
            let _ = r.next(1);
            // And must roundtrip through their canonical rendering.
            assert_eq!(ByteRange::parse_header_value(&r.to_header_value()), Ok(r));
        }
        if let Ok((r, total)) = ByteRange::parse_content_range(&text) {
            assert!(r.end < total, "accepted content-range with end >= total");
            assert!(total <= ByteRange::MAX_OFFSET);
            assert_eq!(
                ByteRange::parse_content_range(&r.to_content_range(total)),
                Ok((r, total))
            );
        }
    });
}

// Fuzz-promoted wire-frame edge cases: pinned here (at the integration
// level the fuzz targets run at) so the exact behaviours the driver
// relies on never drift.
#[test]
fn truncated_wire_frames_report_need_more_not_errors() {
    let full = WIRE_CORPUS[2];
    for cut in 0..full.len() {
        assert_eq!(
            decode_response(&full[..cut]),
            Ok(Decoded::NeedMore),
            "truncation at {cut} bytes"
        );
    }
}

#[test]
fn overlong_head_is_a_typed_error_not_a_hang() {
    let mut buf = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    buf.extend(std::iter::repeat_n(
        b'a',
        msim_http::wire::MAX_HEAD_BYTES + 1,
    ));
    assert_eq!(decode_request(&buf), Err(WireError::HeadTooLarge));
}

#[test]
fn oversized_total_in_content_range_rejected() {
    // A total past u64 entirely is malformed...
    assert_eq!(
        ByteRange::parse_content_range("bytes 0-99/99999999999999999999"),
        Err(RangeError::Malformed(
            "bytes 0-99/99999999999999999999".to_string()
        ))
    );
    // ...and one that fits u64 but exceeds MAX_OFFSET is Oversized.
    assert_eq!(
        ByteRange::parse_content_range("bytes 0-99/12000000000000000000"),
        Err(RangeError::Oversized {
            value: 12_000_000_000_000_000_000
        })
    );
}
