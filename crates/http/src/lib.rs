//! # msim-http — HTTP/1.1 and TLS-timing substrate
//!
//! MSPlayer's data plane is plain HTTP: persistent connections carrying
//! range requests (paper §2, §4). This crate supplies:
//!
//! * [`range`] — RFC 7233 byte ranges (`Range` / `Content-Range`);
//! * [`message`] — request/response types with case-insensitive headers;
//! * [`wire`] — an HTTP/1.1 serialiser and incremental parser used by the
//!   real-socket testbed;
//! * [`tls`] — the Fig. 1 HTTPS handshake timing model (η, ψ, π and the
//!   `10(θ−1)R₁` fast-path head start).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod message;
pub mod range;
pub mod tls;
pub mod wire;

pub use bytes::Bytes;
pub use message::{Headers, Method, Request, Response, StatusCode};
pub use range::{ByteRange, RangeError};
pub use tls::{Phase, TlsTimingModel};
pub use wire::{
    decode_request, decode_response, encode_request, encode_request_into, encode_response,
    encode_response_into, Decoded, WireError,
};
