//! HTTP byte ranges (RFC 7233), the mechanism MSPlayer uses for all video
//! chunk retrieval ("MSPlayer relies on range requests to retrieve video
//! chunks over different paths", §2).

use std::fmt;

/// An inclusive byte range `start..=end`, as in `Range: bytes=start-end`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte offset (inclusive).
    pub start: u64,
    /// Last byte offset (inclusive).
    pub end: u64,
}

/// Errors from parsing `Range` / `Content-Range` headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RangeError {
    /// The header did not match `bytes=<start>-<end>`.
    Malformed(String),
    /// `start > end`.
    Inverted,
    /// Range lies outside the resource (HTTP 416).
    Unsatisfiable {
        /// Resource length the range was checked against.
        resource_len: u64,
    },
    /// A parsed offset exceeds [`ByteRange::MAX_OFFSET`]. Offsets beyond it
    /// would overflow `len()` / `next()` arithmetic (fuzz-found: a header
    /// like `bytes=0-18446744073709551615` parsed fine and then paniced
    /// downstream in `len()`).
    Oversized {
        /// The offending offset.
        value: u64,
    },
    /// A `Content-Range` total inconsistent with its range (`end >= total`).
    /// Fuzz-found: an accepted inconsistent total fed resource-length logic
    /// that assumed `end < total`.
    InconsistentTotal {
        /// Last byte offset of the range.
        end: u64,
        /// The claimed resource total.
        total: u64,
    },
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeError::Malformed(s) => write!(f, "malformed range header: {s:?}"),
            RangeError::Inverted => write!(f, "range start exceeds end"),
            RangeError::Unsatisfiable { resource_len } => {
                write!(
                    f,
                    "range not satisfiable for resource of {resource_len} bytes"
                )
            }
            RangeError::Oversized { value } => {
                write!(
                    f,
                    "offset {value} exceeds the supported maximum {}",
                    ByteRange::MAX_OFFSET
                )
            }
            RangeError::InconsistentTotal { end, total } => {
                write!(f, "content-range end {end} not below its total {total}")
            }
        }
    }
}

impl std::error::Error for RangeError {}

impl ByteRange {
    /// Largest byte offset the parsers accept. `len()` computes
    /// `end - start + 1` and `next()` computes `end + 1`; capping offsets
    /// at `u64::MAX / 2` keeps both (and any offset+length sum a caller
    /// forms) overflow-free, while still covering resources eight orders
    /// of magnitude beyond any real video.
    pub const MAX_OFFSET: u64 = u64::MAX / 2;

    /// Builds a range from inclusive offsets.
    pub fn new(start: u64, end: u64) -> Result<ByteRange, RangeError> {
        if start > end {
            return Err(RangeError::Inverted);
        }
        Ok(ByteRange { start, end })
    }

    /// Builds the range covering `len` bytes starting at `offset`.
    /// `len` must be non-zero.
    pub fn from_offset_len(offset: u64, len: u64) -> ByteRange {
        assert!(len > 0, "zero-length range");
        ByteRange {
            start: offset,
            end: offset + len - 1,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Ranges are always non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders the request-header value: `bytes=start-end`.
    pub fn to_header_value(&self) -> String {
        format!("bytes={}-{}", self.start, self.end)
    }

    /// Parses a request-header value of the exact form `bytes=start-end`
    /// (the only form MSPlayer and the emulated YouTube servers use; open
    /// ended and suffix forms are rejected as unsupported).
    pub fn parse_header_value(value: &str) -> Result<ByteRange, RangeError> {
        let rest = value
            .trim()
            .strip_prefix("bytes=")
            .ok_or_else(|| RangeError::Malformed(value.to_string()))?;
        let (start_s, end_s) = rest
            .split_once('-')
            .ok_or_else(|| RangeError::Malformed(value.to_string()))?;
        let start: u64 = start_s
            .parse()
            .map_err(|_| RangeError::Malformed(value.to_string()))?;
        let end: u64 = end_s
            .parse()
            .map_err(|_| RangeError::Malformed(value.to_string()))?;
        if end > ByteRange::MAX_OFFSET {
            return Err(RangeError::Oversized { value: end });
        }
        ByteRange::new(start, end)
    }

    /// Clamps the range to a resource of `resource_len` bytes, per RFC 7233
    /// (an `end` past EOF is truncated; a `start` past EOF is 416).
    pub fn clamp_to(&self, resource_len: u64) -> Result<ByteRange, RangeError> {
        if self.start >= resource_len {
            return Err(RangeError::Unsatisfiable { resource_len });
        }
        Ok(ByteRange {
            start: self.start,
            end: self.end.min(resource_len - 1),
        })
    }

    /// Renders the `Content-Range` response value:
    /// `bytes start-end/total`.
    pub fn to_content_range(&self, total: u64) -> String {
        format!("bytes {}-{}/{}", self.start, self.end, total)
    }

    /// Parses a `Content-Range: bytes start-end/total` value; returns the
    /// range and the total resource size.
    pub fn parse_content_range(value: &str) -> Result<(ByteRange, u64), RangeError> {
        let rest = value
            .trim()
            .strip_prefix("bytes ")
            .ok_or_else(|| RangeError::Malformed(value.to_string()))?;
        let (range_s, total_s) = rest
            .split_once('/')
            .ok_or_else(|| RangeError::Malformed(value.to_string()))?;
        let (start_s, end_s) = range_s
            .split_once('-')
            .ok_or_else(|| RangeError::Malformed(value.to_string()))?;
        let start: u64 = start_s
            .parse()
            .map_err(|_| RangeError::Malformed(value.to_string()))?;
        let end: u64 = end_s
            .parse()
            .map_err(|_| RangeError::Malformed(value.to_string()))?;
        let total: u64 = total_s
            .parse()
            .map_err(|_| RangeError::Malformed(value.to_string()))?;
        if end > ByteRange::MAX_OFFSET {
            return Err(RangeError::Oversized { value: end });
        }
        if total > ByteRange::MAX_OFFSET {
            return Err(RangeError::Oversized { value: total });
        }
        if end >= total {
            return Err(RangeError::InconsistentTotal { end, total });
        }
        Ok((ByteRange::new(start, end)?, total))
    }

    /// The range immediately after this one, of length `len`.
    pub fn next(&self, len: u64) -> ByteRange {
        ByteRange::from_offset_len(self.end + 1, len)
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes[{}..={}]", self.start, self.end)
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let r = ByteRange::new(0, 65_535).unwrap();
        assert_eq!(r.len(), 65_536);
        assert!(!r.is_empty());
        let r2 = ByteRange::from_offset_len(1024, 256 * 1024);
        assert_eq!(r2.start, 1024);
        assert_eq!(r2.end, 1024 + 256 * 1024 - 1);
    }

    #[test]
    fn inverted_rejected() {
        assert_eq!(ByteRange::new(10, 5), Err(RangeError::Inverted));
    }

    #[test]
    fn header_roundtrip() {
        let r = ByteRange::from_offset_len(65_536, 65_536);
        let h = r.to_header_value();
        assert_eq!(h, "bytes=65536-131071");
        assert_eq!(ByteRange::parse_header_value(&h).unwrap(), r);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "bytes=",
            "bytes=1-",
            "bytes=-5",
            "octets=1-2",
            "bytes=a-b",
            "bytes=5",
        ] {
            assert!(
                ByteRange::parse_header_value(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn clamp_truncates_or_416s() {
        let r = ByteRange::new(100, 1_000).unwrap();
        let clamped = r.clamp_to(500).unwrap();
        assert_eq!(clamped.end, 499);
        assert_eq!(
            r.clamp_to(50),
            Err(RangeError::Unsatisfiable { resource_len: 50 })
        );
    }

    #[test]
    fn content_range_roundtrip() {
        let r = ByteRange::new(0, 1023).unwrap();
        let v = r.to_content_range(4096);
        assert_eq!(v, "bytes 0-1023/4096");
        let (back, total) = ByteRange::parse_content_range(&v).unwrap();
        assert_eq!(back, r);
        assert_eq!(total, 4096);
    }

    // Fuzz-promoted edge cases: inputs the byte-mutation driver found that
    // used to parse "successfully" and panic (or mislead) downstream.
    #[test]
    fn oversized_offsets_rejected_with_typed_error() {
        // end = u64::MAX once made len() overflow (end - start + 1).
        assert_eq!(
            ByteRange::parse_header_value("bytes=0-18446744073709551615"),
            Err(RangeError::Oversized { value: u64::MAX })
        );
        // An oversized total is rejected before the consistency check.
        assert_eq!(
            ByteRange::parse_content_range("bytes 0-10/18446744073709551615"),
            Err(RangeError::Oversized { value: u64::MAX })
        );
        // The largest accepted offset still has overflow-free arithmetic.
        let r =
            ByteRange::parse_header_value(&format!("bytes=0-{}", ByteRange::MAX_OFFSET)).unwrap();
        assert_eq!(r.len(), ByteRange::MAX_OFFSET + 1);
        let _ = r.next(1);
    }

    #[test]
    fn inconsistent_content_range_total_rejected() {
        assert_eq!(
            ByteRange::parse_content_range("bytes 0-1023/1023"),
            Err(RangeError::InconsistentTotal {
                end: 1023,
                total: 1023
            })
        );
        assert_eq!(
            ByteRange::parse_content_range("bytes 5-10/3"),
            Err(RangeError::InconsistentTotal { end: 10, total: 3 })
        );
        assert!(ByteRange::parse_content_range("bytes 0-1023/1024").is_ok());
    }

    #[test]
    fn non_ascii_digits_are_malformed_not_panics() {
        // Arabic-Indic and full-width digits must not slip through u64
        // parsing (and must not panic the slicing logic either).
        for bad in [
            "bytes=٠-٥",
            "bytes=0-５",
            "bytes 0-٥/10",
            "bytes=0-1\u{202e}",
        ] {
            assert!(
                matches!(
                    ByteRange::parse_header_value(bad),
                    Err(RangeError::Malformed(_))
                ) || matches!(
                    ByteRange::parse_content_range(bad),
                    Err(RangeError::Malformed(_))
                ),
                "should reject {bad:?} as malformed"
            );
        }
    }

    #[test]
    fn next_range_is_contiguous() {
        let r = ByteRange::from_offset_len(0, 1000);
        let n = r.next(500);
        assert_eq!(n.start, 1000);
        assert_eq!(n.len(), 500);
    }
}
