//! HTTP/1.1 request and response types with case-insensitive headers.
//!
//! These are shared by the simulator (which moves messages as values) and
//! the real-socket testbed (which serialises them with [`crate::wire`]).

use crate::bytes::Bytes;
use std::fmt;

/// The request methods the system uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET` — video info and range requests.
    Get,
    /// `HEAD` — size probes.
    Head,
    /// `POST` — OAuth-style token exchange.
    Post,
}

impl Method {
    /// Canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        }
    }

    /// Parses a token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status codes used by the emulated YouTube service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 206 Partial Content (every range response)
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    /// 302 Found (server redirection during failover)
    pub const FOUND: StatusCode = StatusCode(302);
    /// 400 Bad Request
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden (expired / invalid access token)
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 416 Range Not Satisfiable
    pub const RANGE_NOT_SATISFIABLE: StatusCode = StatusCode(416);
    /// 500 Internal Server Error (failed server)
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable (overloaded server)
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The standard reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            206 => "Partial Content",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            416 => "Range Not Satisfiable",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 5xx?
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered multimap of headers with case-insensitive lookup.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, order preserved).
    pub fn insert(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses `Content-Length`, if present and well-formed.
    pub fn content_length(&self) -> Option<u64> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }
}

/// An HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (origin-form, e.g. `/videoplayback?...`).
    pub target: String,
    /// Header fields.
    pub headers: Headers,
    /// Body (empty for GET/HEAD).
    pub body: Bytes,
}

impl Request {
    /// Builds a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.insert(name, value);
        self
    }

    /// Adds a `Range` header from a [`crate::range::ByteRange`].
    pub fn with_range(self, range: crate::range::ByteRange) -> Request {
        self.header("Range", range.to_header_value())
    }

    /// The parsed `Range` header, if present.
    pub fn range(&self) -> Option<Result<crate::range::ByteRange, crate::range::RangeError>> {
        self.headers
            .get("range")
            .map(crate::range::ByteRange::parse_header_value)
    }

    /// The `Host` header.
    pub fn host(&self) -> Option<&str> {
        self.headers.get("host")
    }

    /// Query parameter lookup on the target (`?k=v&k2=v2`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// The path part of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }
}

/// An HTTP/1.1 response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// Builds a response with a body and a correct `Content-Length`.
    pub fn new(status: StatusCode, body: impl Into<Bytes>) -> Response {
        let body = body.into();
        let mut headers = Headers::new();
        headers.insert("Content-Length", body.len().to_string());
        Response {
            status,
            headers,
            body,
        }
    }

    /// 200 response with a JSON body and content type.
    pub fn json(body: impl Into<Bytes>) -> Response {
        Response::new(StatusCode::OK, body)
            .header("Content-Type", "application/json; charset=utf-8")
    }

    /// 206 response carrying `body` for `range` of a `total`-byte resource.
    pub fn partial_content(
        body: impl Into<Bytes>,
        range: crate::range::ByteRange,
        total: u64,
    ) -> Response {
        Response::new(StatusCode::PARTIAL_CONTENT, body)
            .header("Content-Range", range.to_content_range(total))
            .header("Accept-Ranges", "bytes")
    }

    /// A response with `status` and a JSON error body of the shape
    /// `{"error": "...", "target": "..."}` — the uniform reply the
    /// testbed-side servers use for unknown endpoints and malformed
    /// requests (instead of silently dropping the connection).
    pub fn json_error(status: StatusCode, error: &str, target: &str) -> Response {
        let body = format!(
            "{{\"error\":\"{}\",\"target\":\"{}\"}}",
            json_escape(error),
            json_escape(target)
        );
        Response::new(status, body.into_bytes())
            .header("Content-Type", "application/json; charset=utf-8")
    }

    /// 404 with a JSON error body naming the unknown `target`.
    pub fn not_found_json(target: &str) -> Response {
        Response::json_error(StatusCode::NOT_FOUND, "unknown endpoint", target)
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.insert(name, value);
        self
    }

    /// The parsed `Content-Range` header.
    pub fn content_range(
        &self,
    ) -> Option<Result<(crate::range::ByteRange, u64), crate::range::RangeError>> {
        self.headers
            .get("content-range")
            .map(crate::range::ByteRange::parse_content_range)
    }
}

/// Minimal JSON string escaping for the error bodies built above.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::ByteRange;

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.insert("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert_eq!(h.content_length(), Some(42));
    }

    #[test]
    fn duplicate_headers_first_wins_on_get() {
        let mut h = Headers::new();
        h.insert("X-A", "1");
        h.insert("x-a", "2");
        assert_eq!(h.get("X-A"), Some("1"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn request_builders() {
        let req = Request::get("/watch?v=qjT4T2gU9sM&fmt=22")
            .header("Host", "www.youtube.com")
            .with_range(ByteRange::from_offset_len(0, 65_536));
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.host(), Some("www.youtube.com"));
        assert_eq!(req.path(), "/watch");
        assert_eq!(req.query_param("v"), Some("qjT4T2gU9sM"));
        assert_eq!(req.query_param("fmt"), Some("22"));
        assert_eq!(req.query_param("nope"), None);
        let r = req.range().unwrap().unwrap();
        assert_eq!(r.len(), 65_536);
    }

    #[test]
    fn response_builders() {
        let body = vec![0u8; 1024];
        let resp = Response::partial_content(body, ByteRange::from_offset_len(0, 1024), 4096);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.headers.content_length(), Some(1024));
        let (range, total) = resp.content_range().unwrap().unwrap();
        assert_eq!(range.len(), 1024);
        assert_eq!(total, 4096);
    }

    #[test]
    fn status_categories() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::PARTIAL_CONTENT.is_success());
        assert!(!StatusCode::FORBIDDEN.is_success());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert_eq!(
            StatusCode::PARTIAL_CONTENT.to_string(),
            "206 Partial Content"
        );
    }

    #[test]
    fn json_error_bodies_are_wellformed() {
        let resp = Response::not_found_json("/nope?q=\"x\"\n");
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert_eq!(
            resp.headers.get("content-type"),
            Some("application/json; charset=utf-8")
        );
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert_eq!(
            body,
            "{\"error\":\"unknown endpoint\",\"target\":\"/nope?q=\\\"x\\\"\\n\"}"
        );
        assert_eq!(resp.headers.content_length(), Some(body.len() as u64));
    }

    #[test]
    fn method_parse_roundtrip() {
        for m in [Method::Get, Method::Head, Method::Post] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }
}
