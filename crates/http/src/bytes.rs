//! A minimal stand-in for the `bytes` crate's `Bytes`: an immutable,
//! cheaply clonable byte buffer backed by `Arc<[u8]>`. Clones are
//! reference-count bumps, so passing response bodies around never copies
//! payload data.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
