//! HTTP/1.1 wire codec: serialisation and an incremental parser.
//!
//! Used by the real-socket testbed (`msim-testbed`), where actual bytes move
//! over loopback TCP. The parser is incremental: feed it bytes as they
//! arrive; it reports `NeedMore` until a full head (and body, per
//! `Content-Length`) is available. Only the framing the system needs is
//! implemented: `Content-Length` bodies (YouTube range responses always know
//! their length) — no chunked transfer encoding.

use crate::bytes::Bytes;
use crate::message::{Headers, Method, Request, Response, StatusCode};
use std::fmt;

/// Maximum accepted head (request/status line + headers) size.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted body size (a guard; chunk sizes are ≤ a few MB).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Wire-level decode errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Head exceeded [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// Body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(u64),
    /// Malformed start line or header.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::HeadTooLarge => write!(f, "message head exceeds {MAX_HEAD_BYTES} bytes"),
            WireError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes is too large"),
            WireError::Malformed(s) => write!(f, "malformed HTTP message: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialises a request into wire bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + req.body.len());
    encode_request_into(req, &mut out);
    out
}

/// Serialises a request into `out` (cleared first). Callers with a hot
/// request loop hold one buffer and reuse its capacity across requests
/// instead of allocating per message.
pub fn encode_request_into(req: &Request, out: &mut Vec<u8>) {
    use std::io::Write as _;
    out.clear();
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    let mut has_len = false;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            has_len = true;
        }
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !req.body.is_empty() && !has_len {
        write!(out, "Content-Length: {}\r\n", req.body.len()).expect("Vec write");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
}

/// Serialises a response into wire bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + resp.body.len());
    encode_response_into(resp, &mut out);
    out
}

/// Serialises a response into `out` (cleared first); the reusable-buffer
/// counterpart of [`encode_response`].
pub fn encode_response_into(resp: &Response, out: &mut Vec<u8>) {
    use std::io::Write as _;
    out.clear();
    write!(
        out,
        "HTTP/1.1 {} {}\r\n",
        resp.status.0,
        resp.status.reason()
    )
    .expect("Vec write");
    let mut has_len = false;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            has_len = true;
        }
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !has_len {
        write!(out, "Content-Length: {}\r\n", resp.body.len()).expect("Vec write");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
}

/// Outcome of a decode attempt over a byte buffer.
#[derive(Debug, PartialEq)]
pub enum Decoded<T> {
    /// A complete message was parsed; `consumed` bytes should be drained
    /// from the front of the buffer.
    Complete {
        /// The decoded message.
        message: T,
        /// Bytes consumed from the buffer front.
        consumed: usize,
    },
    /// More bytes are needed.
    NeedMore,
}

/// Attempts to decode one request from the front of `buf`.
pub fn decode_request(buf: &[u8]) -> Result<Decoded<Request>, WireError> {
    let Some(head_end) = find_head_end(buf)? else {
        return Ok(Decoded::NeedMore);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| WireError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default();
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| WireError::Malformed(format!("bad method in {start:?}")))?;
    let target = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing version".into()))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let headers = parse_headers(lines)?;
    let body_len = headers.content_length().unwrap_or(0);
    finish_with_body(buf, head_end, headers, body_len, |headers, body| Request {
        method,
        target,
        headers,
        body,
    })
}

/// Attempts to decode one response from the front of `buf`.
pub fn decode_response(buf: &[u8]) -> Result<Decoded<Response>, WireError> {
    let Some(head_end) = find_head_end(buf)? else {
        return Ok(Decoded::NeedMore);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| WireError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default();
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed(format!("bad version {version:?}")));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| WireError::Malformed(format!("bad status in {start:?}")))?;
    let headers = parse_headers(lines)?;
    let body_len = headers.content_length().unwrap_or(0);
    finish_with_body(buf, head_end, headers, body_len, |headers, body| Response {
        status: StatusCode(code),
        headers,
        body,
    })
}

/// Finds the index just past `\r\n\r\n`, or `None` if incomplete.
fn find_head_end(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Ok(Some(pos + 4));
    }
    if buf.len() > MAX_HEAD_BYTES {
        return Err(WireError::HeadTooLarge);
    }
    Ok(None)
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, WireError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("bad header line {line:?}")))?;
        headers.insert(name.trim(), value.trim().to_string());
    }
    Ok(headers)
}

fn finish_with_body<T>(
    buf: &[u8],
    head_end: usize,
    headers: Headers,
    body_len: u64,
    build: impl FnOnce(Headers, Bytes) -> T,
) -> Result<Decoded<T>, WireError> {
    if body_len > MAX_BODY_BYTES as u64 {
        return Err(WireError::BodyTooLarge(body_len));
    }
    let body_len = body_len as usize;
    if buf.len() < head_end + body_len {
        return Ok(Decoded::NeedMore);
    }
    let body = Bytes::copy_from_slice(&buf[head_end..head_end + body_len]);
    Ok(Decoded::Complete {
        message: build(headers, body),
        consumed: head_end + body_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::ByteRange;

    #[test]
    fn request_roundtrip() {
        let req = Request::get("/videoplayback?id=abc&itag=22")
            .header("Host", "r3.example.net")
            .with_range(ByteRange::from_offset_len(0, 262_144));
        let wire = encode_request(&req);
        match decode_request(&wire).unwrap() {
            Decoded::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message, req);
            }
            Decoded::NeedMore => panic!("complete message reported incomplete"),
        }
    }

    #[test]
    fn response_roundtrip_with_body() {
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let resp = Response::partial_content(body, ByteRange::from_offset_len(0, 1000), 5000);
        let wire = encode_response(&resp);
        match decode_response(&wire).unwrap() {
            Decoded::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message.status, StatusCode::PARTIAL_CONTENT);
                assert_eq!(message.body.len(), 1000);
                assert_eq!(message.body, resp.body);
            }
            Decoded::NeedMore => panic!("incomplete"),
        }
    }

    #[test]
    fn incremental_parse_waits_for_body() {
        let resp = Response::new(StatusCode::OK, vec![7u8; 100]);
        let wire = encode_response(&resp);
        // Feed all prefixes: every strict prefix must be NeedMore.
        for cut in 0..wire.len() {
            match decode_response(&wire[..cut]) {
                Ok(Decoded::NeedMore) => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
        assert!(matches!(
            decode_response(&wire).unwrap(),
            Decoded::Complete { .. }
        ));
    }

    #[test]
    fn pipelined_messages_consume_exactly_one() {
        let r1 = Response::new(StatusCode::OK, b"first".to_vec());
        let r2 = Response::new(StatusCode::OK, b"second!".to_vec());
        let mut wire = encode_response(&r1);
        wire.extend_from_slice(&encode_response(&r2));
        let Decoded::Complete { message, consumed } = decode_response(&wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(&message.body[..], b"first");
        let Decoded::Complete { message: m2, .. } = decode_response(&wire[consumed..]).unwrap()
        else {
            panic!("second incomplete");
        };
        assert_eq!(&m2.body[..], b"second!");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(matches!(
            decode_request(b"BREW / HTTP/1.1\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(b"GET /\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(b"SIP/2.0 200 OK\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(b"GET / HTTP/1.1\r\nbadline\r\n\r\n"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(decode_request(&buf), Err(WireError::HeadTooLarge));
    }

    #[test]
    fn oversized_body_rejected() {
        let wire = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES as u64 + 1
        );
        assert!(matches!(
            decode_response(wire.as_bytes()),
            Err(WireError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn content_length_not_duplicated_by_encoder() {
        let resp = Response::new(StatusCode::OK, b"xyz".to_vec());
        let wire = encode_response(&resp);
        let text = String::from_utf8_lossy(&wire);
        assert_eq!(text.matches("Content-Length").count(), 1);
    }
}
