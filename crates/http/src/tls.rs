//! TLS handshake timing model — the paper's Fig. 1.
//!
//! MSPlayer bootstraps each path with an HTTPS connection to a YouTube web
//! proxy server. Fig. 1 decomposes that connection into phases and §3.2
//! derives three quantities that drive the chunk scheduler's head-start
//! behaviour:
//!
//! * `η(R) = 4R + Δ₁ + Δ₂` — time until the secure connection can carry the
//!   first HTTP request (3WHS + hello exchange + key exchange + finished
//!   exchange, with server-side compute delays Δ₁ and Δ₂);
//! * `ψ(R) = 6R + Δ₁ + Δ₂` — time until the complete JSON video information
//!   has arrived (the JSON fits in two round trips, "slightly less than 20
//!   packets");
//! * `π(R) ≈ ψ(R) + η(R)` — time until the first *video* packet arrives,
//!   assuming the video server is close to the proxy and verifies keys at a
//!   similar speed (the video-server connection costs another η plus one
//!   request round trip, folded into the approximation).
//!
//! The fast path therefore starts streaming `π₂ − π₁ ≈ 10(θ−1)R₁` before the
//! slow one, where `θ = R₂/R₁ ≥ 1` — this is the WiFi head start measured in
//! Table 1.

use msim_core::time::{SimDuration, SimTime};

/// Fig. 1 phases of the HTTPS exchange with a web proxy server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// TCP SYN sent.
    SynSent,
    /// 3WHS complete; ClientHello sent (`t₁`).
    ClientHello,
    /// ServerHello + Certificate + ServerHelloDone/ServerKeyExchange
    /// received (server spent Δ₁ verifying).
    ServerHello,
    /// ClientKeyExchange sent (`t₂`).
    ClientKeyExchange,
    /// NewSessionTicket received (server spent Δ₂ on the exchange).
    NewSessionTicket,
    /// Finished exchange done; secure channel ready; HTTP request sent
    /// (`t₃`, at offset η).
    HttpRequestSent,
    /// First JSON packet arrives (`t₄`).
    FirstJsonPacket,
    /// JSON complete (`t₅`, at offset ψ).
    JsonComplete,
    /// TCP FIN (`t₆`).
    Fin,
}

/// The timing model: server compute delays Δ₁ (certificate/key verification)
/// and Δ₂ (key-exchange completion).
#[derive(Clone, Copy, Debug)]
pub struct TlsTimingModel {
    /// Δ₁ — server key-verification time.
    pub delta1: SimDuration,
    /// Δ₂ — server key-exchange completion time.
    pub delta2: SimDuration,
}

impl Default for TlsTimingModel {
    fn default() -> Self {
        // A few milliseconds of server-side crypto, typical of 2014 hardware.
        TlsTimingModel {
            delta1: SimDuration::from_millis(4),
            delta2: SimDuration::from_millis(3),
        }
    }
}

impl TlsTimingModel {
    /// η(R): offset from SYN until the first HTTP request can be sent.
    pub fn eta(&self, rtt: SimDuration) -> SimDuration {
        rtt * 4 + self.delta1 + self.delta2
    }

    /// ψ(R): offset from SYN until the complete JSON video info is received.
    pub fn psi(&self, rtt: SimDuration) -> SimDuration {
        rtt * 6 + self.delta1 + self.delta2
    }

    /// π(R) ≈ ψ(R) + η(R): offset from SYN until the first video packet
    /// arrives from the associated video server.
    pub fn pi(&self, rtt: SimDuration) -> SimDuration {
        self.psi(rtt) + self.eta(rtt)
    }

    /// The fast path's head start `π(R₂) − π(R₁) = 10(θ−1)R₁` for
    /// `R₂ = θ·R₁` (Δ terms cancel).
    pub fn head_start(&self, r1: SimDuration, r2: SimDuration) -> SimDuration {
        self.pi(r2.max(r1)).saturating_sub(self.pi(r1.min(r2)))
    }

    /// The full Fig. 1 event timeline for a connection whose SYN leaves at
    /// `start` over a path with round-trip time `rtt`.
    pub fn timeline(&self, start: SimTime, rtt: SimDuration) -> Vec<(SimTime, Phase)> {
        let d1 = self.delta1;
        let d2 = self.delta2;
        let t1 = start + rtt; // 3WHS done, ClientHello out
        let server_hello = t1 + rtt + d1;
        let client_kx = server_hello; // sent immediately
        let ticket = client_kx + rtt + d2;
        let request = start + self.eta(rtt); // after Finished exchange
        let first_json = request + rtt;
        let json_done = start + self.psi(rtt);
        let fin = json_done + rtt;
        vec![
            (start, Phase::SynSent),
            (t1, Phase::ClientHello),
            (server_hello, Phase::ServerHello),
            (client_kx, Phase::ClientKeyExchange),
            (ticket, Phase::NewSessionTicket),
            (request, Phase::HttpRequestSent),
            (first_json, Phase::FirstJsonPacket),
            (json_done, Phase::JsonComplete),
            (fin, Phase::Fin),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TlsTimingModel {
        TlsTimingModel {
            delta1: SimDuration::from_millis(5),
            delta2: SimDuration::from_millis(3),
        }
    }

    #[test]
    fn eta_psi_pi_formulas() {
        let m = model();
        let r = SimDuration::from_millis(30);
        assert_eq!(m.eta(r), SimDuration::from_millis(4 * 30 + 8));
        assert_eq!(m.psi(r), SimDuration::from_millis(6 * 30 + 8));
        assert_eq!(m.pi(r), SimDuration::from_millis(10 * 30 + 16));
    }

    #[test]
    fn head_start_is_ten_theta_minus_one_r1() {
        let m = model();
        let r1 = SimDuration::from_millis(25);
        for theta10 in [10u64, 15, 20, 25, 30] {
            let r2 = SimDuration::from_micros(r1.as_micros() * theta10 / 10);
            let expected = SimDuration::from_micros(r1.as_micros() * (theta10 - 10));
            assert_eq!(
                m.head_start(r1, r2),
                expected,
                "theta = {}",
                theta10 as f64 / 10.0
            );
        }
    }

    #[test]
    fn head_start_is_symmetric_in_argument_order() {
        let m = model();
        let a = SimDuration::from_millis(25);
        let b = SimDuration::from_millis(70);
        assert_eq!(m.head_start(a, b), m.head_start(b, a));
        assert_eq!(m.head_start(a, a), SimDuration::ZERO);
    }

    #[test]
    fn timeline_is_ordered_and_consistent() {
        let m = model();
        let r = SimDuration::from_millis(40);
        let start = SimTime::from_secs(1);
        let tl = m.timeline(start, r);
        assert_eq!(tl.len(), 9);
        for pair in tl.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "timeline out of order: {pair:?}");
        }
        // The request leaves at start + η.
        let req = tl
            .iter()
            .find(|(_, p)| *p == Phase::HttpRequestSent)
            .unwrap();
        assert_eq!(req.0, start + m.eta(r));
        // JSON completes at start + ψ.
        let json = tl.iter().find(|(_, p)| *p == Phase::JsonComplete).unwrap();
        assert_eq!(json.0, start + m.psi(r));
        // First JSON packet exactly one RTT after the request.
        let first = tl
            .iter()
            .find(|(_, p)| *p == Phase::FirstJsonPacket)
            .unwrap();
        assert_eq!(first.0, req.0 + r);
    }

    #[test]
    fn wifi_lte_head_start_magnitude() {
        // With the paper's testbed numbers (R1 = 25 ms, θ ≈ 2.6), the head
        // start is ≈ 10 · 1.6 · 25 ms = 400 ms.
        let m = TlsTimingModel::default();
        let hs = m.head_start(SimDuration::from_millis(25), SimDuration::from_millis(65));
        assert_eq!(hs, SimDuration::from_millis(400));
    }
}
