//! The JSON value tree.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
///
/// Objects preserve no insertion order (keys are kept sorted in a
/// `BTreeMap`), which makes serialisation deterministic — important because
/// emulated YouTube JSON responses are part of seeded, replayable sessions.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Fluent insert for building objects; panics when `self` is not an
    /// object (builder misuse, a programming error).
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("Value::with on non-object {other:?}"),
        }
        self
    }

    /// Member lookup: `v.get("formats")`. Returns `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array index lookup. Returns `None` on non-arrays and out of range.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let v = Value::object()
            .with("title", "Some Video")
            .with("views", 1234u64)
            .with("hd", true)
            .with("tags", vec!["a", "b"]);
        assert_eq!(v.get("title").and_then(Value::as_str), Some("Some Video"));
        assert_eq!(v.get("views").and_then(Value::as_u64), Some(1234));
        assert_eq!(v.get("hd").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("tags").and_then(|t| t.at(1)).and_then(Value::as_str),
            Some("b")
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-2.0).as_u64(), None);
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
    }

    #[test]
    fn type_mismatches_return_none() {
        let v = Value::String("x".into());
        assert!(v.as_f64().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_array().is_none());
        assert!(v.as_object().is_none());
        assert!(v.get("k").is_none());
        assert!(v.at(0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn with_on_non_object_panics() {
        Value::Null.with("k", 1u64);
    }
}
