//! # msim-json — minimal JSON for the emulated YouTube control plane
//!
//! The MSPlayer bootstrap exchanges "JSON objects" with YouTube web proxy
//! servers (paper §3.1/§4): video metadata, available formats, access tokens
//! and video-server domain names. This crate provides exactly the JSON
//! machinery those exchanges need — a [`Value`] tree, an RFC 8259 parser with
//! positioned errors, and deterministic serialisers — without pulling a JSON
//! dependency beyond the approved crate list.
//!
//! ```
//! use msim_json::{from_str, Value};
//!
//! let v = Value::object()
//!     .with("video_id", "qjT4T2gU9sM")
//!     .with("itag", 22u64);
//! let text = msim_json::to_string(&v);
//! assert_eq!(from_str(&text).unwrap(), v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;
pub mod ser;
pub mod value;

pub use parse::{from_str, ParseError};
pub use ser::{to_string, to_string_pretty};
pub use value::Value;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy for arbitrary JSON values of bounded size.
    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            // Finite, roundtrippable numbers.
            (-1e12f64..1e12).prop_map(Value::Number),
            "[a-zA-Z0-9 \\\\\"\\n\\t\u{e9}\u{4e2d}]{0,20}".prop_map(Value::String),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        /// Serialise → parse is the identity for finite-number documents.
        #[test]
        fn roundtrip_compact(v in value_strategy()) {
            let text = to_string(&v);
            let back = from_str(&text).unwrap();
            prop_assert!(values_close(&v, &back), "compact roundtrip:\n{text}");
        }

        /// Pretty printing parses back to the same value.
        #[test]
        fn roundtrip_pretty(v in value_strategy()) {
            let text = to_string_pretty(&v);
            let back = from_str(&text).unwrap();
            prop_assert!(values_close(&v, &back), "pretty roundtrip:\n{text}");
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(s in "\\PC*") {
            let _ = from_str(&s);
        }

        /// Strings of any printable shape survive a write/read cycle.
        #[test]
        fn strings_roundtrip_exactly(s in "\\PC{0,64}") {
            let v = Value::String(s.clone());
            let back = from_str(&to_string(&v)).unwrap();
            prop_assert_eq!(back.as_str(), Some(s.as_str()));
        }
    }

    /// Structural equality with approximate float comparison (parsing via
    /// decimal text may round the last ulp).
    fn values_close(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Number(x), Value::Number(y)) => {
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
            }
            (Value::Array(xs), Value::Array(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_close(x, y))
            }
            (Value::Object(xm), Value::Object(ym)) => {
                xm.len() == ym.len()
                    && xm
                        .iter()
                        .zip(ym.iter())
                        .all(|((kx, vx), (ky, vy))| kx == ky && values_close(vx, vy))
            }
            _ => a == b,
        }
    }
}
