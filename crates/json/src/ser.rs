//! JSON serialisation: compact and pretty printers.

use crate::value::Value;
use std::fmt::Write as _;

/// Serialises compactly (no insignificant whitespace). Keys appear in the
/// object's sorted order, so output is deterministic.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialises with 2-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "non-finite numbers cannot be serialised");
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integers print without a trailing ".0", like serde_json.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::from_str;

    #[test]
    fn compact_output() {
        let v = Value::object()
            .with("b", 2u64)
            .with("a", vec![1u64, 2])
            .with("s", "x\ny");
        // Keys sorted: a, b, s.
        assert_eq!(to_string(&v), r#"{"a":[1,2],"b":2,"s":"x\ny"}"#);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(to_string(&Value::Number(42.0)), "42");
        assert_eq!(to_string(&Value::Number(-7.0)), "-7");
        assert_eq!(to_string(&Value::Number(2.5)), "2.5");
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::object().with("a", 1u64);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])), "[]");
        assert_eq!(to_string(&Value::object()), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])), "[]");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::String("\u{0001}\u{0008}\u{000C}".into());
        assert_eq!(to_string(&v), "\"\\u0001\\b\\f\"");
    }

    #[test]
    fn roundtrip_preserves_value() {
        let v = Value::object()
            .with("id", "dQw4w9WgXcQ")
            .with("sizes", vec![65536u64, 262144, 1048576])
            .with("ratio", 0.625)
            .with("nested", Value::object().with("deep", Value::Null));
        let text = to_string(&v);
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }
}
