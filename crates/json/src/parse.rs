//! Recursive-descent JSON parser (RFC 8259) with positioned errors and a
//! nesting-depth limit.

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser (defence against stack
/// exhaustion from adversarial input).
pub const MAX_DEPTH: usize = 128;

/// A parse failure with byte offset and a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                self.pos -= 1;
                Err(self.err(&format!(
                    "expected '{}', found '{}'",
                    b as char, got as char
                )))
            }
            None => Err(self.err(&format!("expected '{}', found end of input", b as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require a following \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str so it is valid;
                    // re-decode the sequence starting at `first`.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone or a non-zero digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-3.25e2").unwrap(), Value::Number(-325.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"
        {
          "video_id": "qjT4T2gU9sM",
          "formats": [
            {"itag": 22, "quality": "720p", "size": 123456789},
            {"itag": 18, "quality": "360p", "size": 45678901}
          ],
          "copyrighted": false,
          "token": null
        }"#;
        let v = from_str(doc).unwrap();
        assert_eq!(
            v.get("video_id").and_then(Value::as_str),
            Some("qjT4T2gU9sM")
        );
        let f0 = v.get("formats").and_then(|f| f.at(0)).unwrap();
        assert_eq!(f0.get("itag").and_then(Value::as_u64), Some(22));
        assert!(v.get("token").unwrap().is_null());
    }

    #[test]
    fn string_escapes() {
        let v = from_str(r#""a\"b\\c\/d\n\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\n\tA\u{e9}"));
    }

    #[test]
    fn surrogate_pairs() {
        // U+1D11E MUSICAL SYMBOL G CLEF
        let v = from_str(r#""𝄞""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1D11E}"));
    }

    #[test]
    fn unpaired_surrogate_is_error() {
        assert!(from_str(r#""\ud834""#).is_err());
        assert!(from_str(r#""\udd1e""#).is_err());
    }

    #[test]
    fn utf8_passthrough() {
        let v = from_str("\"héllo wörld ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld ✓"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "01", "1.", "1e", "+1", "'x'", "tru", "[1] junk",
            "\"\x01\"", "{a:1}",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = from_str("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = from_str(&deep).unwrap_err();
        assert!(err.reason.contains("deep"));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = from_str(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.at(1)).and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = from_str(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
    }
}
