//! Byte-mutation fuzz target for the hand-rolled JSON parser.
//!
//! Contract: `from_str` never panics on arbitrary input, and anything it
//! accepts must survive a serialise → reparse roundtrip bit-identically
//! (the corpus recorder depends on that stability).

use msim_json::{from_str, to_string, to_string_pretty};
use proptest::fuzz;

const CORPUS: &[&[u8]] = &[
    br#"{"video_id":"qjT4T2gU9sM","itag":22,"servers":["r3.example.net","r7.example.net"]}"#,
    br#"{"seed":42,"plan":"skew:+250ms;overload:path=1,from=1s,until=10s","nested":{"a":[1,2.5,-3e2,true,false,null]}}"#,
    "[{\"k\":\"\u{e9}\\\"\\\\\\n\"},[],{},\"\"]".as_bytes(),
    br#"-0.0031415e3"#,
    br#""lone string with \t escapes""#,
];

#[test]
fn fuzz_json_parse_never_panics_and_accepted_values_roundtrip() {
    fuzz::run("json::parse", CORPUS, 2_000, |data| {
        let text = String::from_utf8_lossy(data);
        if let Ok(v) = from_str(&text) {
            let compact = to_string(&v);
            let back = from_str(&compact)
                .unwrap_or_else(|e| panic!("serialised form {compact:?} must reparse: {e}"));
            assert_eq!(back, v, "roundtrip drift through {compact:?}");
            // The pretty printer must agree with the compact one.
            assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
        }
    });
}
