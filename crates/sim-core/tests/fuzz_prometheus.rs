//! Byte-mutation fuzz targets for the Prometheus text-exposition layer.
//!
//! Two contracts:
//!
//! 1. `parse_exposition_line` never panics on arbitrary input, and
//!    anything it accepts re-renders into a line it accepts again with
//!    the same name/labels/value (parser idempotence);
//! 2. `metric_key` — the sanitizer + label escaper that builds every
//!    registry key — always produces a key that, rendered as a sample
//!    line, parses back with the sanitized name and the *original*
//!    (unescaped) label values. This is the property the live `/metrics`
//!    endpoint depends on: no workload-supplied string can produce an
//!    unparseable exposition.

#![cfg(feature = "telemetry")]

use msim_core::telemetry::{
    escape_label_value, metric_key, parse_exposition_line, sanitize_metric_name,
};
use proptest::fuzz;

const LINE_CORPUS: &[&[u8]] = &[
    b"msp_sessions_total 42",
    b"msp_transfer_requests_total{engine=\"block\"} 17",
    b"msp_chaos_violations_total{plan=\"skew:+250ms;overload:path=1\"} 0",
    b"msp_chunk_fetch_us_bucket{le=\"+Inf\"} 9001 1700000000",
    b"# HELP msp_sessions_total sessions started",
    b"# TYPE msp_sessions_total counter",
    b"weird{a=\"\\\\\\\"\\n\",b=\"\xc3\xa9\"} -0.5e-3",
    b"",
];

/// Contract 1: the line parser is total (no panics) and idempotent on
/// accepted input.
#[test]
fn fuzz_exposition_parser_never_panics_and_is_idempotent() {
    fuzz::run(
        "telemetry::parse_exposition_line",
        LINE_CORPUS,
        3_000,
        |data| {
            let line = String::from_utf8_lossy(data);
            let Ok(Some(sample)) = parse_exposition_line(&line) else {
                return; // rejected or comment/blank: only "no panic" is claimed
            };
            // Re-render from parsed parts and parse again: the parser must
            // accept its own normal form and agree with itself.
            let mut rendered = sample.name.clone();
            if !sample.labels.is_empty() {
                rendered.push('{');
                for (i, (k, v)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        rendered.push(',');
                    }
                    rendered.push_str(k);
                    rendered.push_str("=\"");
                    rendered.push_str(&escape_label_value(v));
                    rendered.push('"');
                }
                rendered.push('}');
            }
            rendered.push(' ');
            rendered.push_str(&format!("{}", sample.value));
            let again = parse_exposition_line(&rendered)
                .unwrap_or_else(|e| panic!("re-rendered {rendered:?} must parse: {e}"))
                .expect("re-rendered line is a sample");
            assert_eq!(again.name, sample.name, "name drift through {rendered:?}");
            assert_eq!(
                again.labels, sample.labels,
                "label drift through {rendered:?}"
            );
            assert!(
                again.value == sample.value || (again.value.is_nan() && sample.value.is_nan()),
                "value drift through {rendered:?}: {} vs {}",
                again.value,
                sample.value
            );
        },
    );
}

const NAME_CORPUS: &[&[u8]] = &[
    b"msp_sessions_total",
    b"9starts_with_digit",
    b"dots.and-dashes and spaces",
    b"quote\"backslash\\newline\nmix",
    b"\xc3\xa9\xd9\xa0\xd9\xa5 unicode",
    b"",
];

/// Contract 2: arbitrary bytes fed through `metric_key` as a name and a
/// label value always yield a parseable sample line, the name survives
/// as its sanitized form, and the label value round-trips exactly.
#[test]
fn fuzz_metric_key_always_renders_parseable_lines() {
    fuzz::run("telemetry::metric_key", NAME_CORPUS, 3_000, |data| {
        let raw = String::from_utf8_lossy(data);
        // Split the fuzz input into a name half and a label-value half so
        // both sides see hostile bytes.
        let mut mid = raw.len() / 2;
        while mid < raw.len() && !raw.is_char_boundary(mid) {
            mid += 1;
        }
        let (name_part, value_part) = raw.split_at(mid);
        let key = metric_key(name_part, &[("plan", value_part)]);
        let line = format!("{key} 1");
        let sample = parse_exposition_line(&line)
            .unwrap_or_else(|e| panic!("metric_key output {line:?} must parse: {e}"))
            .expect("sample line");
        assert_eq!(sample.name, sanitize_metric_name(name_part));
        assert_eq!(
            sample.labels,
            vec![("plan".to_string(), value_part.to_string())],
            "label value did not round-trip through escape/parse"
        );
        assert_eq!(sample.value, 1.0);
        // The bare (label-free) form must also parse.
        let bare = format!("{} 0", metric_key(name_part, &[]));
        parse_exposition_line(&bare)
            .unwrap_or_else(|e| panic!("bare key {bare:?} must parse: {e}"))
            .expect("bare sample");
    });
}
