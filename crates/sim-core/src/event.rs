//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with a strict
//! total order: events scheduled for the same instant pop in the order they
//! were pushed (FIFO tie-break via a monotone sequence number). This makes
//! every simulation replayable bit-for-bit from a seed.
//!
//! ## Implementation
//!
//! An index-addressable **4-ary min-heap** over a **generation-stamped
//! slab**:
//!
//! * heap entries carry `(at, seq, slot)` inline, so sift comparisons never
//!   chase a pointer into the slab;
//! * the 4-ary layout halves tree depth versus a binary heap and keeps the
//!   four children of a node within one cache line of indices — pops of
//!   near-future events touch fewer levels;
//! * cancellation is **O(1)**: it flips the slot's state to a tombstone that
//!   `pop`/`peek_time` discard when the entry surfaces. There is no side
//!   `HashSet` — the pop path does zero hash lookups — and tombstoned slots
//!   are recycled through a free list, so memory stays bounded by the peak
//!   number of pending events;
//! * slot reuse bumps a generation counter, so a stale [`EventId`] can never
//!   cancel an unrelated later event.
//!
//! The previous `BinaryHeap + HashSet` lazy-cancellation implementation is
//! kept (test-only) as `legacy::LegacyQueue`, and a differential test drives
//! both through randomized push/cancel/pop/peek schedules asserting
//! identical observable behaviour.

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
///
/// Internally a `(slot, generation)` pair; the generation stamp makes
/// handles single-use — once the event fires or is cancelled, the handle
/// goes stale and [`EventQueue::cancel`] returns `false` for it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Heap entry: ordering key inline, payload in the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

enum Slot<E> {
    /// Pending event.
    Occupied(E),
    /// Cancelled; its heap entry has not surfaced yet.
    Tombstone,
    /// Recyclable (not referenced by any heap entry).
    Free,
}

/// A deterministic min-heap of timestamped events.
///
/// ```
/// use msim_core::event::EventQueue;
/// use msim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<(u32, Slot<E>)>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    now: SimTime,
    saturated_pushes: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            saturated_pushes: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            saturated_pushes: 0,
        }
    }

    /// The current simulated instant: the timestamp of the most recently
    /// popped event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event is *saturated* to fire
    /// "now" (at the current clock) to keep the clock monotone, and the
    /// [`EventQueue::saturated_pushes`] counter records the rewrite so
    /// callers/tests can detect the condition instead of it passing
    /// silently.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        self.push_saturating(at, payload).0
    }

    /// Like [`EventQueue::push`], but reports saturation instead of only
    /// counting it: returns `(id, true)` when `at` lay in the past and was
    /// rewritten to "now". Does not panic in debug builds — this is the
    /// checked entry point for callers that handle the condition.
    pub fn push_saturating(&mut self, at: SimTime, payload: E) -> (EventId, bool) {
        let saturated = at < self.now;
        if saturated {
            self.saturated_pushes += 1;
        }
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;

        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].1 = Slot::Occupied(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slab exhausted");
                self.slots.push((0, Slot::Occupied(payload)));
                idx
            }
        };
        let gen = self.slots[slot as usize].0;
        self.live += 1;

        self.heap.push(HeapEntry { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        (EventId { slot, gen }, saturated)
    }

    /// Number of release-mode past-scheduled pushes rewritten to "now" over
    /// the queue's lifetime (always 0 when callers are well-behaved).
    pub fn saturated_pushes(&self) -> u64 {
        self.saturated_pushes
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when its time comes).
    /// O(1): no heap restructuring, no hashing.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some((gen, slot)) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if *gen != id.gen || !matches!(slot, Slot::Occupied(_)) {
            return false;
        }
        *slot = Slot::Tombstone;
        self.live -= 1;
        true
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.pop_root()?;
            match self.release_slot(entry.slot) {
                Some(payload) => {
                    self.live -= 1;
                    self.now = entry.at;
                    return Some((entry.at, payload));
                }
                None => continue, // tombstone: slot recycled, skip
            }
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let entry = *self.heap.first()?;
            if matches!(self.slots[entry.slot as usize].1, Slot::Occupied(_)) {
                return Some(entry.at);
            }
            // Tombstone on top: discard eagerly so peek stays O(1) amortised.
            let entry = self.pop_root().expect("non-empty heap");
            self.release_slot(entry.slot);
        }
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes the root heap entry, restoring the heap property.
    fn pop_root(&mut self) -> Option<HeapEntry> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let root = std::mem::replace(&mut self.heap[0], last);
        self.sift_down(0);
        Some(root)
    }

    /// Frees `slot`, bumping its generation; returns the payload if it was
    /// still occupied (`None` for tombstones).
    fn release_slot(&mut self, slot: u32) -> Option<E> {
        let cell = &mut self.slots[slot as usize];
        cell.0 = cell.0.wrapping_add(1);
        let payload = match std::mem::replace(&mut cell.1, Slot::Free) {
            Slot::Occupied(p) => Some(p),
            Slot::Tombstone => None,
            Slot::Free => unreachable!("slot freed twice"),
        };
        self.free.push(slot);
        payload
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= entry.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let entry = self.heap[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut min_child = first_child;
            let mut min_key = self.heap[first_child].key();
            let last_child = (first_child + ARITY - 1).min(len - 1);
            for c in first_child + 1..=last_child {
                let k = self.heap[c].key();
                if k < min_key {
                    min_key = k;
                    min_child = c;
                }
            }
            if entry.key() <= min_key {
                break;
            }
            self.heap[i] = self.heap[min_child];
            i = min_child;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod legacy {
    //! The seed implementation (`BinaryHeap<Entry> + HashSet<EventId>` lazy
    //! cancellation), preserved verbatim in behaviour as the reference for
    //! the differential test.

    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct LegacyId(u64);

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        id: LegacyId,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct LegacyQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        next_id: u64,
        cancelled: std::collections::HashSet<LegacyId>,
        now: SimTime,
    }

    impl<E> LegacyQueue<E> {
        pub fn new() -> Self {
            LegacyQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                next_id: 0,
                cancelled: std::collections::HashSet::new(),
                now: SimTime::ZERO,
            }
        }

        pub fn push(&mut self, at: SimTime, payload: E) -> LegacyId {
            let at = at.max(self.now);
            let id = LegacyId(self.next_id);
            self.next_id += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry {
                at,
                seq,
                id,
                payload,
            });
            id
        }

        pub fn cancel(&mut self, id: LegacyId) -> bool {
            if id.0 >= self.next_id {
                return false;
            }
            // One deliberate deviation from the seed: cancelling an id that
            // already fired returned `true` there (and leaked the id into
            // `cancelled` forever). The slab queue returns `false` for stale
            // handles; align so the differential test can assert outcomes.
            if self.cancelled.contains(&id) || !self.pending(id) {
                return false;
            }
            self.cancelled.insert(id)
        }

        fn pending(&self, id: LegacyId) -> bool {
            self.heap.iter().any(|e| e.id == id)
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if self.cancelled.remove(&entry.id) {
                    continue;
                }
                self.now = entry.at;
                return Some((entry.at, entry.payload));
            }
            None
        }

        pub fn peek_time(&mut self) -> Option<SimTime> {
            while let Some(entry) = self.heap.peek() {
                if self.cancelled.contains(&entry.id) {
                    let entry = self.heap.pop().expect("peeked entry vanished");
                    self.cancelled.remove(&entry.id);
                    continue;
                }
                return Some(entry.at);
            }
            None
        }

        pub fn len(&self) -> usize {
            self.heap.len() - self.cancelled.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1u32);
        q.push(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        let _b = q.push(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is rejected");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_and_unknown_ids_are_not_cancellable() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "popped event's id is stale");
        // The slot gets recycled by the next push; the old id must still be
        // rejected thanks to the generation stamp.
        let b = q.push(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a), "stale id cannot cancel the recycled slot");
        assert!(q.cancel(b));
        let c = EventId { slot: 999, gen: 0 };
        assert!(!q.cancel(c), "out-of-range id is not cancellable");
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push(t + SimDuration::from_secs(1), 2u32);
        q.push(t + SimDuration::from_millis(500), 3u32);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    #[test]
    fn past_push_saturates_and_is_reported() {
        // Covers the release-mode semantics of `push` via the checked entry
        // point (which never panics, so this test runs in both build modes):
        // a past-scheduled event fires "now" and the rewrite is observable.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 0u32);
        q.pop();
        assert_eq!(q.saturated_pushes(), 0);
        let (_, saturated) = q.push_saturating(SimTime::from_secs(1), 1u32);
        assert!(saturated, "past schedule is flagged");
        assert_eq!(q.saturated_pushes(), 1);
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(at, SimTime::from_secs(5), "event rewritten to now");
        // An on-time push is not flagged.
        let (_, saturated) = q.push_saturating(SimTime::from_secs(6), 2u32);
        assert!(!saturated);
        assert_eq!(q.saturated_pushes(), 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_push_saturates_silently_but_counts() {
        // In release builds the plain `push` rewrites past events to "now"
        // (monotone clock) and the counter is the only trace.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 0u32);
        q.pop();
        q.push(SimTime::from_secs(1), 1u32);
        assert_eq!(q.saturated_pushes(), 1);
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(at, SimTime::from_secs(5));
    }

    #[test]
    fn slots_are_recycled_bounded() {
        // Push/cancel churn must not grow memory: tombstones are reclaimed
        // as they surface, slots and heap entries are reused.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            let t = SimTime::from_micros(round + 1_000_000);
            let a = q.push(t, round);
            let b = q.push(t, round + 1);
            assert!(q.cancel(a));
            assert_eq!(q.pop().unwrap().1, round + 1);
            let _ = b;
        }
        assert!(q.slots.len() <= 4, "slab stays tiny: {}", q.slots.len());
        assert!(q.heap.capacity() <= 16, "heap stays tiny");
    }

    #[test]
    fn differential_vs_legacy_binary_heap() {
        // Randomized schedules of push/cancel/pop/peek driven into both the
        // new 4-ary slab heap and the seed BinaryHeap+HashSet implementation
        // must observe identical (time, payload) sequences, lengths, peeks,
        // and cancel outcomes.
        for seed in 1..=20u64 {
            let mut rng = crate::rng::Prng::new(seed);
            let mut new_q: EventQueue<u64> = EventQueue::new();
            let mut old_q: legacy::LegacyQueue<u64> = legacy::LegacyQueue::new();
            // Parallel handle lists: (new_id, legacy_id).
            let mut handles = Vec::new();
            let mut payload = 0u64;

            for _step in 0..2000 {
                match rng.below(10) {
                    // 0-4: push (pushes outnumber pops so queues grow).
                    0..=4 => {
                        let at = new_q.now() + SimDuration::from_micros(rng.below(50));
                        payload += 1;
                        let a = new_q.push(at, payload);
                        let b = old_q.push(at, payload);
                        handles.push((a, b));
                    }
                    // 5-6: cancel a random (possibly stale) handle.
                    5 | 6 => {
                        if !handles.is_empty() {
                            let i = rng.below(handles.len() as u64) as usize;
                            let (a, b) = handles[i];
                            assert_eq!(new_q.cancel(a), old_q.cancel(b), "cancel outcome");
                        }
                    }
                    // 7-8: pop.
                    7 | 8 => {
                        assert_eq!(new_q.pop(), old_q.pop(), "pop");
                    }
                    // 9: peek.
                    _ => {
                        assert_eq!(new_q.peek_time(), old_q.peek_time(), "peek");
                    }
                }
                assert_eq!(new_q.len(), old_q.len(), "len");
                assert_eq!(new_q.is_empty(), old_q.len() == 0, "is_empty");
            }
            // Drain both; full remaining order must match.
            loop {
                let (a, b) = (new_q.pop(), old_q.pop());
                assert_eq!(a, b, "drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn large_heap_pops_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::Prng::new(42);
        for i in 0..10_000u64 {
            q.push(SimTime::from_micros(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}
