//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with a strict
//! total order: events scheduled for the same instant pop in the order they
//! were pushed (FIFO tie-break via a monotone sequence number). This makes
//! every simulation replayable bit-for-bit from a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// ```
/// use msim_core::event::EventQueue;
/// use msim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant: the timestamp of the most recently
    /// popped event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; in debug builds
    /// it panics, in release builds the event fires "now" (at the current
    /// clock) to keep the clock monotone.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, id, payload });
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when its time comes).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest pending event, advancing the clock to
    /// its timestamp. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1u32);
        q.push(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        let _b = q.push(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(EventId(999)), "unknown id is not cancellable");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push(t + SimDuration::from_secs(1), 2u32);
        q.push(t + SimDuration::from_millis(500), 3u32);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }
}
