//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with a strict
//! total order: events scheduled for the same instant pop in the order they
//! were pushed (FIFO tie-break via a monotone sequence number). This makes
//! every simulation replayable bit-for-bit from a seed.
//!
//! ## Implementation
//!
//! A **two-level scheduler** over a **generation-stamped slab**:
//!
//! * a **calendar ring** (timing-wheel-style array of time buckets) holds
//!   the *near-horizon* events that dominate the simulator — path
//!   readiness, chunk completions, ticks. Push is O(1) (compute the bucket,
//!   append); pop scans forward from the clock's bucket, which is O(1)
//!   amortised when the bucket width matches the event spacing;
//! * a **4-ary min-heap** (the previous implementation's layout, preserved
//!   verbatim as [`fourary::FourAryQueue`]) absorbs the *far-future*
//!   overflow — failure windows, recovery timers, session deadlines. Heap
//!   roots migrate into the ring as the clock approaches them, so the ring
//!   always holds the earliest events and a non-empty ring never needs to
//!   consult the heap on pop;
//! * the **bucket width adapts** to the observed workload: it is re-derived
//!   from the average inter-pop spacing every few hundred pops (so sparse
//!   timer patterns get wide buckets and dense ones narrow buckets), and a
//!   push that finds the ring overfull narrows it immediately. Width only
//!   affects *speed* — the pop order is the strict `(time, seq)` total
//!   order for every width, which is what lets the width adapt freely
//!   without perturbing replays (asserted by the differential tests);
//! * cancellation is **O(1)**: it flips the slab slot's state to a
//!   tombstone that `pop` discards (and reclaims) when the entry surfaces.
//!   There is no side `HashSet` — the pop path does zero hash lookups — and
//!   slots are recycled through a free list, so memory stays bounded by the
//!   peak number of pending events;
//! * slot reuse bumps a generation counter, so a stale [`EventId`] can
//!   never cancel an unrelated later event;
//! * [`EventQueue::reset`] returns the queue to its pristine state while
//!   keeping every allocation (ring buckets, heap, slab) *and* the adapted
//!   bucket width, so drivers that run many sessions back-to-back (batch
//!   hosts, sweep workers) pay the warm-up once.
//!
//! The previous single-level 4-ary heap is kept as
//! [`fourary::FourAryQueue`] — the reference for the randomized
//! differential tests (same discipline the heap rewrite itself was gated
//! on) and the baseline the `event_queue` micro benches compare against.
//! The original seed implementation (`BinaryHeap + HashSet` lazy
//! cancellation) survives test-only as `legacy::LegacyQueue`, so the chain
//! hybrid ↔ heap ↔ seed is differential-tested end to end.

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
///
/// Internally a `(slot, generation)` pair; the generation stamp makes
/// handles single-use — once the event fires or is cancelled, the handle
/// goes stale and [`EventQueue::cancel`] returns `false` for it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Operation counts maintained by [`EventQueue`] since its last
/// [`EventQueue::reset`] (see [`EventQueue::op_counts`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueOps {
    /// Events scheduled (both [`EventQueue::push`] and
    /// [`EventQueue::push_saturating`]).
    pub pushes: u64,
    /// Events delivered by [`EventQueue::pop`] (tombstone skips excluded).
    pub pops: u64,
    /// Successful [`EventQueue::cancel`] calls.
    pub cancels: u64,
}

/// Ring/heap entry: ordering key inline, payload in the slab.
#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

enum Slot<E> {
    /// Pending event.
    Occupied(E),
    /// Cancelled; its ring/heap entry has not surfaced yet.
    Tombstone,
    /// Recyclable (not referenced by any entry).
    Free,
}

const ARITY: usize = 4;

/// Initial (and minimum) calendar bucket count; the ring covers
/// `buckets.len() << shift` microseconds ahead of the clock. The count
/// doubles when occupancy outgrows it (classic calendar-queue resizing),
/// up to [`MAX_BUCKETS`], so big pending sets stay ring-resident.
const MIN_BUCKETS: usize = 128;

/// Bucket-count ceiling (2^16 `Vec` headers ≈ 1.5 MB; beyond this the far
/// heap absorbs the excess).
const MAX_BUCKETS: usize = 65_536;

/// Initial bucket width exponent: 2^13 µs ≈ 8 ms buckets, ≈ 1 s horizon.
const DEFAULT_SHIFT: u32 = 13;

/// Bucket width bounds: 2^3 µs = 8 µs … 2^24 µs ≈ 16.8 s.
const MIN_SHIFT: u32 = 3;
const MAX_SHIFT: u32 = 24;

/// Pops between width re-derivations from the observed inter-pop spacing.
const ADAPT_EVERY: u64 = 256;

/// A push that lands in a bucket already holding this many entries
/// narrows the bucket width immediately (a burst denser than the adapted
/// width would otherwise degrade pops into linear bucket scans until the
/// next pop-side adaptation).
const BUCKET_OVERFULL: usize = 64;

/// A deterministic two-level priority queue of timestamped events.
///
/// ```
/// use msim_core::event::EventQueue;
/// use msim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Near-horizon calendar ring (`buckets.len()` is a power of two that
    /// adapts to occupancy). Bucket `b` holds entries whose "day"
    /// (`at >> shift`) satisfies `day % buckets.len() == b` and lies within
    /// `[cursor_day, cursor_day + buckets.len())`; within one such window
    /// the mapping day → bucket is bijective, so a bucket never mixes days.
    buckets: Vec<Vec<Entry>>,
    /// Entries currently in the ring (live + tombstoned).
    near_len: usize,
    /// Bucket width is `1 << shift` microseconds.
    shift: u32,
    /// The clock's day: `now >> shift`. Only advances.
    cursor_day: u64,
    /// Far-future overflow: 4-ary min-heap on `(at, seq)`. Invariant: every
    /// entry's day is `>= cursor_day + buckets.len()` (maintained by
    /// migration on cursor advance), so the ring always wins while
    /// non-empty.
    far: Vec<Entry>,
    slots: Vec<(u32, Slot<E>)>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    now: SimTime,
    saturated_pushes: u64,
    /// Lifetime operation counts (pushes / pops / cancels) since the last
    /// [`EventQueue::reset`]. Plain integers on purpose: they are always
    /// maintained (the cost is one add per op) so batch drivers can
    /// publish per-session deltas into the telemetry registry without the
    /// queue depending on it.
    ops: QueueOps,
    /// Adaptation state: inter-pop spacing accumulator.
    pops_since_adapt: u64,
    gap_sum_us: u64,
    last_pop_us: u64,
    /// Scratch for re-bucketing (kept to reuse its allocation).
    scratch: Vec<Entry>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `cap` pending events before
    /// reallocating the slab.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            near_len: 0,
            shift: DEFAULT_SHIFT,
            cursor_day: 0,
            far: Vec::new(),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            saturated_pushes: 0,
            ops: QueueOps::default(),
            pops_since_adapt: 0,
            gap_sum_us: 0,
            last_pop_us: 0,
            scratch: Vec::new(),
        }
    }

    /// Empties the queue and rewinds the clock to zero, keeping every
    /// allocation (ring buckets, heap, slab, free list) and the adapted
    /// bucket width. Batch drivers call this between sessions so bucket
    /// storage is reused; the width carries over because it influences only
    /// speed, never pop order.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.near_len = 0;
        self.cursor_day = 0;
        self.far.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.saturated_pushes = 0;
        self.ops = QueueOps::default();
        self.pops_since_adapt = 0;
        self.gap_sum_us = 0;
        self.last_pop_us = 0;
    }

    /// Pre-allocates slab room for `cap` pending events (capacity hint for
    /// drivers that know their session shape).
    pub fn reserve(&mut self, cap: usize) {
        self.slots.reserve(cap.saturating_sub(self.slots.len()));
    }

    /// The current simulated instant: the timestamp of the most recently
    /// popped event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event is *saturated* to fire
    /// "now" (at the current clock) to keep the clock monotone, and the
    /// [`EventQueue::saturated_pushes`] counter records the rewrite so
    /// callers/tests can detect the condition instead of it passing
    /// silently.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        self.push_saturating(at, payload).0
    }

    /// Like [`EventQueue::push`], but reports saturation instead of only
    /// counting it: returns `(id, true)` when `at` lay in the past and was
    /// rewritten to "now". Does not panic in debug builds — this is the
    /// checked entry point for callers that handle the condition.
    pub fn push_saturating(&mut self, at: SimTime, payload: E) -> (EventId, bool) {
        self.ops.pushes += 1;
        let saturated = at < self.now;
        if saturated {
            self.saturated_pushes += 1;
        }
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;

        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].1 = Slot::Occupied(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slab exhausted");
                self.slots.push((0, Slot::Occupied(payload)));
                idx
            }
        };
        let gen = self.slots[slot as usize].0;
        self.live += 1;

        let target_bucket = self.insert_entry(Entry { at, seq, slot });
        // Two push-side pressure valves (the pop-side adaptation handles
        // the steady state):
        // * a single overfull bucket means the width is far too wide for a
        //   burst — narrow immediately so pops don't degrade into linear
        //   bucket scans (same-instant events can't be separated by any
        //   width; MIN_SHIFT bounds the cascade);
        // * a ring outgrown overall doubles its bucket count so the
        //   pending set stays ring-resident (classic calendar-queue
        //   resizing); at the count ceiling, narrow the width instead
        //   (excess spills to the heap and migrates back as the clock
        //   advances).
        if let Some(b) = target_bucket {
            if self.buckets[b].len() > BUCKET_OVERFULL && self.shift > MIN_SHIFT {
                // Derive the width from the burst's measured span (aim for
                // ~8 entries per bucket) so one redistribution absorbs the
                // density regime instead of a cascade of fixed steps.
                let bucket = &self.buckets[b];
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for e in bucket {
                    let us = e.at.as_micros();
                    lo = lo.min(us);
                    hi = hi.max(us);
                }
                let per_bucket = (hi - lo) * 8 / bucket.len() as u64;
                let target = if per_bucket == 0 {
                    MIN_SHIFT
                } else {
                    (64 - per_bucket.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT)
                };
                if target < self.shift {
                    self.rebucket(target, self.buckets.len());
                }
            }
        }
        if self.near_len > 2 * self.buckets.len() {
            if self.buckets.len() < MAX_BUCKETS {
                let nb = self.buckets.len() * 2;
                self.rebucket(self.shift, nb);
            } else if self.shift > MIN_SHIFT {
                self.rebucket(self.shift - 1, self.buckets.len());
            }
        }
        (EventId { slot, gen }, saturated)
    }

    /// Number of release-mode past-scheduled pushes rewritten to "now" over
    /// the queue's lifetime (always 0 when callers are well-behaved).
    pub fn saturated_pushes(&self) -> u64 {
        self.saturated_pushes
    }

    /// Operation counts (pushes / pops / cancels) since the last
    /// [`EventQueue::reset`]. Batch drivers publish these as per-session
    /// deltas into the [`crate::telemetry`] registry.
    pub fn op_counts(&self) -> QueueOps {
        self.ops
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when its time comes).
    /// O(1): no ring or heap restructuring, no hashing.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some((gen, slot)) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if *gen != id.gen || !matches!(slot, Slot::Occupied(_)) {
            return false;
        }
        *slot = Slot::Tombstone;
        self.live -= 1;
        self.ops.cancels += 1;
        true
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is drained (all
    /// remaining tombstones are reclaimed before returning `None`, so
    /// push/cancel churn cannot grow memory).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.near_len > 0 {
                if let Some(entry) = self.take_near_min() {
                    let payload = self
                        .release_slot(entry.slot)
                        .expect("near min is checked live");
                    self.live -= 1;
                    self.ops.pops += 1;
                    self.advance_now(entry.at);
                    return Some((entry.at, payload));
                }
                // The ring held only tombstones; they are reclaimed now.
                continue;
            }
            let entry = self.far_pop_root()?;
            match self.release_slot(entry.slot) {
                Some(payload) => {
                    self.live -= 1;
                    self.ops.pops += 1;
                    self.advance_now(entry.at);
                    return Some((entry.at, payload));
                }
                None => continue, // tombstone: slot recycled, skip
            }
        }
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Pure (`&self`): peeking skips tombstones without reclaiming them —
    /// reclamation happens on `pop`.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        // Ring first: within the current window, bucket order is day order,
        // so the first bucket containing a live entry holds the ring's min.
        if self.near_len > 0 {
            let nb = self.buckets.len() as u64;
            for k in 0..nb {
                let day = self.cursor_day.saturating_add(k);
                let bucket = &self.buckets[(day & (nb - 1)) as usize];
                let min = bucket
                    .iter()
                    .filter(|e| self.slot_is_live(e.slot))
                    .map(|e| e.key())
                    .min();
                if let Some((at, _)) = min {
                    return Some(at);
                }
            }
        }
        // Far heap: linear scan over live entries (the heap may have a
        // tombstoned root, which a pure peek cannot rotate away).
        self.far
            .iter()
            .filter(|e| self.slot_is_live(e.slot))
            .map(|e| e.key())
            .min()
            .map(|(at, _)| at)
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The current bucket width in microseconds (exposed for tests and the
    /// micro benches; adapts to the observed event spacing).
    pub fn bucket_width_us(&self) -> u64 {
        1 << self.shift
    }

    /// The current calendar bucket count (exposed for tests; doubles as
    /// occupancy outgrows the ring and shrinks back when it drains).
    pub fn ring_buckets(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn slot_is_live(&self, slot: u32) -> bool {
        matches!(self.slots[slot as usize].1, Slot::Occupied(_))
    }

    /// Frees `slot`, bumping its generation; returns the payload if it was
    /// still occupied (`None` for tombstones).
    fn release_slot(&mut self, slot: u32) -> Option<E> {
        let cell = &mut self.slots[slot as usize];
        cell.0 = cell.0.wrapping_add(1);
        let payload = match std::mem::replace(&mut cell.1, Slot::Free) {
            Slot::Occupied(p) => Some(p),
            Slot::Tombstone => None,
            Slot::Free => unreachable!("slot freed twice"),
        };
        self.free.push(slot);
        payload
    }

    /// Routes an entry to the ring (within the horizon) or the far heap.
    /// Returns the ring bucket it landed in, if any.
    #[inline]
    fn insert_entry(&mut self, entry: Entry) -> Option<usize> {
        let day = entry.at.as_micros() >> self.shift;
        debug_assert!(day >= self.cursor_day, "entry behind the clock");
        let nb = self.buckets.len() as u64;
        if day < self.cursor_day.saturating_add(nb) {
            let b = (day & (nb - 1)) as usize;
            self.buckets[b].push(entry);
            self.near_len += 1;
            Some(b)
        } else {
            self.far.push(entry);
            self.far_sift_up(self.far.len() - 1);
            None
        }
    }

    /// Removes and returns the ring's earliest live entry, reclaiming every
    /// tombstone encountered on the way. `None` when the ring held only
    /// tombstones (all reclaimed; `near_len` is 0 afterwards).
    fn take_near_min(&mut self) -> Option<Entry> {
        let nb = self.buckets.len() as u64;
        for k in 0..nb {
            if self.near_len == 0 {
                return None;
            }
            let day = self.cursor_day.saturating_add(k);
            let b = (day & (nb - 1)) as usize;
            // Reclaim tombstones first so the min scan sees only live
            // entries.
            let mut i = 0;
            while i < self.buckets[b].len() {
                let slot = self.buckets[b][i].slot;
                if self.slot_is_live(slot) {
                    i += 1;
                } else {
                    self.buckets[b].swap_remove(i);
                    self.near_len -= 1;
                    self.release_slot(slot);
                }
            }
            let bucket = &self.buckets[b];
            if bucket.is_empty() {
                continue;
            }
            let mut min_i = 0;
            for j in 1..bucket.len() {
                if bucket[j].key() < bucket[min_i].key() {
                    min_i = j;
                }
            }
            let entry = self.buckets[b].swap_remove(min_i);
            self.near_len -= 1;
            return Some(entry);
        }
        None
    }

    /// Advances the clock to `at` (a just-popped timestamp): moves the ring
    /// cursor, migrates far-heap roots that came within the horizon, and
    /// periodically re-derives the bucket width from the observed inter-pop
    /// spacing.
    fn advance_now(&mut self, at: SimTime) {
        let at_us = at.as_micros();
        self.gap_sum_us += at_us.saturating_sub(self.last_pop_us);
        self.last_pop_us = at_us;
        self.pops_since_adapt += 1;
        self.now = at;
        let day = at_us >> self.shift;
        if day != self.cursor_day {
            self.cursor_day = day;
            self.migrate_far();
        }
        if self.pops_since_adapt >= ADAPT_EVERY {
            let avg_gap = (self.gap_sum_us / self.pops_since_adapt).max(1);
            self.pops_since_adapt = 0;
            self.gap_sum_us = 0;
            // Bucket width ≈ 2× the average spacing: ~2 events per bucket,
            // few empty-bucket hops. Re-derived with hysteresis — a
            // one-step disagreement is left alone, so a spacing average
            // that hovers near a power-of-two boundary cannot flap the
            // width (each flap is an O(ring) redistribution). A ring left
            // oversized by a past burst shrinks back (bounded below by
            // MIN_BUCKETS).
            let target = (64 - avg_gap.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
            let mut nb = self.buckets.len();
            while nb > MIN_BUCKETS && self.near_len < nb / 4 {
                nb /= 2;
            }
            if target.abs_diff(self.shift) >= 2 || nb != self.buckets.len() {
                self.rebucket(target, nb);
            }
        }
    }

    /// Restores the far-heap invariant after a cursor advance: roots whose
    /// day entered the horizon move into the ring (tombstoned ones are
    /// reclaimed on the way).
    fn migrate_far(&mut self) {
        let nb = self.buckets.len() as u64;
        let horizon = self.cursor_day.saturating_add(nb);
        while let Some(root) = self.far.first() {
            if root.at.as_micros() >> self.shift >= horizon {
                break;
            }
            let entry = self.far_pop_root().expect("checked non-empty");
            if self.slot_is_live(entry.slot) {
                let b = ((entry.at.as_micros() >> self.shift) & (nb - 1)) as usize;
                self.buckets[b].push(entry);
                self.near_len += 1;
            } else {
                self.release_slot(entry.slot);
            }
        }
    }

    /// Changes the bucket width to `1 << new_shift` µs and/or the bucket
    /// count, redistributing every ring entry (some may spill to the far
    /// heap under a narrower horizon).
    fn rebucket(&mut self, new_shift: u32, new_buckets: usize) {
        debug_assert!(new_buckets.is_power_of_two());
        let mut entries = std::mem::take(&mut self.scratch);
        for b in &mut self.buckets {
            entries.append(b);
        }
        if new_buckets > self.buckets.len() {
            self.buckets.resize_with(new_buckets, Vec::new);
        } else {
            self.buckets.truncate(new_buckets);
        }
        self.near_len = 0;
        self.shift = new_shift;
        self.cursor_day = self.now.as_micros() >> new_shift;
        for entry in entries.drain(..) {
            self.insert_entry(entry);
        }
        self.scratch = entries;
        // A wider width or a bigger ring also widens the horizon: pull in
        // far roots that now fit.
        self.migrate_far();
    }

    /// Removes the far heap's root entry, restoring the heap property.
    fn far_pop_root(&mut self) -> Option<Entry> {
        let last = self.far.pop()?;
        if self.far.is_empty() {
            return Some(last);
        }
        let root = std::mem::replace(&mut self.far[0], last);
        self.far_sift_down(0);
        Some(root)
    }

    #[inline]
    fn far_sift_up(&mut self, mut i: usize) {
        let entry = self.far[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.far[parent].key() <= entry.key() {
                break;
            }
            self.far[i] = self.far[parent];
            i = parent;
        }
        self.far[i] = entry;
    }

    #[inline]
    fn far_sift_down(&mut self, mut i: usize) {
        let len = self.far.len();
        let entry = self.far[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut min_child = first_child;
            let mut min_key = self.far[first_child].key();
            let last_child = (first_child + ARITY - 1).min(len - 1);
            for c in first_child + 1..=last_child {
                let k = self.far[c].key();
                if k < min_key {
                    min_key = k;
                    min_child = c;
                }
            }
            if entry.key() <= min_key {
                break;
            }
            self.far[i] = self.far[min_child];
            i = min_child;
        }
        self.far[i] = entry;
    }
}

pub mod fourary {
    //! The previous `EventQueue` implementation — an index-addressable
    //! 4-ary min-heap over a generation-stamped slab — preserved verbatim
    //! in behaviour. It is the *reference* the hybrid queue is
    //! differential-tested against (randomized push/cancel/pop/peek
    //! schedules must observe identical behaviour) and the baseline the
    //! `event_queue` micro benches measure speedups over.

    use crate::time::SimTime;

    /// Cancellation handle (slot, generation), same contract as
    /// [`EventId`](super::EventId).
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct FourAryId {
        slot: u32,
        gen: u32,
    }

    #[derive(Clone, Copy)]
    struct HeapEntry {
        at: SimTime,
        seq: u64,
        slot: u32,
    }

    impl HeapEntry {
        #[inline]
        fn key(&self) -> (SimTime, u64) {
            (self.at, self.seq)
        }
    }

    enum Slot<E> {
        Occupied(E),
        Tombstone,
        Free,
    }

    const ARITY: usize = 4;

    /// The single-level 4-ary slab heap (reference implementation).
    pub struct FourAryQueue<E> {
        heap: Vec<HeapEntry>,
        slots: Vec<(u32, Slot<E>)>,
        free: Vec<u32>,
        live: usize,
        next_seq: u64,
        now: SimTime,
        saturated_pushes: u64,
    }

    impl<E> Default for FourAryQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> FourAryQueue<E> {
        /// Creates an empty queue with the clock at zero.
        pub fn new() -> Self {
            FourAryQueue {
                heap: Vec::new(),
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
                next_seq: 0,
                now: SimTime::ZERO,
                saturated_pushes: 0,
            }
        }

        /// The clock (timestamp of the last pop).
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Schedules `payload` at `at` (saturating past times to "now").
        pub fn push(&mut self, at: SimTime, payload: E) -> FourAryId {
            self.push_saturating(at, payload).0
        }

        /// Push reporting whether `at` was saturated to "now".
        pub fn push_saturating(&mut self, at: SimTime, payload: E) -> (FourAryId, bool) {
            let saturated = at < self.now;
            if saturated {
                self.saturated_pushes += 1;
            }
            let at = at.max(self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = match self.free.pop() {
                Some(idx) => {
                    self.slots[idx as usize].1 = Slot::Occupied(payload);
                    idx
                }
                None => {
                    let idx = u32::try_from(self.slots.len()).expect("event slab exhausted");
                    self.slots.push((0, Slot::Occupied(payload)));
                    idx
                }
            };
            let gen = self.slots[slot as usize].0;
            self.live += 1;
            self.heap.push(HeapEntry { at, seq, slot });
            self.sift_up(self.heap.len() - 1);
            (FourAryId { slot, gen }, saturated)
        }

        /// Past-scheduled pushes rewritten to "now" so far.
        pub fn saturated_pushes(&self) -> u64 {
            self.saturated_pushes
        }

        /// O(1) cancellation via slab tombstoning.
        pub fn cancel(&mut self, id: FourAryId) -> bool {
            let Some((gen, slot)) = self.slots.get_mut(id.slot as usize) else {
                return false;
            };
            if *gen != id.gen || !matches!(slot, Slot::Occupied(_)) {
                return false;
            }
            *slot = Slot::Tombstone;
            self.live -= 1;
            true
        }

        /// Pops the earliest live event, advancing the clock.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            loop {
                let entry = self.pop_root()?;
                match self.release_slot(entry.slot) {
                    Some(payload) => {
                        self.live -= 1;
                        self.now = entry.at;
                        return Some((entry.at, payload));
                    }
                    None => continue,
                }
            }
        }

        /// Timestamp of the next live event (pure: tombstones are skipped,
        /// not reclaimed).
        pub fn peek_time(&self) -> Option<SimTime> {
            if self.live == 0 {
                return None;
            }
            self.heap
                .iter()
                .filter(|e| matches!(self.slots[e.slot as usize].1, Slot::Occupied(_)))
                .map(|e| e.key())
                .min()
                .map(|(at, _)| at)
        }

        /// Live events pending.
        pub fn len(&self) -> usize {
            self.live
        }

        /// True when nothing live remains.
        pub fn is_empty(&self) -> bool {
            self.live == 0
        }

        fn pop_root(&mut self) -> Option<HeapEntry> {
            let last = self.heap.pop()?;
            if self.heap.is_empty() {
                return Some(last);
            }
            let root = std::mem::replace(&mut self.heap[0], last);
            self.sift_down(0);
            Some(root)
        }

        fn release_slot(&mut self, slot: u32) -> Option<E> {
            let cell = &mut self.slots[slot as usize];
            cell.0 = cell.0.wrapping_add(1);
            let payload = match std::mem::replace(&mut cell.1, Slot::Free) {
                Slot::Occupied(p) => Some(p),
                Slot::Tombstone => None,
                Slot::Free => unreachable!("slot freed twice"),
            };
            self.free.push(slot);
            payload
        }

        #[inline]
        fn sift_up(&mut self, mut i: usize) {
            let entry = self.heap[i];
            while i > 0 {
                let parent = (i - 1) / ARITY;
                if self.heap[parent].key() <= entry.key() {
                    break;
                }
                self.heap[i] = self.heap[parent];
                i = parent;
            }
            self.heap[i] = entry;
        }

        #[inline]
        fn sift_down(&mut self, mut i: usize) {
            let len = self.heap.len();
            let entry = self.heap[i];
            loop {
                let first_child = i * ARITY + 1;
                if first_child >= len {
                    break;
                }
                let mut min_child = first_child;
                let mut min_key = self.heap[first_child].key();
                let last_child = (first_child + ARITY - 1).min(len - 1);
                for c in first_child + 1..=last_child {
                    let k = self.heap[c].key();
                    if k < min_key {
                        min_key = k;
                        min_child = c;
                    }
                }
                if entry.key() <= min_key {
                    break;
                }
                self.heap[i] = self.heap[min_child];
                i = min_child;
            }
            self.heap[i] = entry;
        }
    }
}

#[cfg(test)]
mod legacy {
    //! The seed implementation (`BinaryHeap<Entry> + HashSet<EventId>` lazy
    //! cancellation), preserved verbatim in behaviour as the oldest
    //! reference in the differential-test chain.

    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct LegacyId(u64);

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        id: LegacyId,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct LegacyQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        next_id: u64,
        cancelled: std::collections::HashSet<LegacyId>,
        now: SimTime,
    }

    impl<E> LegacyQueue<E> {
        pub fn new() -> Self {
            LegacyQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                next_id: 0,
                cancelled: std::collections::HashSet::new(),
                now: SimTime::ZERO,
            }
        }

        pub fn push(&mut self, at: SimTime, payload: E) -> LegacyId {
            let at = at.max(self.now);
            let id = LegacyId(self.next_id);
            self.next_id += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry {
                at,
                seq,
                id,
                payload,
            });
            id
        }

        pub fn cancel(&mut self, id: LegacyId) -> bool {
            if id.0 >= self.next_id {
                return false;
            }
            // One deliberate deviation from the seed: cancelling an id that
            // already fired returned `true` there (and leaked the id into
            // `cancelled` forever). The slab queues return `false` for stale
            // handles; align so the differential test can assert outcomes.
            if self.cancelled.contains(&id) || !self.pending(id) {
                return false;
            }
            self.cancelled.insert(id)
        }

        fn pending(&self, id: LegacyId) -> bool {
            self.heap.iter().any(|e| e.id == id)
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if self.cancelled.remove(&entry.id) {
                    continue;
                }
                self.now = entry.at;
                return Some((entry.at, entry.payload));
            }
            None
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap
                .iter()
                .filter(|e| !self.cancelled.contains(&e.id))
                .map(|e| (e.at, e.seq))
                .min()
                .map(|(at, _)| at)
        }

        pub fn len(&self) -> usize {
            self.heap.len() - self.cancelled.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fourary::FourAryQueue;
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1u32);
        q.push(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        let _b = q.push(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is rejected");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_and_unknown_ids_are_not_cancellable() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "popped event's id is stale");
        // The slot gets recycled by the next push; the old id must still be
        // rejected thanks to the generation stamp.
        let b = q.push(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a), "stale id cannot cancel the recycled slot");
        assert!(q.cancel(b));
        let c = EventId { slot: 999, gen: 0 };
        assert!(!q.cancel(c), "out-of-range id is not cancellable");
    }

    #[test]
    fn peek_is_pure_and_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        // peek takes &self: a shared reference suffices.
        let q_ref: &EventQueue<()> = &q;
        assert_eq!(q_ref.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)), "idempotent");
    }

    #[test]
    fn peek_sees_through_far_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the default ring horizon (~1 s): lives in the heap.
        let far = q.push(SimTime::from_secs(3600), 1u32);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3600)));
        // Cancelled far root: peek must skip it without mutating.
        q.push(SimTime::from_secs(7200), 2u32);
        assert!(q.cancel(far));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7200)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push(t + SimDuration::from_secs(1), 2u32);
        q.push(t + SimDuration::from_millis(500), 3u32);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    #[test]
    fn past_push_saturates_and_is_reported() {
        // Covers the release-mode semantics of `push` via the checked entry
        // point (which never panics, so this test runs in both build modes):
        // a past-scheduled event fires "now" and the rewrite is observable.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 0u32);
        q.pop();
        assert_eq!(q.saturated_pushes(), 0);
        let (_, saturated) = q.push_saturating(SimTime::from_secs(1), 1u32);
        assert!(saturated, "past schedule is flagged");
        assert_eq!(q.saturated_pushes(), 1);
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(at, SimTime::from_secs(5), "event rewritten to now");
        // An on-time push is not flagged.
        let (_, saturated) = q.push_saturating(SimTime::from_secs(6), 2u32);
        assert!(!saturated);
        assert_eq!(q.saturated_pushes(), 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_push_saturates_silently_but_counts() {
        // In release builds the plain `push` rewrites past events to "now"
        // (monotone clock) and the counter is the only trace.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 0u32);
        q.pop();
        q.push(SimTime::from_secs(1), 1u32);
        assert_eq!(q.saturated_pushes(), 1);
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(at, SimTime::from_secs(5));
    }

    #[test]
    fn slots_are_recycled_bounded() {
        // Push/cancel churn must not grow memory: tombstones are reclaimed
        // as pops sweep past them, slots and entries are reused.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            let t = SimTime::from_micros(round + 1_000_000);
            let a = q.push(t, round);
            let b = q.push(t, round + 1);
            assert!(q.cancel(a));
            assert_eq!(q.pop().unwrap().1, round + 1);
            let _ = b;
        }
        assert!(q.slots.len() <= 4, "slab stays tiny: {}", q.slots.len());
        assert!(q.near_len <= 4, "ring stays tiny: {}", q.near_len);
        assert!(q.far.len() <= 4, "far heap stays tiny: {}", q.far.len());
    }

    #[test]
    fn drain_after_mass_cancel_reclaims_everything() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..500u64)
            .map(|i| q.push(SimTime::from_micros(i * 50_000), i))
            .collect();
        for id in ids {
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None, "pop reclaims all tombstones");
        assert_eq!(q.near_len, 0);
        assert_eq!(q.far.len(), 0);
        assert_eq!(q.free.len(), q.slots.len(), "every slot is free again");
    }

    #[test]
    fn reset_keeps_storage_but_clears_state() {
        let mut q = EventQueue::new();
        for i in 0..200u64 {
            q.push(SimTime::from_micros(i * 10_000), i);
        }
        for _ in 0..100 {
            q.pop();
        }
        let slab_cap = q.slots.capacity();
        q.reset();
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.pop(), None);
        assert!(q.slots.capacity() >= slab_cap, "slab storage kept");
        // A fresh session on the reset queue behaves like a new queue.
        q.push(SimTime::from_secs(1), 7u64);
        q.push(SimTime::from_millis(500), 3u64);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 7);
    }

    #[test]
    fn far_events_migrate_into_the_ring() {
        // Events far beyond the horizon start in the heap and must pop in
        // exact order as the clock reaches them.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..50u64 {
            // Mix of near (µs–ms) and far (minutes) events.
            let at = if i % 3 == 0 {
                SimTime::from_secs(60 + i)
            } else {
                SimTime::from_millis(i * 7)
            };
            q.push(at, i);
            expect.push((at, i));
        }
        expect.sort_by_key(|&(at, i)| (at, i));
        let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
        // Same-time FIFO: pushes were in i order, so (at, i) sort matches.
        assert_eq!(got, expect);
    }

    #[test]
    fn width_adapts_to_observed_spacing() {
        // Dense sub-millisecond events: the push-side overfull check plus
        // the pop-side spacing rule must narrow the default ~8 ms buckets.
        let mut q = EventQueue::new();
        let w0 = q.bucket_width_us();
        let mut t = SimTime::ZERO;
        for i in 0..2000u64 {
            q.push(SimTime::from_micros(i * 20), i);
        }
        for _ in 0..1500 {
            let (at, _) = q.pop().unwrap();
            t = at;
        }
        assert!(
            q.bucket_width_us() < w0,
            "width narrowed: {} -> {}",
            w0,
            q.bucket_width_us()
        );
        // Sparse multi-second events afterwards: width grows back.
        for i in 0..600u64 {
            q.push(t + SimDuration::from_secs(1 + i), i);
        }
        while q.pop().is_some() {}
        assert!(
            q.bucket_width_us() > 1 << MIN_SHIFT,
            "width re-widened: {}",
            q.bucket_width_us()
        );
    }

    /// Drives the hybrid queue and the 4-ary reference through one
    /// randomized schedule, asserting identical observable behaviour at
    /// every step. `past_pushes` additionally exercises past-scheduled
    /// saturation via `push_saturating`.
    fn differential_vs_fourary(seed: u64, steps: usize, past_pushes: bool) {
        let mut rng = crate::rng::Prng::new(seed);
        let mut new_q: EventQueue<u64> = EventQueue::new();
        let mut ref_q: FourAryQueue<u64> = FourAryQueue::new();
        let mut handles = Vec::new();
        let mut payload = 0u64;

        for _step in 0..steps {
            match rng.below(12) {
                // 0-4: push with a spread of horizons so entries land in
                // both the ring and the far heap (and survive re-bucketing).
                0..=4 => {
                    let spread = match rng.below(4) {
                        0 => rng.below(50),          // same-bucket dense
                        1 => rng.below(10_000),      // near horizon
                        2 => rng.below(5_000_000),   // seconds out
                        _ => rng.below(600_000_000), // minutes out (far)
                    };
                    let at = new_q.now() + SimDuration::from_micros(spread);
                    payload += 1;
                    let a = new_q.push(at, payload);
                    let b = ref_q.push(at, payload);
                    handles.push((a, b));
                }
                // 5: past-scheduled push (saturates to "now").
                5 => {
                    if past_pushes {
                        let back = rng.below(1_000_000);
                        let at = SimTime::from_micros(new_q.now().as_micros().saturating_sub(back));
                        payload += 1;
                        let (a, sat_a) = new_q.push_saturating(at, payload);
                        let (b, sat_b) = ref_q.push_saturating(at, payload);
                        assert_eq!(sat_a, sat_b, "saturation flag");
                        handles.push((a, b));
                    }
                }
                // 6-7: cancel a random (possibly stale) handle.
                6 | 7 => {
                    if !handles.is_empty() {
                        let i = rng.below(handles.len() as u64) as usize;
                        let (a, b) = handles[i];
                        assert_eq!(new_q.cancel(a), ref_q.cancel(b), "cancel outcome");
                    }
                }
                // 8-9: pop.
                8 | 9 => {
                    assert_eq!(new_q.pop(), ref_q.pop(), "pop");
                }
                // 10-11: peek.
                _ => {
                    assert_eq!(new_q.peek_time(), ref_q.peek_time(), "peek");
                }
            }
            assert_eq!(new_q.len(), ref_q.len(), "len");
            assert_eq!(new_q.is_empty(), ref_q.is_empty(), "is_empty");
            assert_eq!(
                new_q.saturated_pushes(),
                ref_q.saturated_pushes(),
                "saturation count"
            );
        }
        // Drain both; full remaining order must match.
        loop {
            let (a, b) = (new_q.pop(), ref_q.pop());
            assert_eq!(a, b, "drain");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn differential_hybrid_vs_fourary_heap() {
        for seed in 1..=20u64 {
            differential_vs_fourary(seed, 2000, false);
        }
    }

    #[test]
    fn differential_hybrid_vs_fourary_with_past_saturation() {
        for seed in 100..=110u64 {
            differential_vs_fourary(seed, 2000, true);
        }
    }

    #[test]
    fn differential_vs_legacy_binary_heap() {
        // The original differential gate from the heap rewrite, now driving
        // the hybrid queue against the seed BinaryHeap+HashSet
        // implementation: identical (time, payload) sequences, lengths,
        // peeks, and cancel outcomes.
        for seed in 1..=20u64 {
            let mut rng = crate::rng::Prng::new(seed);
            let mut new_q: EventQueue<u64> = EventQueue::new();
            let mut old_q: legacy::LegacyQueue<u64> = legacy::LegacyQueue::new();
            // Parallel handle lists: (new_id, legacy_id).
            let mut handles = Vec::new();
            let mut payload = 0u64;

            for _step in 0..2000 {
                match rng.below(10) {
                    // 0-4: push (pushes outnumber pops so queues grow).
                    0..=4 => {
                        let at = new_q.now() + SimDuration::from_micros(rng.below(50));
                        payload += 1;
                        let a = new_q.push(at, payload);
                        let b = old_q.push(at, payload);
                        handles.push((a, b));
                    }
                    // 5-6: cancel a random (possibly stale) handle.
                    5 | 6 => {
                        if !handles.is_empty() {
                            let i = rng.below(handles.len() as u64) as usize;
                            let (a, b) = handles[i];
                            assert_eq!(new_q.cancel(a), old_q.cancel(b), "cancel outcome");
                        }
                    }
                    // 7-8: pop.
                    7 | 8 => {
                        assert_eq!(new_q.pop(), old_q.pop(), "pop");
                    }
                    // 9: peek.
                    _ => {
                        assert_eq!(new_q.peek_time(), old_q.peek_time(), "peek");
                    }
                }
                assert_eq!(new_q.len(), old_q.len(), "len");
                assert_eq!(new_q.is_empty(), old_q.len() == 0, "is_empty");
            }
            // Drain both; full remaining order must match.
            loop {
                let (a, b) = (new_q.pop(), old_q.pop());
                assert_eq!(a, b, "drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn ring_grows_with_occupancy_and_shrinks_back() {
        let mut q = EventQueue::new();
        assert_eq!(q.ring_buckets(), MIN_BUCKETS);
        // A big pending set must not degrade into the far heap: the ring
        // doubles until the set is ring-resident.
        for i in 0..4096u64 {
            q.push(SimTime::from_micros(i * 300), i);
        }
        assert!(
            q.ring_buckets() >= 2048,
            "ring grew: {} buckets",
            q.ring_buckets()
        );
        // Drain; the pop-side adaptation shrinks the drained ring back.
        while q.pop().is_some() {}
        for i in 0..600u64 {
            q.push(SimTime::from_secs(2 + i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.ring_buckets(), MIN_BUCKETS, "ring shrank back");
    }

    #[test]
    fn large_queue_pops_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::Prng::new(42);
        for i in 0..10_000u64 {
            q.push(SimTime::from_micros(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }
}
