//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the simulation draws from a [`Prng`], a
//! PCG-XSH-RR 64/32 generator. Generators are *splittable*: [`Prng::fork`]
//! derives an independent child stream, so each link / process / session gets
//! its own stream and adding a new consumer never perturbs existing ones.
//! Hand-rolling ~60 lines of PCG (instead of depending on a `rand` version)
//! pins the byte-exact figure outputs to this repository forever.
//!
//! Deviate transforms (Box–Muller, exponential inversion, Pareto
//! inversion) evaluate their transcendentals through [`crate::vmath`]
//! rather than libm, for two reasons: the polynomial kernels are
//! straight-line code the block fills can vectorise, and they are pure
//! IEEE-754 arithmetic — so the deviate streams are bit-identical across
//! platforms instead of depending on the host libm.

use crate::vmath;

/// Generation counter of the sanctioned deviate-stream definition.
///
/// Epoch 1 was the original scalar libm-backed streams; epoch 2 is the
/// vectorized sampling engine (draw tables + [`crate::vmath`] kernels).
/// Benchmark artifacts stamp this value so a trend report can flag
/// numbers recorded against a superseded stream definition — cross-epoch
/// session digests are *expected* to differ, and comparing them is a
/// category error, not a regression.
pub const STREAM_EPOCH: u32 = 2;

/// Splittable deterministic PRNG (PCG-XSH-RR 64/32).
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// Unit-scale Pareto deviate from a `(0, 1]` uniform: `u^(−1/α)` computed
/// as `exp(−ln(u)/α)`. The argument clamp keeps a pathological
/// `u = f64::MIN_POSITIVE` inside [`vmath::exp`]'s contract range; e^700
/// is astronomically past every burst cap, so the clamp is unobservable.
/// Shared by the block fills and the scalar draws so both produce the same
/// bits from the same uniform.
#[inline]
fn pareto_unit_from(u: f64, inv_alpha: f64) -> f64 {
    vmath::exp((-inv_alpha * vmath::ln(u)).min(700.0))
}

/// SplitMix64 finaliser, used to derive well-distributed seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let state = splitmix64(seed);
        let inc = splitmix64(seed.wrapping_add(0xDEAD_BEEF_CAFE_F00D)) | 1;
        let mut rng = Prng { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator. The parent advances by one
    /// draw, so repeated forks yield distinct streams.
    pub fn fork(&mut self) -> Prng {
        let seed = self.next_u64();
        Prng::new(seed)
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call, no caching,
    /// so the stream position is draw-count deterministic). Discards the
    /// second deviate of each pair — the hot paths use [`Prng::normal_pair`]
    /// and the block fills instead; this survives as the scalar reference
    /// for cold paths (process initial states) and the comparator tests.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let (_, cos_th) = vmath::sincos(std::f64::consts::TAU * u2);
        (-2.0 * vmath::ln(u1)).sqrt() * cos_th
    }

    /// Both deviates of one Box–Muller pair: `(r·cosθ, r·sinθ)`. Two uniform
    /// draws produce two independent normals, so block consumers pay one
    /// `ln`/`sqrt` per *pair* instead of per deviate.
    pub fn normal_pair(&mut self) -> (f64, f64) {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * vmath::ln(u1)).sqrt();
        let theta = std::f64::consts::TAU * u2;
        // One fused sincos (not separate sin + cos) in *both* this scalar
        // reference and the block fills: the per-element math stays
        // textually identical between the two modes, which is what makes
        // them bit-identical, and the pair costs one kernel evaluation.
        let (sin_th, cos_th) = vmath::sincos(theta);
        (r * cos_th, r * sin_th)
    }

    /// Fills `out` with standard normal deviates, two per Box–Muller pair.
    /// An odd-length tail consumes a full pair and keeps only the cosine
    /// deviate, so the stream position is always `2·ceil(len/2)` uniforms.
    ///
    /// The fill runs in separate passes over the block (uniform draws, then
    /// the transcendental map) so the compiler can vectorise the `ln`/
    /// `sqrt`/`cos`/`sin` loop; each element's arithmetic is exactly
    /// [`Prng::normal_pair`]'s, so the result is bit-identical to scalar
    /// generation.
    pub fn fill_normals(&mut self, out: &mut [f64]) {
        let (pairs, tail) = out.split_at_mut(out.len() & !1);
        // Pass 1: raw uniforms, interleaved (u1, u2) per pair.
        for slot in pairs.chunks_exact_mut(2) {
            slot[0] = self.f64().max(f64::MIN_POSITIVE);
            slot[1] = self.f64();
        }
        // Pass 2: Box–Muller transform, pairwise in place.
        for slot in pairs.chunks_exact_mut(2) {
            let r = (-2.0 * vmath::ln(slot[0])).sqrt();
            let theta = std::f64::consts::TAU * slot[1];
            let (sin_th, cos_th) = vmath::sincos(theta);
            slot[0] = r * cos_th;
            slot[1] = r * sin_th;
        }
        // Odd tail: one more pair, keeping only the cosine deviate.
        if let Some(v) = tail.first_mut() {
            let (z0, _) = self.normal_pair();
            *v = z0;
        }
    }

    /// Fills `out` with log-normal *multipliers* `exp(mu + sigma·N(0,1))`,
    /// batching the normal generation and the final `exp` pass. With
    /// `mu = −sigma²/2` the multipliers have unit mean — the link RTT
    /// jitter convention.
    pub fn fill_lognormal_mults(&mut self, out: &mut [f64], mu: f64, sigma: f64) {
        self.fill_normals(out);
        for v in out.iter_mut() {
            *v = vmath::exp(mu + sigma * *v);
        }
    }

    /// Fills `out` with unit-mean exponential deviates (`mean = 1`);
    /// callers scale by their mean at use, so one table serves every
    /// holding-time distribution of a process.
    pub fn fill_exponentials_unit(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        }
        for v in out.iter_mut() {
            *v = -vmath::ln(*v);
        }
    }

    /// Fills `out` with unit-scale Pareto deviates (`x_min = 1`) of the
    /// given shape; callers scale by `x_min` at use.
    pub fn fill_paretos_unit(&mut self, out: &mut [f64], alpha: f64) {
        debug_assert!(alpha > 0.0);
        let inv_alpha = 1.0 / alpha;
        for v in out.iter_mut() {
            *v = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        }
        for v in out.iter_mut() {
            *v = pareto_unit_from(*v, inv_alpha);
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        vmath::exp(mu + sigma * self.normal())
    }

    /// Exponential deviate with the given mean (`mean = 1/lambda`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * vmath::ln(u)
    }

    /// Pareto deviate with scale `x_min` and shape `alpha` (heavy tail for
    /// small `alpha`; used for bandwidth burst outliers).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        x_min * pareto_unit_from(u, 1.0 / alpha)
    }

    /// Refills one [`DrawTable`] block the slow way: element at a time via
    /// the scalar draw functions. This is the frozen reference the block
    /// fills are differentially compared against — see
    /// [`DeviateMode::ScalarRef`].
    fn refill_scalar_ref(&mut self, out: &mut [f64], kind: DrawKind) {
        match kind {
            DrawKind::Normal => {
                for slot in out.chunks_mut(2) {
                    let (z0, z1) = self.normal_pair();
                    slot[0] = z0;
                    if let Some(s) = slot.get_mut(1) {
                        *s = z1;
                    }
                }
            }
            DrawKind::LognormalMult { mu, sigma } => {
                for slot in out.chunks_mut(2) {
                    let (z0, z1) = self.normal_pair();
                    slot[0] = vmath::exp(mu + sigma * z0);
                    if let Some(s) = slot.get_mut(1) {
                        *s = vmath::exp(mu + sigma * z1);
                    }
                }
            }
            DrawKind::ExpUnit => {
                for v in out.iter_mut() {
                    let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
                    *v = -vmath::ln(u);
                }
            }
            DrawKind::ParetoUnit { alpha } => {
                let inv_alpha = 1.0 / alpha;
                for v in out.iter_mut() {
                    let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
                    *v = pareto_unit_from(u, inv_alpha);
                }
            }
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// How a [`DrawTable`] refills its block of deviates.
///
/// Both modes produce bit-identical streams — `Block` amortises the
/// transcendentals across a SIMD-friendly block, `ScalarRef` generates the
/// same values one scalar draw at a time. `ScalarRef` exists purely so the
/// frozen-fingerprint corpus can differentially prove the block math: a
/// whole session run in each mode must digest identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeviateMode {
    /// Block-filled tables (the production hot path).
    #[default]
    Block,
    /// Scalar-reference fills, element at a time (comparator path).
    ScalarRef,
}

/// Distribution family a [`DrawTable`] serves. Parameters that scale
/// linearly (exponential mean, Pareto `x_min`) are applied by the caller at
/// use so one table serves every scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DrawKind {
    /// Standard normal `N(0, 1)`.
    Normal,
    /// Log-normal multiplier `exp(mu + sigma·N(0,1))` — the `exp` is paid
    /// at fill time, so the per-draw cost is an indexed load.
    LognormalMult {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
    },
    /// Unit-mean exponential; scale by the mean at use.
    ExpUnit,
    /// Unit-scale Pareto of the given shape; scale by `x_min` at use.
    ParetoUnit {
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
    },
}

/// Deviates per [`DrawTable`] refill block once the ramp tops out. Large
/// enough to amortise the fill loop and keep the transcendental passes
/// vectorisable, small enough (512 B) to stay resident in L1 alongside the
/// session's other hot state.
pub const DRAW_BLOCK: usize = 64;

/// First refill block. Refills double from here up to [`DRAW_BLOCK`], so a
/// short-lived table (a prebuffer-only session samples each process only a
/// handful of times) pays for ~8 deviates, while a long-lived one converges
/// to full-block fills. Block sizes must stay even so Box–Muller pairs
/// never straddle a refill boundary — this keeps the deviate stream a pure
/// function of the draw index, independent of the ramp schedule.
const DRAW_BLOCK_MIN: usize = 8;

/// A lazily-filled, draw-index-keyed table of deviates.
///
/// The per-round hot path (`next`) is a bounds-checked indexed load plus a
/// cursor bump; every `DRAW_BLOCK` draws the table refills in one batched
/// pass over the owned [`Prng`] stream. The stream position is a pure
/// function of the draw index, so tables keep the repository's
/// draw-count-deterministic replay property: two consumers that take the
/// same number of draws see the same deviates regardless of when refills
/// happen.
#[derive(Clone, Debug)]
pub struct DrawTable {
    /// Inline deviate storage: no per-table heap allocation, so building a
    /// table per stochastic process per session never touches the
    /// allocator. Only `values[..filled]` holds generated deviates.
    values: [f64; DRAW_BLOCK],
    /// Length of the current block (the valid prefix of `values`).
    filled: u32,
    cursor: u32,
    kind: DrawKind,
    mode: DeviateMode,
    rng: Prng,
}

impl DrawTable {
    /// Creates an empty table; the first `draw()` pays the first fill.
    pub fn new(rng: Prng, kind: DrawKind, mode: DeviateMode) -> Self {
        DrawTable {
            values: [0.0; DRAW_BLOCK],
            filled: 0,
            cursor: 0,
            kind,
            mode,
            rng,
        }
    }

    /// Next deviate from the stream.
    #[inline]
    pub fn draw(&mut self) -> f64 {
        if self.cursor == self.filled {
            self.refill();
        }
        let v = self.values[self.cursor as usize];
        self.cursor += 1;
        v
    }

    #[cold]
    fn refill(&mut self) {
        // Geometric ramp: 8, 16, … up to DRAW_BLOCK. Every size is even,
        // so Box–Muller pairs align with block boundaries and the stream
        // is identical whatever the refill schedule.
        let next_len = if self.filled == 0 {
            DRAW_BLOCK_MIN
        } else {
            (self.filled as usize * 2).min(DRAW_BLOCK)
        };
        self.filled = next_len as u32;
        let block = &mut self.values[..next_len];
        match self.mode {
            DeviateMode::Block => match self.kind {
                DrawKind::Normal => self.rng.fill_normals(block),
                DrawKind::LognormalMult { mu, sigma } => {
                    self.rng.fill_lognormal_mults(block, mu, sigma)
                }
                DrawKind::ExpUnit => self.rng.fill_exponentials_unit(block),
                DrawKind::ParetoUnit { alpha } => self.rng.fill_paretos_unit(block, alpha),
            },
            DeviateMode::ScalarRef => self.rng.refill_scalar_ref(block, self.kind),
        }
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Prng::new(7);
        let mut parent2 = Prng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child and parent streams do not collide.
        let mut p = Prng::new(7);
        let mut c = p.fork();
        let collisions = (0..256).filter(|_| p.next_u64() == c.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = Prng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Prng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut rng = Prng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Prng::new(17);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::new(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements left in place is astronomically unlikely"
        );
    }

    #[test]
    fn fill_normals_matches_scalar_pairs_bitwise() {
        let mut block = Prng::new(31);
        let mut scalar = Prng::new(31);
        let mut out = vec![0.0; 257]; // odd length exercises the tail
        block.fill_normals(&mut out);
        for slot in out.chunks(2) {
            let (z0, z1) = scalar.normal_pair();
            assert_eq!(slot[0].to_bits(), z0.to_bits());
            if let Some(&s) = slot.get(1) {
                assert_eq!(s.to_bits(), z1.to_bits());
            }
        }
        // Both consumed the same number of uniforms.
        assert_eq!(block.next_u64(), scalar.next_u64());
    }

    #[test]
    fn normal_pair_first_matches_scalar_normal() {
        let mut a = Prng::new(37);
        let mut b = Prng::new(37);
        let (z0, _) = a.normal_pair();
        assert_eq!(z0.to_bits(), b.normal().to_bits());
    }

    #[test]
    fn draw_table_block_and_scalar_ref_are_bit_identical() {
        for kind in [
            DrawKind::Normal,
            DrawKind::LognormalMult {
                mu: -0.02,
                sigma: 0.2,
            },
            DrawKind::ExpUnit,
            DrawKind::ParetoUnit { alpha: 1.5 },
        ] {
            let mut block = DrawTable::new(Prng::new(41), kind, DeviateMode::Block);
            let mut scalar = DrawTable::new(Prng::new(41), kind, DeviateMode::ScalarRef);
            for i in 0..3 * DRAW_BLOCK + 7 {
                let a = block.draw();
                let b = scalar.draw();
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} draw {i}");
            }
        }
    }

    #[test]
    fn draw_table_normal_moments() {
        // First four moments: a bias in the vmath `ln`/`sincos` kernels
        // (the only place block fills differ from textbook Box–Muller)
        // would surface here as drift in skewness or excess kurtosis long
        // before it is visible in mean/variance.
        let mut t = DrawTable::new(Prng::new(43), DrawKind::Normal, DeviateMode::Block);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| t.draw()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt();
        let skew = samples
            .iter()
            .map(|x| ((x - mean) / std).powi(3))
            .sum::<f64>()
            / n as f64;
        let kurt = samples
            .iter()
            .map(|x| ((x - mean) / std).powi(4))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skewness {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn draw_table_lognormal_mult_has_unit_mean() {
        let sigma = 0.25f64;
        let mut t = DrawTable::new(
            Prng::new(47),
            DrawKind::LognormalMult {
                mu: -0.5 * sigma * sigma,
                sigma,
            },
            DeviateMode::Block,
        );
        let n = 100_000;
        let mean = (0..n).map(|_| t.draw()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn draw_table_exp_unit_scales_to_any_mean() {
        let mut t = DrawTable::new(Prng::new(53), DrawKind::ExpUnit, DeviateMode::Block);
        let n = 50_000;
        let mean = (0..n).map(|_| 3.0 * t.draw()).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn draw_table_pareto_unit_respects_scale() {
        let mut t = DrawTable::new(
            Prng::new(59),
            DrawKind::ParetoUnit { alpha: 1.5 },
            DeviateMode::Block,
        );
        for _ in 0..10_000 {
            assert!(2.0 * t.draw() >= 2.0);
        }
    }

    #[test]
    fn choose_uniformity_rough() {
        let mut rng = Prng::new(29);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*rng.choose(&items)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "counts {counts:?}");
        }
    }
}
