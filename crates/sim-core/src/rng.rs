//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the simulation draws from a [`Prng`], a
//! PCG-XSH-RR 64/32 generator. Generators are *splittable*: [`Prng::fork`]
//! derives an independent child stream, so each link / process / session gets
//! its own stream and adding a new consumer never perturbs existing ones.
//! Hand-rolling ~60 lines of PCG (instead of depending on a `rand` version)
//! pins the byte-exact figure outputs to this repository forever.

/// Splittable deterministic PRNG (PCG-XSH-RR 64/32).
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 finaliser, used to derive well-distributed seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let state = splitmix64(seed);
        let inc = splitmix64(seed.wrapping_add(0xDEAD_BEEF_CAFE_F00D)) | 1;
        let mut rng = Prng { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator. The parent advances by one
    /// draw, so repeated forks yield distinct streams.
    pub fn fork(&mut self) -> Prng {
        let seed = self.next_u64();
        Prng::new(seed)
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call, no caching,
    /// so the stream position is draw-count deterministic).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential deviate with the given mean (`mean = 1/lambda`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Pareto deviate with scale `x_min` and shape `alpha` (heavy tail for
    /// small `alpha`; used for bandwidth burst outliers).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Prng::new(7);
        let mut parent2 = Prng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child and parent streams do not collide.
        let mut p = Prng::new(7);
        let mut c = p.fork();
        let collisions = (0..256).filter(|_| p.next_u64() == c.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = Prng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Prng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut rng = Prng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Prng::new(17);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::new(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements left in place is astronomically unlikely"
        );
    }

    #[test]
    fn choose_uniformity_rough() {
        let mut rng = Prng::new(29);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*rng.choose(&items)] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "counts {counts:?}");
        }
    }
}
