//! Statistics helpers for experiment reporting.
//!
//! The paper reports medians, boxplot five-number summaries (Figs. 2–5) and
//! `mean ± std` rows (Table 1); this module computes all of them, plus the
//! harmonic mean that is central to the scheduler itself.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation with Bessel's correction (0 for n < 2).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Formats as the paper's Table-1 style `mean ± std` with one decimal.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean(), self.std())
    }
}

/// Quantile with linear interpolation on a **sorted** slice
/// (type-7 estimator, the R/NumPy default). `q` is clamped to `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Sorts a copy of the sample and returns the `q`-quantile.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&v, q)
}

/// Median convenience wrapper.
pub fn median(sample: &[f64]) -> f64 {
    quantile(sample, 0.5)
}

/// Arithmetic mean (0 when empty).
pub fn mean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<f64>() / sample.len() as f64
    }
}

/// Harmonic mean of strictly positive values: `n / Σ(1/xᵢ)`.
///
/// This is the estimator of §3.3 Eq. (2); it is dominated by the *small*
/// values in the sample, which is why it resists large upward outliers.
pub fn harmonic_mean(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "harmonic mean of empty sample");
    let inv_sum: f64 = sample
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "harmonic mean requires positive values");
            1.0 / x
        })
        .sum();
    sample.len() as f64 / inv_sum
}

/// Five-number summary for boxplots (Tukey whiskers at 1.5 × IQR).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker (most extreme point above the 1.5 IQR fence).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (most extreme point below the 1.5 IQR fence).
    pub whisker_hi: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary from an unsorted sample.
    pub fn from_sample(sample: &[f64]) -> BoxStats {
        assert!(!sample.is_empty(), "boxplot of empty sample");
        let mut v = sample.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let q1 = quantile_sorted(&v, 0.25);
        let med = quantile_sorted(&v, 0.50);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers extend to the most extreme data point inside the fences.
        let whisker_lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        BoxStats {
            min: v[0],
            whisker_lo,
            q1,
            median: med,
            q3,
            whisker_hi,
            max: v[v.len() - 1],
            n: v.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_batch() {
        let data = [4.0, 7.0, 13.0, 16.0];
        let mut r = Running::new();
        for &x in &data {
            r.push(x);
        }
        assert_eq!(r.count(), 4);
        assert!((r.mean() - 10.0).abs() < 1e-12);
        // Sample std of [4,7,13,16] = sqrt(30) ≈ 5.477
        assert!((r.std() - 30f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.min(), 4.0);
        assert_eq!(r.max(), 16.0);
    }

    #[test]
    fn running_single_value_has_zero_std() {
        let mut r = Running::new();
        r.push(5.0);
        assert_eq!(r.std(), 0.0);
        assert_eq!(r.mean(), 5.0);
    }

    #[test]
    fn mean_pm_std_format() {
        let mut r = Running::new();
        r.push(60.0);
        r.push(64.0);
        assert_eq!(r.mean_pm_std(), "62.0 ± 2.8");
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[1.0, 2.0, 3.0, 10.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_known_value() {
        // H(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7
        assert!((harmonic_mean(&[1.0, 2.0, 4.0]) - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_resists_large_outliers() {
        let base = [10.0; 9];
        let mut with_spike = base.to_vec();
        with_spike.push(1000.0); // one huge burst
        let h = harmonic_mean(&with_spike);
        let a = mean(&with_spike);
        assert!(h < 11.2, "harmonic barely moves: {h}");
        assert!(a > 100.0, "arithmetic mean is dragged: {a}");
    }

    #[test]
    fn box_stats_basic() {
        let v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let b = BoxStats::from_sample(&v);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.n, 9);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
    }

    #[test]
    fn box_stats_whiskers_exclude_outliers() {
        let mut v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        v.push(100.0); // far outlier
        let b = BoxStats::from_sample(&v);
        assert_eq!(b.max, 100.0);
        assert!(b.whisker_hi < 100.0, "whisker stops at fence");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}
