//! Simulated time.
//!
//! All simulation timestamps are integer **microseconds** since the start of
//! the simulation. Integer time keeps the event queue total-ordered without
//! floating-point drift; fractional quantities (rates, positions inside a
//! round) only ever exist transiently inside model code.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds (rounding to the nearest
    /// microsecond, saturating at zero for negative input).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime(0);
        }
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction between instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration (stays at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a span from fractional seconds (rounded to the nearest
    /// microsecond, saturating at zero for negative input).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference between spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to microseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-3 {
            write!(f, "{:.0}us", self.0)
        } else if s < 1.0 {
            write!(f, "{:.1}ms", s * 1e3)
        } else {
            write!(f, "{s:.2}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn float_roundtrip_is_microsecond_exact() {
        let t = SimTime::from_secs_f64(1.234_567);
        assert_eq!(t.as_micros(), 1_234_567);
        assert!((t.as_secs_f64() - 1.234_567).abs() < 1e-9);
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1.as_micros(), 1_250_000);
        assert_eq!(t1 - t0, d);
        assert_eq!((t1 - d), t0);
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_millis(10);
        let db = SimDuration::from_millis(20);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.5).as_micros(), 15);
        assert_eq!(d.mul_f64(0.0).as_micros(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "500us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(3.5)), "3.50s");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500s");
    }
}
