//! Stochastic processes used to model time-varying link properties.
//!
//! The paper's links (home WiFi, commercial LTE) are characterised by three
//! properties the schedulers are sensitive to (§5.2, §6):
//!
//! 1. *mean-reverting variability* — available bandwidth wanders around a
//!    mean (modelled by an exact-discretisation Ornstein–Uhlenbeck process);
//! 2. *heavy-tailed outliers* — short bursts and dips, especially on LTE
//!    (modelled by a Pareto-amplitude burst overlay). These are exactly the
//!    outliers the harmonic-mean estimator is designed to resist;
//! 3. *regime changes* — e.g. cross-traffic appearing (modelled by a two-state
//!    Markov modulator).
//!
//! Processes are sampled at non-decreasing times and are deterministic given
//! their [`Prng`] stream.

use crate::rng::{DeviateMode, DrawKind, DrawTable, Prng};
use crate::time::SimTime;

/// A real-valued stochastic process sampled at non-decreasing sim times.
pub trait Process: Send {
    /// Value of the process at time `t`. Implementations may advance internal
    /// state; callers must sample with non-decreasing `t`. Re-sampling the
    /// same instant must return the same value without consuming randomness.
    fn value_at(&mut self, t: SimTime) -> f64;

    /// Stability horizon: a time `H > t` such that for every `t' ∈ [t, H)`,
    /// `value_at(t')` returns the same value as at `t`, consumes no
    /// randomness, and *skipping* those calls entirely leaves every later
    /// sample unchanged. `None` when no such horizon is known.
    ///
    /// Callers must have advanced the process to `t` (via `value_at`)
    /// before asking. This is the contract the epoch-based TCP transfer
    /// engine uses to collapse stable stretches into closed-form solves
    /// (see `msim_net::tcp`); conservative implementations simply return
    /// `None` and fall back to per-sample stepping.
    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        None
    }
}

/// A constant process.
#[derive(Clone, Debug)]
pub struct Constant(pub f64);

impl Process for Constant {
    fn value_at(&mut self, _t: SimTime) -> f64 {
        self.0
    }

    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        Some(SimTime::MAX)
    }
}

/// Mean-reverting Ornstein–Uhlenbeck process with exact discretisation:
///
/// `x(t+dt) = mean + (x(t) - mean)·e^(−dt/tau) + s·sqrt(1 − e^(−2dt/tau))·N(0,1)`
///
/// where `s` is the stationary standard deviation. Exact discretisation means
/// the sampling grid (chunk boundaries, which differ per scheduler) does not
/// change the process distribution — crucial for fair scheduler comparisons.
pub struct Ou {
    mean: f64,
    stationary_std: f64,
    neg_inv_tau: f64,
    state: f64,
    last_t: SimTime,
    noise: DrawTable,
    decay_cache: [(u64, f64, f64); OU_DECAY_SLOTS],
}

/// Slots in the per-process decay cache (`dt bits → (e^{−dt/τ}, noise σ)`).
/// Fixed-grid callers (ticks, chunk boundaries on calm links) hit the same
/// handful of `dt`s and enjoy near-perfect hit rates; jitter-driven callers
/// see a fresh `dt` per round and fall through to the (cheap, vmath) exp
/// recompute, so the cache is sized small — 32 slots, 768 B per process.
const OU_DECAY_SLOTS: usize = 32;

impl Ou {
    /// Creates a process with the given long-run `mean`, stationary standard
    /// deviation `std`, and mean-reversion time constant `tau_secs`.
    pub fn new(mean: f64, std: f64, tau_secs: f64, rng: Prng) -> Self {
        Ou::with_mode(mean, std, tau_secs, rng, DeviateMode::default())
    }

    /// As [`Ou::new`] with an explicit deviate-generation mode.
    pub fn with_mode(mean: f64, std: f64, tau_secs: f64, mut rng: Prng, mode: DeviateMode) -> Self {
        assert!(tau_secs > 0.0, "tau must be positive");
        // Start from the stationary distribution so there is no warm-up bias.
        // The initial draw stays on the scalar path; the per-step noise
        // stream then comes from the same rng via the draw table.
        let state = mean + std * rng.normal();
        Ou {
            mean,
            stationary_std: std,
            neg_inv_tau: -1.0 / tau_secs,
            state,
            last_t: SimTime::ZERO,
            noise: DrawTable::new(rng, DrawKind::Normal, mode),
            decay_cache: [(u64::MAX, 0.0, 0.0); OU_DECAY_SLOTS],
        }
    }

    /// Decay factor and noise std for a step of `dt`, via the direct-mapped
    /// cache. `dt > 0` is finite, so its bit pattern never collides with the
    /// `u64::MAX` (negative-NaN) empty-slot sentinel.
    #[inline]
    fn decay_for(&mut self, dt: f64) -> (f64, f64) {
        let bits = dt.to_bits();
        let idx = (bits.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize;
        let slot = &mut self.decay_cache[idx];
        if slot.0 != bits {
            // Clamp keeps a huge idle gap inside vmath::exp's contract;
            // e^-700 is already indistinguishable from full decay.
            let decay = crate::vmath::exp((dt * self.neg_inv_tau).max(-700.0));
            let noise = self.stationary_std * (1.0 - decay * decay).sqrt();
            *slot = (bits, decay, noise);
        }
        (slot.1, slot.2)
    }
}

impl Process for Ou {
    fn value_at(&mut self, t: SimTime) -> f64 {
        let dt = t.saturating_since(self.last_t).as_secs_f64();
        if dt > 0.0 {
            let (decay, noise_std) = self.decay_for(dt);
            self.state =
                self.mean + (self.state - self.mean) * decay + noise_std * self.noise.draw();
            self.last_t = t;
        }
        self.state
    }
}

/// Two-state Markov modulator. Emits `good_mult` in the good state and
/// `bad_mult` in the bad state, with exponential holding times. Used for
/// cross-traffic / congestion episodes.
pub struct MarkovModulator {
    good_mult: f64,
    bad_mult: f64,
    mean_good_secs: f64,
    mean_bad_secs: f64,
    in_good: bool,
    next_switch: SimTime,
    /// Unit-mean exponential holds, scaled by the per-state mean at use —
    /// one table serves both states.
    holds: DrawTable,
}

impl MarkovModulator {
    /// Builds a modulator that stays in the good state for
    /// `mean_good_secs` on average and in the bad state for `mean_bad_secs`.
    pub fn new(
        good_mult: f64,
        bad_mult: f64,
        mean_good_secs: f64,
        mean_bad_secs: f64,
        rng: Prng,
    ) -> Self {
        Self::with_mode(
            good_mult,
            bad_mult,
            mean_good_secs,
            mean_bad_secs,
            rng,
            DeviateMode::default(),
        )
    }

    /// As [`MarkovModulator::new`] with an explicit deviate-generation mode.
    pub fn with_mode(
        good_mult: f64,
        bad_mult: f64,
        mean_good_secs: f64,
        mean_bad_secs: f64,
        rng: Prng,
        mode: DeviateMode,
    ) -> Self {
        let mut holds = DrawTable::new(rng, DrawKind::ExpUnit, mode);
        let first = holds.draw() * mean_good_secs;
        MarkovModulator {
            good_mult,
            bad_mult,
            mean_good_secs,
            mean_bad_secs,
            in_good: true,
            next_switch: SimTime::from_secs_f64(first),
            holds,
        }
    }
}

impl Process for MarkovModulator {
    fn value_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_switch {
            self.in_good = !self.in_good;
            let mean = if self.in_good {
                self.mean_good_secs
            } else {
                self.mean_bad_secs
            };
            let hold = self.holds.draw() * mean;
            self.next_switch += crate::time::SimDuration::from_secs_f64(hold);
        }
        if self.in_good {
            self.good_mult
        } else {
            self.bad_mult
        }
    }

    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        // The multiplier is constant — and `value_at` is a pure read — up
        // to the next scheduled state switch.
        Some(self.next_switch)
    }
}

/// Deterministic sinusoidal modulator `1 + amp·sin(2π t / period + phase)`;
/// models slow diurnal-style load swings during a long experiment run.
///
/// The per-sample `sin` is replaced by an angle-addition recurrence: given
/// `sin θ`/`cos θ` at the last sample and `sin ω·dt`/`cos ω·dt` for the step
/// (cached per distinct `dt`, which the cycling RTT tables make a small
/// repeating set), the next sample is two multiplies and an add per
/// component. Every [`SINUSOID_RESYNC`] steps the recurrence resyncs
/// against the closed form to bound accumulated rounding drift.
#[derive(Clone, Debug)]
pub struct Sinusoid {
    amplitude: f64,
    omega: f64,
    phase: f64,
    last_t: SimTime,
    sin_th: f64,
    cos_th: f64,
    steps: u32,
    primed: bool,
    /// One-entry step cache: `dt bits → (sin ω·dt, cos ω·dt)`.
    step_cache: (u64, f64, f64),
}

/// Recurrence steps between closed-form resyncs. Rotation error grows
/// linearly in ulps per step, so 512 steps keep drift below ~1e-13 — far
/// under any physically meaningful scale — while amortising `sin` 512×.
const SINUSOID_RESYNC: u32 = 512;

impl Sinusoid {
    /// Creates a modulator with peak deviation `amplitude` from 1.0,
    /// oscillation period `period_secs`, and phase offset `phase` radians.
    pub fn new(amplitude: f64, period_secs: f64, phase: f64) -> Self {
        assert!(period_secs > 0.0, "period must be positive");
        Sinusoid {
            amplitude,
            omega: std::f64::consts::TAU / period_secs,
            phase,
            last_t: SimTime::ZERO,
            sin_th: 0.0,
            cos_th: 0.0,
            steps: 0,
            primed: false,
            step_cache: (u64::MAX, 0.0, 0.0),
        }
    }

    /// Closed-form resync: recompute `sin θ`/`cos θ` directly at `t`.
    fn resync(&mut self, t: SimTime) {
        let theta = self.omega * t.as_secs_f64() + self.phase;
        self.sin_th = theta.sin();
        self.cos_th = theta.cos();
        self.last_t = t;
        self.steps = 0;
        self.primed = true;
    }
}

impl Process for Sinusoid {
    fn value_at(&mut self, t: SimTime) -> f64 {
        if !self.primed {
            self.resync(t);
        } else if t > self.last_t && self.steps >= SINUSOID_RESYNC {
            // Resync only on an *advancing* sample, so re-sampling an
            // already-sampled instant can never flip between the recurrence
            // and closed-form values.
            self.resync(t);
        } else if t > self.last_t {
            let dt = t.saturating_since(self.last_t).as_secs_f64();
            let bits = dt.to_bits();
            if self.step_cache.0 != bits {
                let ang = self.omega * dt;
                self.step_cache = (bits, ang.sin(), ang.cos());
            }
            let (_, sin_dt, cos_dt) = self.step_cache;
            let (s, c) = (self.sin_th, self.cos_th);
            self.sin_th = s * cos_dt + c * sin_dt;
            self.cos_th = c * cos_dt - s * sin_dt;
            self.last_t = t;
            self.steps += 1;
        }
        1.0 + self.amplitude * self.sin_th
    }
}

/// Heavy-tailed burst/dip overlay.
///
/// Burst events arrive as a Poisson process. Each event lasts an exponential
/// duration; with probability `up_prob` it is an *up* burst with multiplier
/// drawn from `Pareto(1, shape)` (capped), otherwise a *dip* with multiplier
/// `1/Pareto(1, shape)`. Outside events the multiplier is 1. These are the
/// "large outliers due to network variation" of §3.3 that motivate the
/// harmonic-mean estimator.
pub struct Bursts {
    mean_interarrival_secs: f64,
    mean_duration_secs: f64,
    cap: f64,
    down_cap: f64,
    up_prob: f64,
    /// Current event: (end_time, multiplier) if inside one.
    current: Option<(SimTime, f64)>,
    next_start: SimTime,
    /// Up-vs-dip coin flips (scalar draws; one per event).
    rng: Prng,
    /// Unit-mean exponential durations and gaps, scaled at use.
    holds: DrawTable,
    /// Unit-scale Pareto amplitudes (`x_min = 1`), capped at use.
    amplitudes: DrawTable,
}

impl Bursts {
    /// Creates the overlay. `shape` is the Pareto tail exponent (smaller =
    /// heavier tail); up-burst multipliers are capped at `cap`, dips are
    /// floored at `1/down_cap`. Asymmetric caps model the common case where
    /// spare-capacity bursts are much larger than transient dips.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mean_interarrival_secs: f64,
        mean_duration_secs: f64,
        shape: f64,
        cap: f64,
        down_cap: f64,
        up_prob: f64,
        rng: Prng,
    ) -> Self {
        Self::with_mode(
            mean_interarrival_secs,
            mean_duration_secs,
            shape,
            cap,
            down_cap,
            up_prob,
            rng,
            DeviateMode::default(),
        )
    }

    /// As [`Bursts::new`] with an explicit deviate-generation mode.
    #[allow(clippy::too_many_arguments)]
    pub fn with_mode(
        mean_interarrival_secs: f64,
        mean_duration_secs: f64,
        shape: f64,
        cap: f64,
        down_cap: f64,
        up_prob: f64,
        mut rng: Prng,
        mode: DeviateMode,
    ) -> Self {
        assert!(cap >= 1.0 && down_cap >= 1.0, "caps are multipliers >= 1");
        // The coin flips stay on `rng`; holds and amplitudes get forked
        // streams so their tables advance independently of the flips.
        let mut holds = DrawTable::new(rng.fork(), DrawKind::ExpUnit, mode);
        let amplitudes = DrawTable::new(rng.fork(), DrawKind::ParetoUnit { alpha: shape }, mode);
        let first = holds.draw() * mean_interarrival_secs;
        Bursts {
            mean_interarrival_secs,
            mean_duration_secs,
            cap,
            down_cap,
            up_prob,
            current: None,
            next_start: SimTime::from_secs_f64(first),
            rng,
            holds,
            amplitudes,
        }
    }

    fn draw_multiplier(&mut self) -> f64 {
        if self.rng.chance(self.up_prob) {
            self.amplitudes.draw().min(self.cap)
        } else {
            1.0 / self.amplitudes.draw().min(self.down_cap)
        }
    }
}

impl Process for Bursts {
    fn value_at(&mut self, t: SimTime) -> f64 {
        // Expire a finished event.
        if let Some((end, _)) = self.current {
            if t >= end {
                self.current = None;
            }
        }
        // Start (possibly skip over) events up to time t.
        while self.current.is_none() && t >= self.next_start {
            let dur = self.holds.draw() * self.mean_duration_secs;
            let end = self.next_start + crate::time::SimDuration::from_secs_f64(dur);
            let mult = self.draw_multiplier();
            let gap = self.holds.draw() * self.mean_interarrival_secs;
            self.next_start = end + crate::time::SimDuration::from_secs_f64(gap);
            if t < end {
                self.current = Some((end, mult));
            }
            // else: the event began and ended entirely before t; skip it.
        }
        self.current.map_or(1.0, |(_, m)| m)
    }

    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        // Inside an event the multiplier holds (and `value_at` is a pure
        // read) until the event's end; between events it is 1.0 (pure)
        // until the next scheduled start. Either way, skipping calls in
        // the window does not change any later draw.
        match self.current {
            Some((end, _)) if t < end => Some(end),
            _ => Some(self.next_start),
        }
    }
}

/// A closed enum over the concrete process families of this crate, plus an
/// escape hatch for external implementations.
///
/// Sampling a link rate happens once per simulated TCP round — the hottest
/// call site in the repository — so the standard compositions dispatch
/// through this enum (a predictable branch, inlinable bodies) instead of a
/// `Box<dyn Process>` vtable per component.
pub enum ProcessKind {
    /// A [`Constant`] process.
    Constant(Constant),
    /// An Ornstein–Uhlenbeck process.
    Ou(Ou),
    /// A two-state Markov modulator.
    Markov(MarkovModulator),
    /// A heavy-tailed burst overlay.
    Bursts(Bursts),
    /// A deterministic sinusoid.
    Sinusoid(Sinusoid),
    /// A modulated composition (boxed: the type is recursive).
    Modulated(Box<Modulated>),
    /// Any other process, dispatched dynamically.
    Other(Box<dyn Process>),
}

macro_rules! kind_from {
    ($($variant:ident($ty:ty)),* $(,)?) => {$(
        impl From<$ty> for ProcessKind {
            fn from(p: $ty) -> ProcessKind {
                ProcessKind::$variant(p.into())
            }
        }
    )*};
}

kind_from!(
    Constant(Constant),
    Ou(Ou),
    Markov(MarkovModulator),
    Bursts(Bursts),
    Sinusoid(Sinusoid),
    Modulated(Modulated),
    Other(Box<dyn Process>),
);

impl ProcessKind {
    /// Dispatches to the wrapped process.
    #[inline]
    fn inner(&self) -> &dyn Process {
        match self {
            ProcessKind::Constant(p) => p,
            ProcessKind::Ou(p) => p,
            ProcessKind::Markov(p) => p,
            ProcessKind::Bursts(p) => p,
            ProcessKind::Sinusoid(p) => p,
            ProcessKind::Modulated(p) => p.as_ref(),
            ProcessKind::Other(p) => p.as_ref(),
        }
    }
}

impl Process for ProcessKind {
    #[inline]
    fn value_at(&mut self, t: SimTime) -> f64 {
        match self {
            ProcessKind::Constant(p) => p.value_at(t),
            ProcessKind::Ou(p) => p.value_at(t),
            ProcessKind::Markov(p) => p.value_at(t),
            ProcessKind::Bursts(p) => p.value_at(t),
            ProcessKind::Sinusoid(p) => p.value_at(t),
            ProcessKind::Modulated(p) => p.value_at(t),
            ProcessKind::Other(p) => p.value_at(t),
        }
    }

    #[inline]
    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        self.inner().stable_until(t)
    }
}

/// A base process multiplied by any number of modulator processes, clamped
/// to `[min, max]`. This is the standard composition for link rates:
/// `clamp(OU × Markov × Bursts × Sinusoid)`.
pub struct Modulated {
    base: ProcessKind,
    modulators: Vec<ProcessKind>,
    min: f64,
    max: f64,
    /// Cached modulator product and the horizon it is valid until. Markov
    /// and burst modulators hold their value for whole episodes (seconds)
    /// while the base OU is sampled every round (~tens of ms), so the
    /// product — and the per-modulator dispatch — is skipped on the vast
    /// majority of samples. `stable_until`'s contract (constant value,
    /// zero randomness consumed, skippable calls) is exactly what makes
    /// this cache bit-transparent.
    mod_cache: Option<(f64, SimTime)>,
}

impl Modulated {
    /// Wraps `base` with no modulators and the given clamp bounds.
    pub fn new(base: impl Into<ProcessKind>, min: f64, max: f64) -> Self {
        assert!(min <= max, "min > max");
        Modulated {
            base: base.into(),
            modulators: Vec::new(),
            min,
            max,
            mod_cache: None,
        }
    }

    /// Adds a multiplicative modulator.
    pub fn with(mut self, modulator: impl Into<ProcessKind>) -> Self {
        self.modulators.push(modulator.into());
        self.mod_cache = None;
        self
    }
}

impl Process for Modulated {
    fn value_at(&mut self, t: SimTime) -> f64 {
        let v = self.base.value_at(t);
        let product = match self.mod_cache {
            Some((p, h)) if t < h => p,
            _ => {
                let mut p = 1.0;
                let mut horizon = Some(SimTime::MAX);
                for m in &mut self.modulators {
                    p *= m.value_at(t);
                    horizon = match (horizon, m.stable_until(t)) {
                        (Some(h), Some(mh)) => Some(h.min(mh)),
                        _ => None,
                    };
                }
                self.mod_cache = horizon.filter(|&h| h > t).map(|h| (p, h));
                p
            }
        };
        (v * product).clamp(self.min, self.max)
    }

    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        // Stable exactly when every component is; the clamp is constant.
        let mut h = self.base.stable_until(t)?;
        for m in &self.modulators {
            h = h.min(m.stable_until(t)?);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample_grid(p: &mut dyn Process, n: usize, step: SimDuration) -> Vec<f64> {
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += step;
                p.value_at(t)
            })
            .collect()
    }

    #[test]
    fn constant_is_constant() {
        let mut c = Constant(5.0);
        for v in sample_grid(&mut c, 100, SimDuration::from_millis(10)) {
            assert_eq!(v, 5.0);
        }
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(1));
        let samples = sample_grid(&mut ou, 20_000, SimDuration::from_millis(100));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn ou_is_deterministic_per_seed() {
        let mut a = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        let mut b = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        assert_eq!(
            sample_grid(&mut a, 100, SimDuration::from_millis(37)),
            sample_grid(&mut b, 100, SimDuration::from_millis(37)),
        );
    }

    #[test]
    fn ou_same_time_same_value() {
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        let t = SimTime::from_secs(1);
        let v1 = ou.value_at(t);
        let v2 = ou.value_at(t);
        assert_eq!(
            v1, v2,
            "re-sampling the same instant must not advance state"
        );
    }

    #[test]
    fn markov_visits_both_states() {
        let mut m = MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(2));
        let samples = sample_grid(&mut m, 10_000, SimDuration::from_millis(50));
        let good = samples.iter().filter(|&&v| v == 1.0).count();
        let bad = samples.iter().filter(|&&v| v == 0.3).count();
        assert_eq!(good + bad, samples.len());
        assert!(good > 0 && bad > 0);
        // Expected good fraction = 5 / (5 + 2) ≈ 0.71.
        let frac = good as f64 / samples.len() as f64;
        assert!((0.55..0.85).contains(&frac), "good fraction {frac}");
    }

    #[test]
    fn bursts_mostly_one_with_outliers() {
        let mut b = Bursts::new(10.0, 0.5, 1.5, 8.0, 8.0, 0.5, Prng::new(3));
        let samples = sample_grid(&mut b, 20_000, SimDuration::from_millis(100));
        let neutral = samples.iter().filter(|&&v| v == 1.0).count();
        let frac = neutral as f64 / samples.len() as f64;
        assert!(frac > 0.8, "neutral fraction {frac}");
        assert!(samples.iter().any(|&v| v > 1.0), "some up bursts");
        assert!(samples.iter().any(|&v| v < 1.0), "some dips");
        for &v in &samples {
            assert!((1.0 / 8.0..=8.0).contains(&v), "bounded by cap: {v}");
        }
    }

    #[test]
    fn sinusoid_oscillates() {
        let mut s = Sinusoid::new(0.2, 10.0, 0.0);
        let v_quarter = s.value_at(SimTime::from_secs_f64(2.5));
        assert!((v_quarter - 1.2).abs() < 1e-9);
        let v_three_quarter = s.value_at(SimTime::from_secs_f64(7.5));
        assert!((v_three_quarter - 0.8).abs() < 1e-9);
    }

    #[test]
    fn modulated_clamps() {
        let mut m = Modulated::new(Constant(100.0), 0.0, 50.0);
        assert_eq!(m.value_at(SimTime::from_secs(1)), 50.0);
        let mut m2 = Modulated::new(Constant(10.0), 0.0, 50.0)
            .with(Constant(0.5))
            .with(Constant(3.0));
        assert!((m2.value_at(SimTime::from_secs(1)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn stability_horizons() {
        // Constant: stable forever.
        assert_eq!(
            Constant(5.0).stable_until(SimTime::ZERO),
            Some(SimTime::MAX)
        );
        // OU: never stable (draws per sample).
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(1));
        let t = SimTime::from_secs(1);
        ou.value_at(t);
        assert_eq!(ou.stable_until(t), None);
        // Sinusoid: deterministic but time-varying → no horizon.
        let mut s = Sinusoid::new(0.2, 10.0, 0.0);
        s.value_at(t);
        assert_eq!(s.stable_until(t), None);
        // Markov: stable until the next switch, and the value really does
        // hold (with no stream perturbation) across the whole horizon.
        let mut m = MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(2));
        let v = m.value_at(t);
        let h = m.stable_until(t).expect("markov advertises a horizon");
        assert!(h > t);
        let probe = h - crate::time::SimDuration::from_micros(1);
        assert_eq!(m.value_at(probe), v, "value holds inside the horizon");
        // Modulated: min over components; any unstable component wins.
        let mut combo = Modulated::new(Constant(10.0), 0.0, 100.0).with(MarkovModulator::new(
            1.0,
            0.3,
            5.0,
            2.0,
            Prng::new(3),
        ));
        combo.value_at(t);
        let h = combo.stable_until(t).expect("all components stable");
        assert!(h > t && h < SimTime::MAX);
        let mut combo2 = Modulated::new(Ou::new(10.0, 2.0, 1.0, Prng::new(4)), 0.0, 100.0);
        combo2.value_at(t);
        assert_eq!(combo2.stable_until(t), None);
    }

    #[test]
    fn sinusoid_recurrence_tracks_closed_form() {
        // Irregular step sizes across many resync windows: the recurrence
        // must stay within ~1e-9 of the closed form (drift is bounded by
        // the periodic resync).
        let mut s = Sinusoid::new(0.3, 7.0, 1.1);
        let mut t = SimTime::ZERO;
        let steps = [0.013, 0.047, 0.013, 0.029, 0.047, 0.013];
        for i in 0..5_000 {
            t += SimDuration::from_secs_f64(steps[i % steps.len()]);
            let got = s.value_at(t);
            let theta = std::f64::consts::TAU * t.as_secs_f64() / 7.0 + 1.1;
            let want = 1.0 + 0.3 * theta.sin();
            assert!(
                (got - want).abs() < 1e-9,
                "step {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn sinusoid_same_time_same_value() {
        let mut s = Sinusoid::new(0.2, 10.0, 0.0);
        let mut t = SimTime::ZERO;
        for _ in 0..(SINUSOID_RESYNC + 3) {
            t += SimDuration::from_millis(13);
            let v1 = s.value_at(t);
            let v2 = s.value_at(t);
            assert_eq!(v1.to_bits(), v2.to_bits(), "re-sample at {t:?}");
        }
    }

    #[test]
    fn ou_decay_cache_is_transparent() {
        // The decay cache must not change values: two OU processes with the
        // same seed, one sampled on a grid that repeats dt values (cache
        // hits) and one freshly constructed per comparison, agree bitwise.
        let mut a = Ou::new(10.0, 2.0, 1.0, Prng::new(8));
        let mut b = Ou::new(10.0, 2.0, 1.0, Prng::new(8));
        let mut t = SimTime::ZERO;
        let steps = [37, 51, 37, 51, 37, 64]; // repeats → cache hits in `a`
        for (i, &ms) in steps.iter().cycle().take(4_000).enumerate() {
            t += SimDuration::from_millis(ms);
            let va = a.value_at(t);
            let vb = b.value_at(t);
            assert_eq!(va.to_bits(), vb.to_bits(), "step {i}");
        }
    }

    #[test]
    fn table_sampled_ou_matches_direct_moments() {
        // Statistical guard for the redefined stream: the table-sampled OU
        // must still have the stationary mean/std it advertises.
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(101));
        let samples = sample_grid(&mut ou, 40_000, SimDuration::from_millis(100));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        assert!((std - 2.0).abs() < 0.3, "std {std}");
        // Coefficient of variation sanity: std/mean ≈ 0.2.
        let cv = std / mean;
        assert!((cv - 0.2).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn table_sampled_markov_matches_direct_occupancy() {
        // Table-driven holding times keep the stationary occupancy at
        // mean_good / (mean_good + mean_bad).
        let mut m = MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(102));
        let samples = sample_grid(&mut m, 40_000, SimDuration::from_millis(50));
        let good = samples.iter().filter(|&&v| v == 1.0).count();
        let frac = good as f64 / samples.len() as f64;
        assert!((0.60..0.82).contains(&frac), "good fraction {frac}");
    }

    #[test]
    fn block_and_scalar_ref_processes_are_bit_identical() {
        // The whole point of DeviateMode::ScalarRef: a process driven by
        // scalar-reference fills reproduces the block-filled stream bitwise.
        let grid: Vec<SimTime> = {
            let mut t = SimTime::ZERO;
            (0..3_000)
                .map(|i| {
                    t += SimDuration::from_millis(23 + (i % 7) * 11);
                    t
                })
                .collect()
        };
        let mut ou_b = Ou::with_mode(10.0, 2.0, 1.0, Prng::new(9), DeviateMode::Block);
        let mut ou_s = Ou::with_mode(10.0, 2.0, 1.0, Prng::new(9), DeviateMode::ScalarRef);
        let mut mk_b =
            MarkovModulator::with_mode(1.0, 0.3, 5.0, 2.0, Prng::new(10), DeviateMode::Block);
        let mut mk_s =
            MarkovModulator::with_mode(1.0, 0.3, 5.0, 2.0, Prng::new(10), DeviateMode::ScalarRef);
        let mut bu_b = Bursts::with_mode(
            10.0,
            0.5,
            1.5,
            8.0,
            8.0,
            0.5,
            Prng::new(11),
            DeviateMode::Block,
        );
        let mut bu_s = Bursts::with_mode(
            10.0,
            0.5,
            1.5,
            8.0,
            8.0,
            0.5,
            Prng::new(11),
            DeviateMode::ScalarRef,
        );
        for &t in &grid {
            assert_eq!(ou_b.value_at(t).to_bits(), ou_s.value_at(t).to_bits());
            assert_eq!(mk_b.value_at(t).to_bits(), mk_s.value_at(t).to_bits());
            assert_eq!(bu_b.value_at(t).to_bits(), bu_s.value_at(t).to_bits());
        }
    }

    #[test]
    fn modulated_product_cache_is_transparent() {
        // A Modulated with cache-friendly modulators (Markov/Bursts expose
        // horizons) must agree bitwise with sampling the same component
        // streams without the wrapper's cache (forced by including a
        // horizon-less Sinusoid, which disables caching).
        let build = |extra_sin: bool| {
            let mut m = Modulated::new(Ou::new(10.0, 2.0, 1.0, Prng::new(12)), 0.0, 100.0)
                .with(MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(13)))
                .with(Bursts::new(10.0, 0.5, 1.5, 8.0, 8.0, 0.5, Prng::new(14)));
            if extra_sin {
                m = m.with(Sinusoid::new(0.0, 10.0, 0.0)); // amp 0: no-op value
            }
            m
        };
        let mut cached = build(false);
        let mut uncached = build(true);
        let mut t = SimTime::ZERO;
        for i in 0..5_000 {
            t += SimDuration::from_millis(41 + (i % 5) * 13);
            let a = cached.value_at(t);
            let b = uncached.value_at(t);
            assert_eq!(a.to_bits(), b.to_bits(), "step {i}");
        }
    }

    #[test]
    fn bursts_stability_matches_event_windows() {
        let mut b = Bursts::new(10.0, 0.5, 1.5, 8.0, 8.0, 0.5, Prng::new(3));
        let mut t = SimTime::ZERO;
        let step = SimDuration::from_millis(100);
        for _ in 0..5_000 {
            t += step;
            let v = b.value_at(t);
            let h = b.stable_until(t).expect("bursts always give a horizon");
            assert!(h > t, "horizon {h:?} must lie ahead of {t:?}");
            // Re-sampling strictly inside the horizon returns the same
            // value and cannot perturb the later stream (checked
            // indirectly: same draws happen at the same event boundaries
            // whether or not intermediate samples occurred).
            let inside = (t + step).min(h - SimDuration::from_micros(1));
            if inside > t {
                assert_eq!(b.value_at(inside), v, "value drifted inside horizon");
            }
        }
    }
}
