//! Stochastic processes used to model time-varying link properties.
//!
//! The paper's links (home WiFi, commercial LTE) are characterised by three
//! properties the schedulers are sensitive to (§5.2, §6):
//!
//! 1. *mean-reverting variability* — available bandwidth wanders around a
//!    mean (modelled by an exact-discretisation Ornstein–Uhlenbeck process);
//! 2. *heavy-tailed outliers* — short bursts and dips, especially on LTE
//!    (modelled by a Pareto-amplitude burst overlay). These are exactly the
//!    outliers the harmonic-mean estimator is designed to resist;
//! 3. *regime changes* — e.g. cross-traffic appearing (modelled by a two-state
//!    Markov modulator).
//!
//! Processes are sampled at non-decreasing times and are deterministic given
//! their [`Prng`] stream.

use crate::rng::Prng;
use crate::time::SimTime;

/// A real-valued stochastic process sampled at non-decreasing sim times.
pub trait Process: Send {
    /// Value of the process at time `t`. Implementations may advance internal
    /// state; callers must sample with non-decreasing `t`. Re-sampling the
    /// same instant must return the same value without consuming randomness.
    fn value_at(&mut self, t: SimTime) -> f64;

    /// Stability horizon: a time `H > t` such that for every `t' ∈ [t, H)`,
    /// `value_at(t')` returns the same value as at `t`, consumes no
    /// randomness, and *skipping* those calls entirely leaves every later
    /// sample unchanged. `None` when no such horizon is known.
    ///
    /// Callers must have advanced the process to `t` (via `value_at`)
    /// before asking. This is the contract the epoch-based TCP transfer
    /// engine uses to collapse stable stretches into closed-form solves
    /// (see `msim_net::tcp`); conservative implementations simply return
    /// `None` and fall back to per-sample stepping.
    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        None
    }
}

/// A constant process.
#[derive(Clone, Debug)]
pub struct Constant(pub f64);

impl Process for Constant {
    fn value_at(&mut self, _t: SimTime) -> f64 {
        self.0
    }

    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        Some(SimTime::MAX)
    }
}

/// Mean-reverting Ornstein–Uhlenbeck process with exact discretisation:
///
/// `x(t+dt) = mean + (x(t) - mean)·e^(−dt/tau) + s·sqrt(1 − e^(−2dt/tau))·N(0,1)`
///
/// where `s` is the stationary standard deviation. Exact discretisation means
/// the sampling grid (chunk boundaries, which differ per scheduler) does not
/// change the process distribution — crucial for fair scheduler comparisons.
pub struct Ou {
    mean: f64,
    stationary_std: f64,
    tau_secs: f64,
    state: f64,
    last_t: SimTime,
    rng: Prng,
}

impl Ou {
    /// Creates a process with the given long-run `mean`, stationary standard
    /// deviation `std`, and mean-reversion time constant `tau_secs`.
    pub fn new(mean: f64, std: f64, tau_secs: f64, mut rng: Prng) -> Self {
        assert!(tau_secs > 0.0, "tau must be positive");
        // Start from the stationary distribution so there is no warm-up bias.
        let state = mean + std * rng.normal();
        Ou {
            mean,
            stationary_std: std,
            tau_secs,
            state,
            last_t: SimTime::ZERO,
            rng,
        }
    }
}

impl Process for Ou {
    fn value_at(&mut self, t: SimTime) -> f64 {
        let dt = t.saturating_since(self.last_t).as_secs_f64();
        if dt > 0.0 {
            let decay = (-dt / self.tau_secs).exp();
            let noise = self.stationary_std * (1.0 - decay * decay).sqrt();
            self.state = self.mean + (self.state - self.mean) * decay + noise * self.rng.normal();
            self.last_t = t;
        }
        self.state
    }
}

/// Two-state Markov modulator. Emits `good_mult` in the good state and
/// `bad_mult` in the bad state, with exponential holding times. Used for
/// cross-traffic / congestion episodes.
pub struct MarkovModulator {
    good_mult: f64,
    bad_mult: f64,
    mean_good_secs: f64,
    mean_bad_secs: f64,
    in_good: bool,
    next_switch: SimTime,
    rng: Prng,
}

impl MarkovModulator {
    /// Builds a modulator that stays in the good state for
    /// `mean_good_secs` on average and in the bad state for `mean_bad_secs`.
    pub fn new(
        good_mult: f64,
        bad_mult: f64,
        mean_good_secs: f64,
        mean_bad_secs: f64,
        mut rng: Prng,
    ) -> Self {
        let first = rng.exponential(mean_good_secs);
        MarkovModulator {
            good_mult,
            bad_mult,
            mean_good_secs,
            mean_bad_secs,
            in_good: true,
            next_switch: SimTime::from_secs_f64(first),
            rng,
        }
    }
}

impl Process for MarkovModulator {
    fn value_at(&mut self, t: SimTime) -> f64 {
        while t >= self.next_switch {
            self.in_good = !self.in_good;
            let mean = if self.in_good {
                self.mean_good_secs
            } else {
                self.mean_bad_secs
            };
            let hold = self.rng.exponential(mean);
            self.next_switch += crate::time::SimDuration::from_secs_f64(hold);
        }
        if self.in_good {
            self.good_mult
        } else {
            self.bad_mult
        }
    }

    fn stable_until(&self, _t: SimTime) -> Option<SimTime> {
        // The multiplier is constant — and `value_at` is a pure read — up
        // to the next scheduled state switch.
        Some(self.next_switch)
    }
}

/// Deterministic sinusoidal modulator `1 + amp·sin(2π t / period + phase)`;
/// models slow diurnal-style load swings during a long experiment run.
#[derive(Clone, Debug)]
pub struct Sinusoid {
    /// Peak deviation from 1.0.
    pub amplitude: f64,
    /// Oscillation period in seconds.
    pub period_secs: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

impl Process for Sinusoid {
    fn value_at(&mut self, t: SimTime) -> f64 {
        1.0 + self.amplitude
            * (std::f64::consts::TAU * t.as_secs_f64() / self.period_secs + self.phase).sin()
    }
}

/// Heavy-tailed burst/dip overlay.
///
/// Burst events arrive as a Poisson process. Each event lasts an exponential
/// duration; with probability `up_prob` it is an *up* burst with multiplier
/// drawn from `Pareto(1, shape)` (capped), otherwise a *dip* with multiplier
/// `1/Pareto(1, shape)`. Outside events the multiplier is 1. These are the
/// "large outliers due to network variation" of §3.3 that motivate the
/// harmonic-mean estimator.
pub struct Bursts {
    mean_interarrival_secs: f64,
    mean_duration_secs: f64,
    shape: f64,
    cap: f64,
    down_cap: f64,
    up_prob: f64,
    /// Current event: (end_time, multiplier) if inside one.
    current: Option<(SimTime, f64)>,
    next_start: SimTime,
    rng: Prng,
}

impl Bursts {
    /// Creates the overlay. `shape` is the Pareto tail exponent (smaller =
    /// heavier tail); up-burst multipliers are capped at `cap`, dips are
    /// floored at `1/down_cap`. Asymmetric caps model the common case where
    /// spare-capacity bursts are much larger than transient dips.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mean_interarrival_secs: f64,
        mean_duration_secs: f64,
        shape: f64,
        cap: f64,
        down_cap: f64,
        up_prob: f64,
        mut rng: Prng,
    ) -> Self {
        assert!(cap >= 1.0 && down_cap >= 1.0, "caps are multipliers >= 1");
        let first = rng.exponential(mean_interarrival_secs);
        Bursts {
            mean_interarrival_secs,
            mean_duration_secs,
            shape,
            cap,
            down_cap,
            up_prob,
            current: None,
            next_start: SimTime::from_secs_f64(first),
            rng,
        }
    }

    fn draw_multiplier(&mut self) -> f64 {
        if self.rng.chance(self.up_prob) {
            self.rng.pareto(1.0, self.shape).min(self.cap)
        } else {
            1.0 / self.rng.pareto(1.0, self.shape).min(self.down_cap)
        }
    }
}

impl Process for Bursts {
    fn value_at(&mut self, t: SimTime) -> f64 {
        // Expire a finished event.
        if let Some((end, _)) = self.current {
            if t >= end {
                self.current = None;
            }
        }
        // Start (possibly skip over) events up to time t.
        while self.current.is_none() && t >= self.next_start {
            let dur = self.rng.exponential(self.mean_duration_secs);
            let end = self.next_start + crate::time::SimDuration::from_secs_f64(dur);
            let mult = self.draw_multiplier();
            let gap = self.rng.exponential(self.mean_interarrival_secs);
            self.next_start = end + crate::time::SimDuration::from_secs_f64(gap);
            if t < end {
                self.current = Some((end, mult));
            }
            // else: the event began and ended entirely before t; skip it.
        }
        self.current.map_or(1.0, |(_, m)| m)
    }

    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        // Inside an event the multiplier holds (and `value_at` is a pure
        // read) until the event's end; between events it is 1.0 (pure)
        // until the next scheduled start. Either way, skipping calls in
        // the window does not change any later draw.
        match self.current {
            Some((end, _)) if t < end => Some(end),
            _ => Some(self.next_start),
        }
    }
}

/// A closed enum over the concrete process families of this crate, plus an
/// escape hatch for external implementations.
///
/// Sampling a link rate happens once per simulated TCP round — the hottest
/// call site in the repository — so the standard compositions dispatch
/// through this enum (a predictable branch, inlinable bodies) instead of a
/// `Box<dyn Process>` vtable per component.
pub enum ProcessKind {
    /// A [`Constant`] process.
    Constant(Constant),
    /// An Ornstein–Uhlenbeck process.
    Ou(Ou),
    /// A two-state Markov modulator.
    Markov(MarkovModulator),
    /// A heavy-tailed burst overlay.
    Bursts(Bursts),
    /// A deterministic sinusoid.
    Sinusoid(Sinusoid),
    /// A modulated composition (boxed: the type is recursive).
    Modulated(Box<Modulated>),
    /// Any other process, dispatched dynamically.
    Other(Box<dyn Process>),
}

macro_rules! kind_from {
    ($($variant:ident($ty:ty)),* $(,)?) => {$(
        impl From<$ty> for ProcessKind {
            fn from(p: $ty) -> ProcessKind {
                ProcessKind::$variant(p.into())
            }
        }
    )*};
}

kind_from!(
    Constant(Constant),
    Ou(Ou),
    Markov(MarkovModulator),
    Bursts(Bursts),
    Sinusoid(Sinusoid),
    Modulated(Modulated),
    Other(Box<dyn Process>),
);

impl ProcessKind {
    /// Dispatches to the wrapped process.
    #[inline]
    fn inner(&self) -> &dyn Process {
        match self {
            ProcessKind::Constant(p) => p,
            ProcessKind::Ou(p) => p,
            ProcessKind::Markov(p) => p,
            ProcessKind::Bursts(p) => p,
            ProcessKind::Sinusoid(p) => p,
            ProcessKind::Modulated(p) => p.as_ref(),
            ProcessKind::Other(p) => p.as_ref(),
        }
    }
}

impl Process for ProcessKind {
    #[inline]
    fn value_at(&mut self, t: SimTime) -> f64 {
        match self {
            ProcessKind::Constant(p) => p.value_at(t),
            ProcessKind::Ou(p) => p.value_at(t),
            ProcessKind::Markov(p) => p.value_at(t),
            ProcessKind::Bursts(p) => p.value_at(t),
            ProcessKind::Sinusoid(p) => p.value_at(t),
            ProcessKind::Modulated(p) => p.value_at(t),
            ProcessKind::Other(p) => p.value_at(t),
        }
    }

    #[inline]
    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        self.inner().stable_until(t)
    }
}

/// A base process multiplied by any number of modulator processes, clamped
/// to `[min, max]`. This is the standard composition for link rates:
/// `clamp(OU × Markov × Bursts × Sinusoid)`.
pub struct Modulated {
    base: ProcessKind,
    modulators: Vec<ProcessKind>,
    min: f64,
    max: f64,
}

impl Modulated {
    /// Wraps `base` with no modulators and the given clamp bounds.
    pub fn new(base: impl Into<ProcessKind>, min: f64, max: f64) -> Self {
        assert!(min <= max, "min > max");
        Modulated {
            base: base.into(),
            modulators: Vec::new(),
            min,
            max,
        }
    }

    /// Adds a multiplicative modulator.
    pub fn with(mut self, modulator: impl Into<ProcessKind>) -> Self {
        self.modulators.push(modulator.into());
        self
    }
}

impl Process for Modulated {
    fn value_at(&mut self, t: SimTime) -> f64 {
        let mut v = self.base.value_at(t);
        for m in &mut self.modulators {
            v *= m.value_at(t);
        }
        v.clamp(self.min, self.max)
    }

    fn stable_until(&self, t: SimTime) -> Option<SimTime> {
        // Stable exactly when every component is; the clamp is constant.
        let mut h = self.base.stable_until(t)?;
        for m in &self.modulators {
            h = h.min(m.stable_until(t)?);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample_grid(p: &mut dyn Process, n: usize, step: SimDuration) -> Vec<f64> {
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += step;
                p.value_at(t)
            })
            .collect()
    }

    #[test]
    fn constant_is_constant() {
        let mut c = Constant(5.0);
        for v in sample_grid(&mut c, 100, SimDuration::from_millis(10)) {
            assert_eq!(v, 5.0);
        }
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(1));
        let samples = sample_grid(&mut ou, 20_000, SimDuration::from_millis(100));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn ou_is_deterministic_per_seed() {
        let mut a = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        let mut b = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        assert_eq!(
            sample_grid(&mut a, 100, SimDuration::from_millis(37)),
            sample_grid(&mut b, 100, SimDuration::from_millis(37)),
        );
    }

    #[test]
    fn ou_same_time_same_value() {
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(5));
        let t = SimTime::from_secs(1);
        let v1 = ou.value_at(t);
        let v2 = ou.value_at(t);
        assert_eq!(
            v1, v2,
            "re-sampling the same instant must not advance state"
        );
    }

    #[test]
    fn markov_visits_both_states() {
        let mut m = MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(2));
        let samples = sample_grid(&mut m, 10_000, SimDuration::from_millis(50));
        let good = samples.iter().filter(|&&v| v == 1.0).count();
        let bad = samples.iter().filter(|&&v| v == 0.3).count();
        assert_eq!(good + bad, samples.len());
        assert!(good > 0 && bad > 0);
        // Expected good fraction = 5 / (5 + 2) ≈ 0.71.
        let frac = good as f64 / samples.len() as f64;
        assert!((0.55..0.85).contains(&frac), "good fraction {frac}");
    }

    #[test]
    fn bursts_mostly_one_with_outliers() {
        let mut b = Bursts::new(10.0, 0.5, 1.5, 8.0, 8.0, 0.5, Prng::new(3));
        let samples = sample_grid(&mut b, 20_000, SimDuration::from_millis(100));
        let neutral = samples.iter().filter(|&&v| v == 1.0).count();
        let frac = neutral as f64 / samples.len() as f64;
        assert!(frac > 0.8, "neutral fraction {frac}");
        assert!(samples.iter().any(|&v| v > 1.0), "some up bursts");
        assert!(samples.iter().any(|&v| v < 1.0), "some dips");
        for &v in &samples {
            assert!((1.0 / 8.0..=8.0).contains(&v), "bounded by cap: {v}");
        }
    }

    #[test]
    fn sinusoid_oscillates() {
        let mut s = Sinusoid {
            amplitude: 0.2,
            period_secs: 10.0,
            phase: 0.0,
        };
        let v_quarter = s.value_at(SimTime::from_secs_f64(2.5));
        assert!((v_quarter - 1.2).abs() < 1e-9);
        let v_three_quarter = s.value_at(SimTime::from_secs_f64(7.5));
        assert!((v_three_quarter - 0.8).abs() < 1e-9);
    }

    #[test]
    fn modulated_clamps() {
        let mut m = Modulated::new(Constant(100.0), 0.0, 50.0);
        assert_eq!(m.value_at(SimTime::from_secs(1)), 50.0);
        let mut m2 = Modulated::new(Constant(10.0), 0.0, 50.0)
            .with(Constant(0.5))
            .with(Constant(3.0));
        assert!((m2.value_at(SimTime::from_secs(1)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn stability_horizons() {
        // Constant: stable forever.
        assert_eq!(
            Constant(5.0).stable_until(SimTime::ZERO),
            Some(SimTime::MAX)
        );
        // OU: never stable (draws per sample).
        let mut ou = Ou::new(10.0, 2.0, 1.0, Prng::new(1));
        let t = SimTime::from_secs(1);
        ou.value_at(t);
        assert_eq!(ou.stable_until(t), None);
        // Sinusoid: deterministic but time-varying → no horizon.
        let mut s = Sinusoid {
            amplitude: 0.2,
            period_secs: 10.0,
            phase: 0.0,
        };
        s.value_at(t);
        assert_eq!(s.stable_until(t), None);
        // Markov: stable until the next switch, and the value really does
        // hold (with no stream perturbation) across the whole horizon.
        let mut m = MarkovModulator::new(1.0, 0.3, 5.0, 2.0, Prng::new(2));
        let v = m.value_at(t);
        let h = m.stable_until(t).expect("markov advertises a horizon");
        assert!(h > t);
        let probe = h - crate::time::SimDuration::from_micros(1);
        assert_eq!(m.value_at(probe), v, "value holds inside the horizon");
        // Modulated: min over components; any unstable component wins.
        let mut combo = Modulated::new(Constant(10.0), 0.0, 100.0).with(MarkovModulator::new(
            1.0,
            0.3,
            5.0,
            2.0,
            Prng::new(3),
        ));
        combo.value_at(t);
        let h = combo.stable_until(t).expect("all components stable");
        assert!(h > t && h < SimTime::MAX);
        let mut combo2 = Modulated::new(Ou::new(10.0, 2.0, 1.0, Prng::new(4)), 0.0, 100.0);
        combo2.value_at(t);
        assert_eq!(combo2.stable_until(t), None);
    }

    #[test]
    fn bursts_stability_matches_event_windows() {
        let mut b = Bursts::new(10.0, 0.5, 1.5, 8.0, 8.0, 0.5, Prng::new(3));
        let mut t = SimTime::ZERO;
        let step = SimDuration::from_millis(100);
        for _ in 0..5_000 {
            t += step;
            let v = b.value_at(t);
            let h = b.stable_until(t).expect("bursts always give a horizon");
            assert!(h > t, "horizon {h:?} must lie ahead of {t:?}");
            // Re-sampling strictly inside the horizon returns the same
            // value and cannot perturb the later stream (checked
            // indirectly: same draws happen at the same event boundaries
            // whether or not intermediate samples occurred).
            let inside = (t + step).min(h - SimDuration::from_micros(1));
            if inside > t {
                assert_eq!(b.value_at(inside), v, "value drifted inside horizon");
            }
        }
    }
}
