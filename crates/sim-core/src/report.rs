//! Plain-text experiment reporting: aligned tables, ASCII boxplots and bar
//! charts (the figures), and CSV export for external plotting.

use crate::stats::BoxStats;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple aligned text table.
///
/// ```
/// use msim_core::report::Table;
/// let mut t = Table::new(&["scheduler", "median (s)"]);
/// t.row(&["Harmonic", "6.9"]);
/// t.row(&["Ratio", "10.9"]);
/// let s = t.render();
/// assert!(s.contains("Harmonic"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have as many cells as there are headers.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with padded columns and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let sep = if i + 1 == ncols { "\n" } else { "  " };
            let _ = write!(out, "{:<width$}{}", h, sep, width = widths[i]);
        }
        for (i, w) in widths.iter().enumerate() {
            let sep = if i + 1 == ncols { "\n" } else { "  " };
            let _ = write!(out, "{}{}", "-".repeat(*w), sep);
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        }
        out
    }

    /// Serialises the table as CSV (headers + rows, comma-separated, quoting
    /// cells that contain commas or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header_line: Vec<String> = self.headers.iter().map(|h| esc(h)).collect();
        let _ = writeln!(out, "{}", header_line.join(","));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Renders a labelled horizontal ASCII boxplot panel, like the paper's
/// Figs. 2–5. All rows share a common linear axis from `lo` to `hi`.
pub struct BoxPanel {
    title: String,
    axis_label: String,
    rows: Vec<(String, BoxStats)>,
    width: usize,
}

impl BoxPanel {
    /// Creates an empty panel. `width` is the plot width in characters.
    pub fn new(title: &str, axis_label: &str, width: usize) -> Self {
        BoxPanel {
            title: title.to_string(),
            axis_label: axis_label.to_string(),
            rows: Vec::new(),
            width: width.max(20),
        }
    }

    /// Adds one labelled box.
    pub fn add(&mut self, label: &str, stats: BoxStats) {
        self.rows.push((label.to_string(), stats));
    }

    /// Renders the panel. Each row shows whiskers (`|---`), the IQR box
    /// (`[===]`) and the median (`M`).
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let lo = self
            .rows
            .iter()
            .map(|(_, b)| b.whisker_lo)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .rows
            .iter()
            .map(|(_, b)| b.whisker_hi)
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let scale =
            |x: f64| -> usize { (((x - lo) / span) * (self.width - 1) as f64).round() as usize };

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (label, b) in &self.rows {
            let mut lane = vec![b' '; self.width];
            let wl = scale(b.whisker_lo);
            let wh = scale(b.whisker_hi);
            let q1 = scale(b.q1);
            let q3 = scale(b.q3);
            let med = scale(b.median);
            for c in lane.iter_mut().take(wh + 1).skip(wl) {
                *c = b'-';
            }
            lane[wl] = b'|';
            lane[wh] = b'|';
            for c in lane.iter_mut().take(q3 + 1).skip(q1) {
                *c = b'=';
            }
            lane[q1] = b'[';
            lane[q3] = b']';
            lane[med] = b'M';
            let _ = writeln!(
                out,
                "{:<label_w$}  {}",
                label,
                String::from_utf8(lane).expect("ascii lane"),
            );
        }
        let lo_str = format!("{lo:.1}");
        let hi_str = format!("{hi:.1}");
        let pad = self.width.saturating_sub(lo_str.len() + hi_str.len());
        let _ = writeln!(
            out,
            "{:<label_w$}  {}{}{}",
            "",
            lo_str,
            " ".repeat(pad),
            hi_str,
        );
        let _ = writeln!(
            out,
            "{:<label_w$}  {}",
            "",
            center(&self.axis_label, self.width)
        );
        out
    }
}

fn center(s: &str, width: usize) -> String {
    if s.len() >= width {
        return s.to_string();
    }
    let pad = (width - s.len()) / 2;
    format!("{}{}", " ".repeat(pad), s)
}

/// Renders a labelled horizontal bar chart (for single-value comparisons).
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
    width: usize,
    unit: String,
}

impl BarChart {
    /// Creates an empty chart of the given plot width.
    pub fn new(title: &str, unit: &str, width: usize) -> Self {
        BarChart {
            title: title.to_string(),
            rows: Vec::new(),
            width: width.max(10),
            unit: unit.to_string(),
        }
    }

    /// Adds one labelled bar.
    pub fn add(&mut self, label: &str, value: f64) {
        self.rows.push((label.to_string(), value));
    }

    /// Renders; bars scale linearly from zero to the max value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let max = self
            .rows
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0, f64::max)
            .max(1e-12);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, v) in &self.rows {
            let n = ((v / max) * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:<label_w$}  {:<width$}  {:.2} {}",
                label,
                "#".repeat(n),
                v,
                self.unit,
                width = self.width,
            );
        }
        out
    }
}

/// Standard output directory for regenerated figure data
/// (`<workspace>/target/figures`), creating it on first use.
///
/// Bench targets run with their *package* directory as CWD, so the helper
/// walks up to the workspace root (the nearest ancestor with a `target/`
/// build directory) before falling back to a local `target/figures`.
/// `MSP_FIGURES_DIR` overrides everything.
pub fn figures_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("MSP_FIGURES_DIR") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        return dir;
    }
    let mut base = std::env::current_dir().unwrap_or_else(|_| ".".into());
    for _ in 0..4 {
        if base.join("target").is_dir() && base.join("Cargo.toml").is_file() {
            break;
        }
        if let Some(parent) = base.parent() {
            base = parent.to_path_buf();
        } else {
            break;
        }
    }
    let dir = base.join("target").join("figures");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a       "));
        assert!(lines[1].starts_with("------  "));
        assert!(lines[2].starts_with("xxxxxx  1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn boxplot_renders_all_glyphs() {
        use crate::stats::BoxStats;
        let sample: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        let mut p = BoxPanel::new("demo", "seconds", 40);
        p.add("row-a", BoxStats::from_sample(&sample));
        let s = p.render();
        assert!(s.contains('M'));
        assert!(s.contains('['));
        assert!(s.contains(']'));
        assert!(s.contains('|'));
        assert!(s.contains("seconds"));
    }

    #[test]
    fn barchart_scales_to_max() {
        let mut c = BarChart::new("demo", "s", 20);
        c.add("full", 10.0);
        c.add("half", 5.0);
        let s = c.render();
        let full_line = s.lines().find(|l| l.starts_with("full")).unwrap();
        let half_line = s.lines().find(|l| l.starts_with("half")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(full_line), 20);
        assert_eq!(count(half_line), 10);
    }

    #[test]
    fn empty_panels_do_not_panic() {
        assert!(BoxPanel::new("t", "x", 30).render().contains("no data"));
        assert!(BarChart::new("t", "x", 30).render().contains("no data"));
    }
}
