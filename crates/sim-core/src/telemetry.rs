//! Deterministic, zero-dependency observability: a static metrics
//! registry, lightweight phase spans, and an NDJSON trace exporter.
//!
//! # Design contract
//!
//! Instrumentation must be **provably non-perturbing**: nothing in this
//! module touches RNG streams, simulated time, or [`SessionMetrics`]-style
//! results. Counters, gauges, and histograms are plain atomics; spans
//! measure *wall* time (never simulated time) and only when enabled; the
//! trace sink records simulated timestamps that the caller already
//! computed. Replaying the frozen `tests/sampling_corpus/` fingerprints
//! with telemetry fully enabled is pinned bit-identical to the disabled
//! run.
//!
//! # Cost model
//!
//! * Compiled out: building `msim-core` without the default `telemetry`
//!   feature turns every entry point into an empty `#[inline]` body
//!   (`COMPILED` is `false`, so each one constant-folds to nothing).
//! * Compiled in, runtime-disabled (the default): one relaxed atomic load
//!   and a predictable branch per call site. Spans do **not** call
//!   [`Instant::now`] when disabled.
//! * Enabled: counters are relaxed `fetch_add`s on interned `&'static`
//!   atomics; the interning table is locked only on the first use of a
//!   name (and on snapshot/render, which are cold paths).
//!
//! # Naming
//!
//! Metric keys follow Prometheus conventions: `[a-zA-Z_:][a-zA-Z0-9_:]*`
//! names (sanitized on registration), optional `{label="value"}` pairs
//! with `\\`, `\"`, and `\n` escaped in values. [`render_prometheus`]
//! emits the text exposition format; [`parse_exposition_line`] is the
//! matching minimal parser used by tests and fuzzing.
//!
//! [`SessionMetrics`]: crate::report
//! [`Instant::now`]: std::time::Instant::now

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether instrumentation is compiled in at all (the `telemetry` cargo
/// feature, on by default). With the feature off every entry point
/// constant-folds to an empty body.
pub const COMPILED: bool = cfg!(feature = "telemetry");

/// Number of log-spaced histogram buckets. Bucket `i` counts samples with
/// `value < 2^i` (the last bucket is the `+Inf` overflow). Fixed so bucket
/// edges are deterministic across platforms and runs.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Hard cap on buffered trace events; further events are counted in
/// `msp_trace_dropped_total` instead of growing memory without bound.
const TRACE_CAP: usize = 1 << 22;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ON: AtomicBool = AtomicBool::new(false);
static TRACE_DROPPED: AtomicU64 = AtomicU64::new(0);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Turns metric collection on or off at runtime (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when metric collection is compiled in and runtime-enabled.
#[inline]
pub fn enabled() -> bool {
    COMPILED && ENABLED.load(Ordering::Relaxed)
}

/// Turns the trace sink on or off at runtime (process-wide). Enabling
/// tracing does not require metrics to be enabled, and vice versa.
pub fn set_trace_enabled(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// True when the trace sink is compiled in and runtime-enabled.
#[inline]
pub fn trace_enabled() -> bool {
    COMPILED && TRACE_ON.load(Ordering::Relaxed)
}

/// A monotonic counter. Obtain interned `&'static` handles via
/// [`counter`] / [`counter_with`]; one-off sites can use [`count`].
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` when telemetry is enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.add_raw(n);
        }
    }

    /// Adds `n` unconditionally (used when merging already-collected
    /// deltas, e.g. worker heartbeats into a coordinator registry).
    #[inline]
    pub fn add_raw(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. live shard counts).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge when telemetry is enabled; no-op otherwise.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed log-bucket histogram: bucket `i` counts samples `< 2^i`, with
/// deterministic edges (see [`HISTOGRAM_BUCKETS`]).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Bucket index for `v`: the smallest `i` with `v < 2^i`, clamped to
    /// the overflow bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        let bits = (64 - v.leading_zeros()) as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample when telemetry is enabled; no-op otherwise.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Wall-time accumulator for one named phase (see [`span`]).
#[derive(Debug)]
pub struct PhaseStat {
    nanos: AtomicU64,
    calls: AtomicU64,
}

impl PhaseStat {
    /// Total wall nanoseconds attributed to this phase.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Number of spans that closed on this phase.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

#[derive(Default)]
struct RegistryInner {
    metrics: BTreeMap<String, Metric>,
    phases: BTreeMap<&'static str, &'static PhaseStat>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, RegistryInner> {
    // A poisoned registry only means some thread panicked mid-update of
    // the *interning table*; the atomics themselves are always valid.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Sanitizes `name` into a legal Prometheus metric name: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit (or empty
/// name) is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value for the text exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Canonical registry key for `name` with `labels`: the sanitized name,
/// plus `{k="v",...}` with label keys sanitized, sorted, and values
/// escaped. An empty label set yields just the name.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut key = sanitize_metric_name(name);
    if labels.is_empty() {
        return key;
    }
    let mut sorted: Vec<(String, &str)> = labels
        .iter()
        .map(|(k, v)| (sanitize_metric_name(k), *v))
        .collect();
    sorted.sort();
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{}\"", escape_label_value(v));
    }
    key.push('}');
    key
}

fn intern_counter(key: String) -> &'static Counter {
    let mut reg = lock_registry();
    match reg.metrics.get(&key) {
        Some(Metric::Counter(c)) => c,
        Some(_) => panic!("metric {key:?} already registered with a different type"),
        None => {
            let c: &'static Counter = Box::leak(Box::new(Counter {
                value: AtomicU64::new(0),
            }));
            reg.metrics.insert(key, Metric::Counter(c));
            c
        }
    }
}

/// Interns (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> &'static Counter {
    intern_counter(sanitize_metric_name(name))
}

/// Interns the counter `name{labels...}` (labels canonicalized by
/// [`metric_key`]).
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> &'static Counter {
    intern_counter(metric_key(name, labels))
}

/// The session-level counters every simulation run can emit. Interning
/// them up front (standard exposition practice: a counter exists from
/// process start, not from its first increment) means a live `/metrics`
/// scrape always exposes the full core schema — a zero
/// `msp_transfer_fast_rounds_total` is a statement that no stable-link
/// epoch ran, where an absent series says nothing.
pub const CORE_COUNTERS: &[&str] = &[
    "msp_sessions_total",
    "msp_event_pushes_total",
    "msp_event_pops_total",
    "msp_event_cancels_total",
    "msp_transfer_epochs_total",
    "msp_transfer_fast_rounds_total",
    "msp_transfer_solved_rounds_total",
    "msp_stalls_total",
    "msp_chunk_errors_total",
    "msp_failovers_total",
    "msp_abr_decisions_total",
    "msp_abr_switches_total",
    "msp_grants_issued_total",
];

/// Interns every [`CORE_COUNTERS`] entry at zero. Call once when turning
/// a live metrics endpoint on; harmless (idempotent) any other time.
pub fn register_core_counters() {
    if !COMPILED {
        return;
    }
    for name in CORE_COUNTERS {
        counter(name);
    }
}

/// Interns (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let key = sanitize_metric_name(name);
    let mut reg = lock_registry();
    match reg.metrics.get(&key) {
        Some(Metric::Gauge(g)) => g,
        Some(_) => panic!("metric {key:?} already registered with a different type"),
        None => {
            let g: &'static Gauge = Box::leak(Box::new(Gauge {
                value: AtomicI64::new(0),
            }));
            reg.metrics.insert(key, Metric::Gauge(g));
            g
        }
    }
}

/// Interns (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let key = sanitize_metric_name(name);
    let mut reg = lock_registry();
    match reg.metrics.get(&key) {
        Some(Metric::Histogram(h)) => h,
        Some(_) => panic!("metric {key:?} already registered with a different type"),
        None => {
            let h: &'static Histogram = Box::leak(Box::new(Histogram {
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }));
            reg.metrics.insert(key, Metric::Histogram(h));
            h
        }
    }
}

/// Adds `n` to the counter named `name`. Returns without touching the
/// interning table when telemetry is disabled — the recommended form for
/// call sites that do not hold a [`Counter`] handle.
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled() {
        counter(name).add_raw(n);
    }
}

/// Adds `n` to the counter `name{labels...}` when telemetry is enabled.
#[inline]
pub fn count_with(name: &str, labels: &[(&str, &str)], n: u64) {
    if enabled() {
        counter_with(name, labels).add_raw(n);
    }
}

/// Records `v` into the histogram named `name` when telemetry is enabled.
#[inline]
pub fn observe(name: &str, v: u64) {
    if enabled() {
        // `histogram` interns under the enabled check; `observe` re-checks
        // but that is one relaxed load.
        histogram(name).observe(v);
    }
}

/// An open wall-time span; attributes its elapsed time to a phase on
/// drop. Created by [`span`].
#[must_use = "a span measures the scope it is alive in"]
#[derive(Debug)]
pub struct Span {
    live: Option<(&'static PhaseStat, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stat, start)) = self.live.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stat.nanos.fetch_add(nanos, Ordering::Relaxed);
            stat.calls.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Opens a span on phase `name`. When telemetry is disabled this returns
/// an inert guard without reading the clock (one relaxed load + branch).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    Span {
        live: Some((phase_stat(name), Instant::now())),
    }
}

/// Interns (registering on first use) the phase accumulator for `name`.
pub fn phase_stat(name: &'static str) -> &'static PhaseStat {
    let mut reg = lock_registry();
    if let Some(stat) = reg.phases.get(name) {
        return stat;
    }
    let stat: &'static PhaseStat = Box::leak(Box::new(PhaseStat {
        nanos: AtomicU64::new(0),
        calls: AtomicU64::new(0),
    }));
    reg.phases.insert(name, stat);
    stat
}

/// One row of [`phase_values`]: accumulated wall time for a phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Phase name as passed to [`span`].
    pub name: String,
    /// Total wall nanoseconds.
    pub nanos: u64,
    /// Number of closed spans.
    pub calls: u64,
}

/// Snapshot of every phase accumulator, sorted by name.
pub fn phase_values() -> Vec<PhaseSnapshot> {
    let reg = lock_registry();
    reg.phases
        .iter()
        .map(|(name, stat)| PhaseSnapshot {
            name: (*name).to_string(),
            nanos: stat.nanos(),
            calls: stat.calls(),
        })
        .collect()
}

/// Snapshot of every counter (key → value), sorted by key. Keys include
/// canonical label sets. Used for heartbeat deltas and summaries.
pub fn counter_values() -> BTreeMap<String, u64> {
    let reg = lock_registry();
    reg.metrics
        .iter()
        .filter_map(|(k, m)| match m {
            Metric::Counter(c) => Some((k.clone(), c.get())),
            _ => None,
        })
        .collect()
}

/// Counters that advanced since `prev` (a previous [`counter_values`]
/// snapshot), as `(key, delta)` pairs sorted by key.
pub fn counter_deltas(prev: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    counter_values()
        .into_iter()
        .filter_map(|(k, v)| {
            let base = prev.get(&k).copied().unwrap_or(0);
            (v > base).then(|| (k, v - base))
        })
        .collect()
}

/// Merges externally collected counter deltas (e.g. from a worker
/// heartbeat) into this process's registry. Keys are trusted to be
/// canonical [`metric_key`] output; unknown keys are registered.
/// Applies even when runtime collection is disabled, so a coordinator
/// can aggregate worker traffic without turning on local instrumentation.
pub fn apply_counter_deltas(deltas: &[(String, u64)]) {
    if !COMPILED {
        return;
    }
    for (key, delta) in deltas {
        intern_counter(key.clone()).add_raw(*delta);
    }
}

/// Zeroes every registered counter, gauge, histogram, and phase, clears
/// the trace buffer, and resets the trace sequence. Registrations (the
/// interned handles) survive. Intended for tests and for binaries that
/// run several independent measurement passes.
pub fn reset() {
    let reg = lock_registry();
    for m in reg.metrics.values() {
        match m {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => h.zero(),
        }
    }
    for stat in reg.phases.values() {
        stat.nanos.store(0, Ordering::Relaxed);
        stat.calls.store(0, Ordering::Relaxed);
    }
    drop(reg);
    TRACE_DROPPED.store(0, Ordering::Relaxed);
    TRACE_SEQ.store(0, Ordering::Relaxed);
    let mut buf = trace_buf().lock().unwrap_or_else(|e| e.into_inner());
    buf.clear();
}

fn base_name(key: &str) -> &str {
    key.split_once('{').map_or(key, |(n, _)| n)
}

/// Renders every registered metric (and phase accumulator) in the
/// Prometheus text exposition format, sorted by key. Phases appear as
/// `msp_phase_nanos_total{phase="..."}` / `msp_phase_calls_total{...}`.
pub fn render_prometheus() -> String {
    let reg = lock_registry();
    let mut out = String::new();
    let mut last_type_for: Option<String> = None;
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        if last_type_for.as_deref() != Some(base) {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            last_type_for = Some(base.to_string());
        }
    };
    for (key, m) in &reg.metrics {
        let base = base_name(key);
        match m {
            Metric::Counter(c) => {
                type_line(&mut out, base, "counter");
                let _ = writeln!(out, "{key} {}", c.get());
            }
            Metric::Gauge(g) => {
                type_line(&mut out, base, "gauge");
                let _ = writeln!(out, "{key} {}", g.get());
            }
            Metric::Histogram(h) => {
                type_line(&mut out, base, "histogram");
                let counts = h.bucket_counts();
                let mut cumulative = 0u64;
                for (i, n) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                    cumulative += n;
                    let _ = writeln!(out, "{key}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
                }
                let _ = writeln!(out, "{key}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{key}_sum {}", h.sum());
                let _ = writeln!(out, "{key}_count {}", h.count());
            }
        }
    }
    if !reg.phases.is_empty() {
        let _ = writeln!(out, "# TYPE msp_phase_nanos_total counter");
        for (name, stat) in &reg.phases {
            let phase = escape_label_value(name);
            let _ = writeln!(
                out,
                "msp_phase_nanos_total{{phase=\"{phase}\"}} {}",
                stat.nanos()
            );
        }
        let _ = writeln!(out, "# TYPE msp_phase_calls_total counter");
        for (name, stat) in &reg.phases {
            let phase = escape_label_value(name);
            let _ = writeln!(
                out,
                "msp_phase_calls_total{{phase=\"{phase}\"}} {}",
                stat.calls()
            );
        }
    }
    out
}

/// One parsed sample line of the text exposition format.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpositionLine {
    /// Metric name (without labels).
    pub name: String,
    /// Label pairs with values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Minimal parser for one line of the text exposition format: comments
/// and blank lines yield `Ok(None)`; malformed lines yield `Err`.
pub fn parse_exposition_line(line: &str) -> Result<Option<ExpositionLine>, String> {
    let line = line.trim_end_matches('\r');
    if line.trim().is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let name_ok = |c: u8, first: bool| {
        c.is_ascii_alphabetic() || c == b'_' || c == b':' || (!first && c.is_ascii_digit())
    };
    while i < bytes.len() && name_ok(bytes[i], i == 0) {
        i += 1;
    }
    if i == 0 {
        return Err(format!("invalid metric name start in {line:?}"));
    }
    let name = line[..i].to_string();
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label set".into());
            }
            if bytes[i] == b'}' {
                i += 1;
                break;
            }
            let k0 = i;
            while i < bytes.len() && name_ok(bytes[i], i == k0) {
                i += 1;
            }
            if i == k0 || i >= bytes.len() || bytes[i] != b'=' {
                return Err(format!("bad label key at byte {i} in {line:?}"));
            }
            let key = line[k0..i].to_string();
            i += 1; // '='
            if i >= bytes.len() || bytes[i] != b'"' {
                return Err("label value must be quoted".into());
            }
            i += 1;
            let mut value = String::new();
            loop {
                if i >= bytes.len() {
                    return Err("unterminated label value".into());
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        match bytes.get(i) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        i += 1;
                    }
                    _ => {
                        // Take the whole UTF-8 scalar, not a raw byte.
                        let rest = &line[i..];
                        let c = rest.chars().next().expect("in-bounds char");
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            if i < bytes.len() && bytes[i] == b',' {
                i += 1;
            }
        }
    }
    let rest = line[i..].trim();
    if rest.is_empty() {
        return Err("missing sample value".into());
    }
    // The value may be followed by an optional timestamp; take the first
    // whitespace-separated token.
    let value_tok = rest.split_ascii_whitespace().next().expect("non-empty");
    let value: f64 = value_tok
        .parse()
        .map_err(|e| format!("bad sample value {value_tok:?}: {e}"))?;
    Ok(Some(ExpositionLine {
        name,
        labels,
        value,
    }))
}

// --- Trace sink --------------------------------------------------------

/// A trace field value (see [`trace`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with Rust's shortest-roundtrip formatting).
    F64(f64),
    /// String (JSON-escaped on export).
    Str(String),
}

/// One buffered trace event: a fully ordered record `(seq, t_us, kind,
/// fields)`. `seq` is a process-wide monotonic sequence number, so a
/// single-threaded session replay yields a totally ordered, deterministic
/// trace; `t_us` is the *simulated* instant in microseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Process-wide emission sequence number.
    pub seq: u64,
    /// Simulated time of the event, microseconds.
    pub t_us: u64,
    /// Event kind, e.g. `session.start` or `abr.decision`.
    pub kind: String,
    /// Additional fields in emission order.
    pub fields: Vec<(String, TraceVal)>,
}

fn trace_buf() -> &'static Mutex<Vec<TraceEvent>> {
    static BUF: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

/// Emits one trace event when tracing is enabled; no-op otherwise.
/// `t_us` is the simulated instant the event describes.
pub fn trace(kind: &str, t_us: u64, fields: &[(&str, TraceVal)]) {
    if !trace_enabled() {
        return;
    }
    let mut buf = trace_buf().lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() >= TRACE_CAP {
        TRACE_DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    buf.push(TraceEvent {
        seq,
        t_us,
        kind: kind.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    });
}

/// Drains and returns every buffered trace event (in emission order).
pub fn take_trace() -> Vec<TraceEvent> {
    let mut buf = trace_buf().lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *buf)
}

/// Number of currently buffered trace events.
pub fn trace_len() -> usize {
    trace_buf().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Number of trace events dropped at the [`TRACE_CAP`] since the last
/// [`reset`].
pub fn trace_dropped() -> u64 {
    TRACE_DROPPED.load(Ordering::Relaxed)
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one trace event as a single NDJSON line (no trailing newline).
pub fn trace_event_json(ev: &TraceEvent) -> String {
    let mut line = String::with_capacity(64);
    let _ = write!(
        line,
        "{{\"seq\":{},\"t_us\":{},\"kind\":\"",
        ev.seq, ev.t_us
    );
    json_escape_into(&mut line, &ev.kind);
    line.push('"');
    for (k, v) in &ev.fields {
        line.push_str(",\"");
        json_escape_into(&mut line, k);
        line.push_str("\":");
        match v {
            TraceVal::U64(n) => {
                let _ = write!(line, "{n}");
            }
            TraceVal::I64(n) => {
                let _ = write!(line, "{n}");
            }
            TraceVal::F64(x) if x.is_finite() => {
                let _ = write!(line, "{x}");
            }
            TraceVal::F64(_) => line.push_str("null"),
            TraceVal::Str(s) => {
                line.push('"');
                json_escape_into(&mut line, s);
                line.push('"');
            }
        }
    }
    line.push('}');
    line
}

/// Writes `events` as NDJSON (one JSON object per line) to `w`.
pub fn write_trace_ndjson<W: io::Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", trace_event_json(ev))?;
    }
    Ok(())
}

/// One-line human summary of the current registry state: counter total,
/// trace depth, and the top phase by wall time. Used by binaries for
/// their exit summaries.
pub fn summary_line() -> String {
    let counters = counter_values();
    let nonzero = counters.values().filter(|v| **v > 0).count();
    let events: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("msp_event_"))
        .map(|(_, v)| *v)
        .sum();
    let phases = phase_values();
    let top = phases.iter().max_by_key(|p| p.nanos);
    let mut line = format!(
        "telemetry: {nonzero} active counters, {} trace events",
        trace_len()
    );
    if events > 0 {
        let _ = write!(line, ", {events} queue ops");
    }
    if let Some(top) = top {
        if top.nanos > 0 {
            let _ = write!(
                line,
                ", hottest phase {} ({:.1} ms over {} spans)",
                top.name,
                top.nanos as f64 / 1e6,
                top.calls
            );
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the process-wide enable flags so the
    /// default multi-threaded test runner cannot interleave them.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn counters_register_and_accumulate() {
        let _guard = flag_lock();
        with_enabled(|| {
            let c = counter("msp_test_counter_total");
            let before = c.get();
            c.add(3);
            count("msp_test_counter_total", 2);
            assert_eq!(c.get(), before + 5);
        });
    }

    #[test]
    fn disabled_counters_do_not_move() {
        let _guard = flag_lock();
        set_enabled(false);
        let c = counter("msp_test_disabled_total");
        let before = c.get();
        c.add(10);
        count("msp_test_disabled_total", 7);
        assert_eq!(c.get(), before);
    }

    #[test]
    fn histogram_buckets_are_log_spaced() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn metric_key_sorts_and_escapes_labels() {
        let key = metric_key("msp x", &[("b", "two"), ("a", "say \"hi\"\n")]);
        assert_eq!(key, "msp_x{a=\"say \\\"hi\\\"\\n\",b=\"two\"}");
    }

    #[test]
    fn sanitize_covers_bad_starts() {
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("a-b.c"), "a_b_c");
    }

    #[test]
    fn exposition_roundtrip() {
        let _guard = flag_lock();
        with_enabled(|| {
            counter_with("msp_test_rt_total", &[("kind", "a\"b\\c\nd")]).add(4);
        });
        let text = render_prometheus();
        let mut found = false;
        for line in text.lines() {
            if let Some(parsed) = parse_exposition_line(line).expect("rendered output parses") {
                if parsed.name == "msp_test_rt_total" {
                    assert_eq!(parsed.labels, vec![("kind".into(), "a\"b\\c\nd".into())]);
                    assert!(parsed.value >= 4.0);
                    found = true;
                }
            }
        }
        assert!(found, "rendered metric not found in:\n{text}");
    }

    #[test]
    fn exposition_parser_rejects_garbage() {
        assert!(parse_exposition_line("{oops} 1").is_err());
        assert!(parse_exposition_line("name{k=}").is_err());
        assert!(parse_exposition_line("name{k=\"v\"}").is_err());
        assert!(parse_exposition_line("name").is_err());
        assert_eq!(parse_exposition_line("# HELP x y").unwrap(), None);
        assert_eq!(parse_exposition_line("").unwrap(), None);
    }

    #[test]
    fn spans_accumulate_only_when_enabled() {
        let _guard = flag_lock();
        set_enabled(false);
        {
            let _s = span("test.idle");
        }
        assert_eq!(phase_stat("test.idle").calls(), 0);
        with_enabled(|| {
            {
                let _s = span("test.busy");
            }
            assert_eq!(phase_stat("test.busy").calls(), 1);
        });
    }

    #[test]
    fn trace_sink_orders_and_exports() {
        let _guard = flag_lock();
        set_trace_enabled(true);
        trace(
            "test.event",
            42,
            &[
                ("path", TraceVal::U64(1)),
                ("note", TraceVal::Str("a\"b".into())),
            ],
        );
        set_trace_enabled(false);
        let events: Vec<TraceEvent> = take_trace()
            .into_iter()
            .filter(|e| e.kind == "test.event")
            .collect();
        assert_eq!(events.len(), 1);
        let line = trace_event_json(&events[0]);
        assert!(line.contains("\"t_us\":42"), "{line}");
        assert!(line.contains("\"path\":1"), "{line}");
        assert!(line.contains("\"note\":\"a\\\"b\""), "{line}");
        let mut out = Vec::new();
        write_trace_ndjson(&events, &mut out).unwrap();
        assert_eq!(out.iter().filter(|b| **b == b'\n').count(), 1);
    }

    #[test]
    fn deltas_and_merge() {
        let _guard = flag_lock();
        with_enabled(|| {
            let before = counter_values();
            counter("msp_test_delta_total").add(5);
            let deltas = counter_deltas(&before);
            let mine: Vec<_> = deltas
                .iter()
                .filter(|(k, _)| k == "msp_test_delta_total")
                .collect();
            assert_eq!(mine.len(), 1);
            assert_eq!(mine[0].1, 5);
        });
        // Merging applies even while runtime-disabled (coordinator case).
        let before = counter("msp_test_merge_total").get();
        apply_counter_deltas(&[("msp_test_merge_total".into(), 7)]);
        assert_eq!(counter("msp_test_merge_total").get(), before + 7);
    }
}
