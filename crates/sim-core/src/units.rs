//! Byte-count and bit-rate units.
//!
//! The paper (and the YouTube ecosystem it studies) uses binary kilo/mega
//! bytes for chunk sizes — "64 KB", "256 KB", "1 MB" — and decimal megabits
//! per second for link rates. These newtypes keep the two families apart and
//! render them exactly as the paper prints them.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte count. `KB`/`MB` here are binary (1024-based), matching the chunk
/// sizes quoted in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

/// One binary kilobyte.
pub const KB: u64 = 1024;
/// One binary megabyte.
pub const MB: u64 = 1024 * 1024;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From a raw byte count.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// From binary kilobytes.
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * KB)
    }

    /// From binary megabytes.
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * MB)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as f64 (for rate arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= MB && b.is_multiple_of(MB) {
            write!(f, "{} MB", b / MB)
        } else if b >= KB && b.is_multiple_of(KB) {
            write!(f, "{} KB", b / KB)
        } else if b >= MB {
            write!(f, "{:.2} MB", b as f64 / MB as f64)
        } else if b >= KB {
            write!(f, "{:.1} KB", b as f64 / KB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A data rate in bits per second (decimal: 1 Mbit/s = 10⁶ bit/s).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitRate(f64);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0.0);

    /// The largest finite rate. Used as a saturation value where a
    /// measurement degenerates (e.g. a zero-duration transfer) so that
    /// downstream estimator/metrics arithmetic never sees `inf`/NaN.
    pub const MAX: BitRate = BitRate(f64::MAX);

    /// From bits per second.
    pub fn bps(v: f64) -> Self {
        BitRate(v.max(0.0))
    }

    /// Const constructor from bits per second. The caller must pass a
    /// non-negative value (no clamping happens in const context).
    pub const fn bps_const(v: f64) -> Self {
        BitRate(v)
    }

    /// From kilobits per second.
    pub fn kbps(v: f64) -> Self {
        Self::bps(v * 1e3)
    }

    /// From megabits per second.
    pub fn mbps(v: f64) -> Self {
        Self::bps(v * 1e6)
    }

    /// Bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Bytes delivered over `d` at this rate (rounded down).
    pub fn bytes_over(self, d: SimDuration) -> ByteSize {
        ByteSize::bytes((self.bytes_per_sec() * d.as_secs_f64()).floor() as u64)
    }

    /// Time to move `size` at this rate; `SimDuration::MAX` at zero rate.
    pub fn time_for(self, size: ByteSize) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(size.as_f64() / self.bytes_per_sec())
    }

    /// The rate that moves `size` in `d`. A zero-duration transfer
    /// saturates to the finite [`BitRate::MAX`] instead of `inf`, so the
    /// result is always safe to feed into estimator and metrics
    /// arithmetic (an `inf` goodput would propagate NaN through EWMA /
    /// harmonic-mean updates).
    pub fn from_transfer(size: ByteSize, d: SimDuration) -> BitRate {
        if d.is_zero() {
            return BitRate::MAX;
        }
        BitRate(size.as_f64() * 8.0 / d.as_secs_f64())
    }
}

impl fmt::Debug for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1e6 {
            write!(f, "{:.2} Mbit/s", bps / 1e6)
        } else if bps >= 1e3 {
            write!(f, "{:.1} kbit/s", bps / 1e3)
        } else {
            write!(f, "{bps:.0} bit/s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::kb(64).as_u64(), 65_536);
        assert_eq!(ByteSize::mb(1).as_u64(), 1_048_576);
        assert_eq!(ByteSize::bytes(10).as_u64(), 10);
    }

    #[test]
    fn byte_size_display_matches_paper() {
        assert_eq!(ByteSize::kb(64).to_string(), "64 KB");
        assert_eq!(ByteSize::kb(256).to_string(), "256 KB");
        assert_eq!(ByteSize::mb(1).to_string(), "1 MB");
        assert_eq!(ByteSize::bytes(512).to_string(), "512 B");
        assert_eq!(ByteSize::bytes(1536).to_string(), "1.5 KB");
    }

    #[test]
    fn byte_size_arithmetic() {
        let a = ByteSize::kb(100);
        let b = ByteSize::kb(40);
        assert_eq!(a + b, ByteSize::kb(140));
        assert_eq!(a - b, ByteSize::kb(60));
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn bitrate_conversions() {
        let r = BitRate::mbps(8.0);
        assert_eq!(r.bytes_per_sec(), 1e6);
        assert_eq!(r.as_mbps(), 8.0);
        assert_eq!(BitRate::kbps(500.0).as_bps(), 5e5);
    }

    #[test]
    fn transfer_time_roundtrip() {
        let r = BitRate::mbps(8.0); // 1 MB/s decimal
        let size = ByteSize::bytes(2_000_000);
        let t = r.time_for(size);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        let back = BitRate::from_transfer(size, t);
        assert!((back.as_mbps() - 8.0).abs() < 1e-3);
    }

    #[test]
    fn zero_rate_takes_forever() {
        assert_eq!(BitRate::ZERO.time_for(ByteSize::kb(1)), SimDuration::MAX);
    }

    #[test]
    fn zero_duration_transfer_saturates_finite() {
        // Regression: this used to return `BitRate(inf)`, which poisoned
        // any downstream arithmetic (EWMA updates, harmonic means) with
        // inf/NaN.
        let r = BitRate::from_transfer(ByteSize::mb(1), SimDuration::ZERO);
        assert!(r.as_bps().is_finite(), "zero-duration rate must be finite");
        assert_eq!(r, BitRate::MAX);
        // And it behaves like a number: products/ratios stay non-NaN.
        assert!((r.as_bps() * 0.9).is_finite());
        assert!(!(1.0 / r.as_bps()).is_nan());
        // Normal transfers are untouched.
        let ok = BitRate::from_transfer(ByteSize::mb(1), SimDuration::from_secs(1));
        assert!((ok.as_mbps() - 8.388_608).abs() < 1e-9);
    }

    #[test]
    fn bytes_over_duration() {
        let r = BitRate::mbps(8.0);
        assert_eq!(
            r.bytes_over(SimDuration::from_millis(500)).as_u64(),
            500_000
        );
    }

    #[test]
    fn negative_rate_clamps_to_zero() {
        assert_eq!(BitRate::bps(-5.0).as_bps(), 0.0);
    }

    #[test]
    fn bitrate_display() {
        assert_eq!(BitRate::mbps(2.5).to_string(), "2.50 Mbit/s");
        assert_eq!(BitRate::kbps(128.0).to_string(), "128.0 kbit/s");
        assert_eq!(BitRate::bps(100.0).to_string(), "100 bit/s");
    }
}
