//! # msim-core — deterministic discrete-event simulation substrate
//!
//! Foundation crate for the MSPlayer (CoNEXT 2014) reproduction. It provides
//! the pieces every other crate builds on:
//!
//! * [`time`] — integer-microsecond simulated clock ([`SimTime`],
//!   [`SimDuration`]);
//! * [`event`] — a deterministic FIFO-tie-broken event queue;
//! * [`rng`] — a splittable PCG PRNG so every stochastic component owns an
//!   independent, reproducible stream;
//! * [`process`] — stochastic processes (Ornstein–Uhlenbeck, Markov
//!   modulation, Pareto bursts) used to model time-varying link bandwidth;
//! * [`stats`] — medians, boxplot summaries, `mean ± std`, harmonic mean;
//! * [`units`] — byte sizes (`64 KB`, `1 MB`, …) and bit rates;
//! * [`report`] — aligned tables, ASCII boxplots/bar charts, CSV export for
//!   regenerating the paper's figures;
//! * [`telemetry`] — a deterministic, zero-dependency observability layer
//!   (metrics registry, phase spans, NDJSON trace exporter, Prometheus
//!   text exposition) that is compiled to nothing when the default
//!   `telemetry` feature is off and provably non-perturbing when on.
//!
//! Everything in this workspace is deterministic given a single `u64` seed;
//! no wall-clock time or OS randomness is consulted anywhere in the
//! simulation path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod process;
pub mod report;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;
pub mod vmath;

pub use event::{EventId, EventQueue};
pub use process::Process;
pub use rng::Prng;
pub use time::{SimDuration, SimTime};
pub use units::{BitRate, ByteSize, KB, MB};
