//! Branch-light transcendental kernels for the deviate fill loops.
//!
//! The stochastic sampling engine spends most of its time in `ln`, `exp`,
//! and `sin`/`cos` — one or two per deviate. libm's implementations are
//! accurate to the last ulp but built around tables and branches, which
//! defeats the loop vectorizer and costs a call per element. These kernels
//! trade the last couple of bits of accuracy (relative error ≲ 1e-13,
//! invisible under any statistical use) for straight-line polynomial
//! evaluation the compiler can unroll and vectorize across a fill block.
//!
//! Determinism: every kernel is pure IEEE-754 double arithmetic in a fixed
//! evaluation order — results are bit-identical on every platform and
//! toolchain, unlike libm whose results vary by implementation. The RNG
//! deviate streams built on these kernels are therefore portable, where
//! the previous libm-backed streams were glibc-specific.
//!
//! Domain contracts (callers uphold these; see each function):
//! - [`ln`]: finite, normal, positive input.
//! - [`exp`]: |x| ≤ ~700 (no overflow handling).
//! - [`sincos`]: |x| ≤ ~2π (single-step range reduction).

const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Natural log of a positive, normal, finite `x`.
///
/// Decomposes `x = 2^e · m` with `m ∈ [√2/2, √2)`, then evaluates
/// `ln m = 2·atanh(s)` for `s = (m−1)/(m+1)` (|s| ≤ 0.1716) as an odd
/// polynomial in `s²`. Subnormals, zero, negatives, and non-finite inputs
/// are outside the contract (fill loops clamp with
/// `max(f64::MIN_POSITIVE)`).
#[inline]
pub fn ln(x: f64) -> f64 {
    let bits = x.to_bits();
    let e0 = ((bits >> 52) as i64) - 1023;
    let m0 = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    // Fold m into [√2/2, √2) so s stays small and the polynomial short.
    // Branchless (select, not jump) so the fill loops stay vectorizable.
    let fold = m0 > SQRT2;
    let m = if fold { m0 * 0.5 } else { m0 };
    let e = e0 + fold as i64;
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // atanh series: s·(1 + z/3 + z²/5 + … + z⁷/15); z ≤ 0.0295 so the
    // truncated tail is < 1e-14 relative. Estrin grouping: three short
    // sub-chains in parallel instead of one six-deep Horner chain.
    let z2 = z * z;
    let q0 = (1.0 / 3.0 + z * (1.0 / 5.0)) + z2 * (1.0 / 7.0 + z * (1.0 / 9.0));
    let q1 = (1.0 / 11.0 + z * (1.0 / 13.0)) + z2 * (1.0 / 15.0);
    let p = z * (q0 + (z2 * z2) * q1);
    let ef = e as f64;
    // Split ln2 so the large e·ln2 term doesn't swamp the small poly part.
    ef * LN2_HI + (2.0 * (s + s * p) + ef * LN2_LO)
}

/// `e^x` for |x| ≤ ~700.
///
/// Splits `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluates a degree-11
/// Taylor polynomial for `e^r`, and scales by `2^k` through the exponent
/// bits. No overflow/underflow handling — callers keep arguments in the
/// contract range (deviate multipliers and OU decays always are).
#[inline]
pub fn exp(x: f64) -> f64 {
    const INV_LN2: f64 = std::f64::consts::LOG2_E;
    // Round-to-nearest via the classic shifter trick keeps this branchless.
    let kf = {
        let shifted = x * INV_LN2 + 6_755_399_441_055_744.0; // 1.5·2^52
        shifted - 6_755_399_441_055_744.0
    };
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // e^r, |r| ≤ 0.3466: Taylor through r¹¹/11! leaves < 2e-13 absolute.
    // Estrin grouping: pairs combined through r², r⁴, r⁸ — a ~4-deep
    // dependency chain instead of Horner's 11-deep one, which matters for
    // the scalar (latency-bound) callers like the OU decay recompute.
    let r2 = r * r;
    let r4 = r2 * r2;
    let q0 = (1.0 + r) + r2 * (0.5 + r * (1.0 / 6.0));
    let q1 = (1.0 / 24.0 + r * (1.0 / 120.0)) + r2 * (1.0 / 720.0 + r * (1.0 / 5_040.0));
    let q2 = (1.0 / 40_320.0 + r * (1.0 / 362_880.0))
        + r2 * (1.0 / 3_628_800.0 + r * (1.0 / 39_916_800.0));
    let p = q0 + r4 * (q1 + r4 * q2);
    let scale = f64::from_bits((((kf as i64) + 1023) as u64) << 52);
    p * scale
}

/// `(sin x, cos x)` for |x| ≤ ~2π (one range-reduction step).
///
/// Reduces to `r = x − q·π/2` with `|r| ≤ π/4`, evaluates the sine and
/// cosine Taylor polynomials once, and swaps/negates by quadrant. The
/// quadrant selection is arithmetic (no table), so the whole body is
/// straight-line and block-vectorizable.
#[inline]
pub fn sincos(x: f64) -> (f64, f64) {
    const FRAC_PI_2_HI: f64 = std::f64::consts::FRAC_PI_2;
    const FRAC_PI_2_LO: f64 = 6.123_233_995_736_766e-17;
    let qf = {
        let shifted = x * (1.0 / FRAC_PI_2_HI) + 6_755_399_441_055_744.0;
        shifted - 6_755_399_441_055_744.0
    };
    let r = (x - qf * FRAC_PI_2_HI) - qf * FRAC_PI_2_LO;
    let z = r * r;
    // sin r = r·(1 + z·S(z)), cos r = 1 + z·C(z); |r| ≤ π/4 keeps the
    // truncated Taylor tails below 3e-14. Estrin grouping through z², z⁴
    // shortens both chains and lets the two polynomials overlap.
    let z2 = z * z;
    let z4 = z2 * z2;
    let s_poly = z
        * (((-1.0 / 6.0 + z * (1.0 / 120.0)) + z2 * (-1.0 / 5_040.0 + z * (1.0 / 362_880.0)))
            + z4 * (-1.0 / 39_916_800.0 + z * (1.0 / 6_227_020_800.0)));
    let c_poly = z
        * (((-0.5 + z * (1.0 / 24.0)) + z2 * (-1.0 / 720.0 + z * (1.0 / 40_320.0)))
            + z4 * ((-1.0 / 3_628_800.0 + z * (1.0 / 479_001_600.0))
                + z2 * (-1.0 / 87_178_291_200.0)));
    let sin_r = r + r * s_poly;
    let cos_r = 1.0 + c_poly;
    // Quadrant fix-up, arithmetic form: q mod 4 selects the (sin, cos)
    // permutation. bit0 swaps, bit1 negates sin, bit0^bit1 negates cos.
    let q = qf as i64;
    let swap = (q & 1) != 0;
    let (mut s, mut c) = if swap { (cos_r, sin_r) } else { (sin_r, cos_r) };
    if (q & 2) != 0 {
        s = -s;
    }
    if ((q & 2) != 0) != swap {
        c = -c;
    }
    (s, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn ln_tracks_libm_over_unit_interval_and_beyond() {
        // The fills call ln on (0,1] uniforms; cover wide magnitudes too.
        for i in 1..=100_000u64 {
            let x = i as f64 / 100_000.0;
            assert!(rel_err(ln(x), x.ln()) < 1e-13, "x={x}");
        }
        for &x in &[1e-300, 2.3e-10, 0.5, 1.0, 1.0 + 1e-12, 7.25, 1e18, 1.79e308] {
            assert!(rel_err(ln(x), x.ln()) < 1e-13, "x={x}");
        }
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn exp_tracks_libm_over_deviate_range() {
        for i in -60_000..=60_000i64 {
            let x = i as f64 / 1_000.0; // [-60, 60] covers any sane mu+sigma·z
            assert!(rel_err(exp(x), x.exp()) < 1e-12, "x={x}");
        }
        for &x in &[-700.0, -0.0, 0.0, 1e-17, 700.0] {
            assert!(rel_err(exp(x), x.exp()) < 1e-12, "x={x}");
        }
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn sincos_tracks_libm_over_two_turns() {
        for i in 0..=200_000u64 {
            let x = i as f64 * (std::f64::consts::TAU / 200_000.0);
            let (s, c) = sincos(x);
            assert!((s - x.sin()).abs() < 1e-13, "sin x={x}");
            assert!((c - x.cos()).abs() < 1e-13, "cos x={x}");
        }
        let (s, c) = sincos(0.0);
        assert_eq!(s, 0.0);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn sincos_identity_holds() {
        for i in 0..10_000u64 {
            let x = i as f64 * 6.7e-4;
            let (s, c) = sincos(x);
            assert!((s * s + c * c - 1.0).abs() < 1e-12);
        }
    }
}
