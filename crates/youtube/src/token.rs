//! Access tokens.
//!
//! Paper §4: after OAuth verification "the web proxy server generates an
//! access token (valid for an hour) that matches the video server's IP
//! address as well as the operations requested". The token is embedded in
//! the synthesized video URL and checked by the video server.
//!
//! The MAC here is an FNV-1a-based keyed hash — *an emulation stand-in, not
//! cryptography* — chosen because it is deterministic, dependency-free and
//! byte-stable across platforms, which keeps seeded sessions replayable.

use crate::video::VideoId;
use msim_core::time::{SimDuration, SimTime};
use std::fmt;

/// Operations a token can grant (paper: "the operations requested").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Operations(u8);

impl Operations {
    /// Permission to stream (range-request) the video.
    pub const STREAM: Operations = Operations(1);
    /// Permission to probe metadata (HEAD).
    pub const PROBE: Operations = Operations(2);
    /// Both stream and probe.
    pub const ALL: Operations = Operations(3);

    /// True when `self` grants everything in `needed`.
    pub fn allows(&self, needed: Operations) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Raw bits (wire form).
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// From raw bits.
    pub fn from_bits(b: u8) -> Operations {
        Operations(b & Operations::ALL.0)
    }
}

/// Token validity window: one hour (paper §4).
pub const TOKEN_TTL: SimDuration = SimDuration::from_secs(3600);

/// An access token binding (video, client IP, operations, issue time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessToken {
    /// The video the token authorises.
    pub video_id: VideoId,
    /// The client's public IP as resolved by the proxy.
    pub client_ip: String,
    /// Granted operations.
    pub operations: Operations,
    /// Issue instant.
    pub issued_at: SimTime,
    /// Keyed MAC over the fields above.
    mac: u64,
}

/// Why token validation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenError {
    /// Past `issued_at + TOKEN_TTL`.
    Expired {
        /// How long past expiry the request arrived.
        by: SimDuration,
    },
    /// MAC mismatch (forged or corrupted token, or wrong secret).
    BadSignature,
    /// Token is for a different video.
    WrongVideo,
    /// Token was bound to a different client IP.
    WrongClient,
    /// The requested operation is not granted.
    OperationNotAllowed,
    /// Wire form did not parse.
    Malformed,
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::Expired { by } => write!(f, "token expired {by} ago"),
            TokenError::BadSignature => write!(f, "token signature invalid"),
            TokenError::WrongVideo => write!(f, "token bound to another video"),
            TokenError::WrongClient => write!(f, "token bound to another client"),
            TokenError::OperationNotAllowed => write!(f, "operation not granted"),
            TokenError::Malformed => write!(f, "token malformed"),
        }
    }
}

impl std::error::Error for TokenError {}

fn fnv1a64(data: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ seed;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn mac_over(
    secret: u64,
    video_id: &VideoId,
    client_ip: &str,
    ops: Operations,
    issued: SimTime,
) -> u64 {
    let material = format!(
        "{}|{}|{}|{}",
        video_id.as_str(),
        client_ip,
        ops.bits(),
        issued.as_micros()
    );
    // Two passes with derived seeds: still not crypto, but not trivially
    // invertible by accident in tests.
    let h1 = fnv1a64(material.as_bytes(), secret);
    fnv1a64(&h1.to_le_bytes(), secret.rotate_left(17))
}

impl AccessToken {
    /// Issues a token signed with `secret`.
    pub fn issue(
        secret: u64,
        video_id: VideoId,
        client_ip: impl Into<String>,
        operations: Operations,
        issued_at: SimTime,
    ) -> AccessToken {
        let client_ip = client_ip.into();
        let mac = mac_over(secret, &video_id, &client_ip, operations, issued_at);
        AccessToken {
            video_id,
            client_ip,
            operations,
            issued_at,
            mac,
        }
    }

    /// Validates the token for a request arriving at `now`, for `video_id`,
    /// from `client_ip`, performing `op`.
    pub fn validate(
        &self,
        secret: u64,
        now: SimTime,
        video_id: VideoId,
        client_ip: &str,
        op: Operations,
    ) -> Result<(), TokenError> {
        let expect = mac_over(
            secret,
            &self.video_id,
            &self.client_ip,
            self.operations,
            self.issued_at,
        );
        if expect != self.mac {
            return Err(TokenError::BadSignature);
        }
        if self.video_id != video_id {
            return Err(TokenError::WrongVideo);
        }
        if self.client_ip != client_ip {
            return Err(TokenError::WrongClient);
        }
        if !self.operations.allows(op) {
            return Err(TokenError::OperationNotAllowed);
        }
        let expiry = self.issued_at + TOKEN_TTL;
        if now > expiry {
            return Err(TokenError::Expired {
                by: now.saturating_since(expiry),
            });
        }
        Ok(())
    }

    /// The instant this token stops validating (`issued_at + TOKEN_TTL`).
    pub fn expires_at(&self) -> SimTime {
        self.issued_at + TOKEN_TTL
    }

    /// Wire form carried in the synthesized video URL.
    pub fn to_wire(&self) -> String {
        format!(
            "{}.{}.{}.{}.{:016x}",
            self.video_id.as_str(),
            self.client_ip.replace('.', "_"),
            self.operations.bits(),
            self.issued_at.as_micros(),
            self.mac
        )
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Result<AccessToken, TokenError> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 5 {
            return Err(TokenError::Malformed);
        }
        let video_id = VideoId::new(parts[0]).map_err(|_| TokenError::Malformed)?;
        let client_ip = parts[1].replace('_', ".");
        let ops: u8 = parts[2].parse().map_err(|_| TokenError::Malformed)?;
        let issued: u64 = parts[3].parse().map_err(|_| TokenError::Malformed)?;
        let mac = u64::from_str_radix(parts[4], 16).map_err(|_| TokenError::Malformed)?;
        Ok(AccessToken {
            video_id,
            client_ip,
            operations: Operations::from_bits(ops),
            issued_at: SimTime::from_micros(issued),
            mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: u64 = 0xfeed_beef_dead_cafe;

    fn vid() -> VideoId {
        VideoId::new("qjT4T2gU9sM").unwrap()
    }

    fn issue_at(t: SimTime) -> AccessToken {
        AccessToken::issue(SECRET, vid(), "203.0.113.7", Operations::STREAM, t)
    }

    #[test]
    fn valid_token_passes() {
        let t = issue_at(SimTime::from_secs(100));
        assert_eq!(
            t.validate(
                SECRET,
                SimTime::from_secs(200),
                vid(),
                "203.0.113.7",
                Operations::STREAM
            ),
            Ok(())
        );
    }

    #[test]
    fn expires_after_one_hour() {
        let t = issue_at(SimTime::from_secs(0));
        let just_inside = SimTime::from_secs(3600);
        assert!(t
            .validate(
                SECRET,
                just_inside,
                vid(),
                "203.0.113.7",
                Operations::STREAM
            )
            .is_ok());
        let just_past = SimTime::from_secs(3601);
        assert!(matches!(
            t.validate(SECRET, just_past, vid(), "203.0.113.7", Operations::STREAM),
            Err(TokenError::Expired { .. })
        ));
    }

    #[test]
    fn wrong_secret_is_bad_signature() {
        let t = issue_at(SimTime::ZERO);
        assert_eq!(
            t.validate(
                SECRET + 1,
                SimTime::ZERO,
                vid(),
                "203.0.113.7",
                Operations::STREAM
            ),
            Err(TokenError::BadSignature)
        );
    }

    #[test]
    fn binding_checks() {
        let t = issue_at(SimTime::ZERO);
        let other_vid = VideoId::new("dQw4w9WgXcQ").unwrap();
        assert_eq!(
            t.validate(
                SECRET,
                SimTime::ZERO,
                other_vid,
                "203.0.113.7",
                Operations::STREAM
            ),
            Err(TokenError::WrongVideo)
        );
        assert_eq!(
            t.validate(
                SECRET,
                SimTime::ZERO,
                vid(),
                "198.51.100.9",
                Operations::STREAM
            ),
            Err(TokenError::WrongClient)
        );
        assert_eq!(
            t.validate(
                SECRET,
                SimTime::ZERO,
                vid(),
                "203.0.113.7",
                Operations::PROBE
            ),
            Err(TokenError::OperationNotAllowed)
        );
    }

    #[test]
    fn tampered_wire_form_rejected() {
        let t = issue_at(SimTime::from_secs(5));
        let wire = t.to_wire();
        let parsed = AccessToken::from_wire(&wire).unwrap();
        assert_eq!(parsed, t);
        // Flip the ops field to escalate permissions.
        let mut parts: Vec<String> = wire.split('.').map(String::from).collect();
        parts[2] = "3".into();
        let forged = AccessToken::from_wire(&parts.join(".")).unwrap();
        assert_eq!(
            forged.validate(
                SECRET,
                SimTime::from_secs(6),
                vid(),
                "203.0.113.7",
                Operations::STREAM
            ),
            Err(TokenError::BadSignature)
        );
    }

    #[test]
    fn malformed_wire_forms() {
        for bad in ["", "a.b.c", "qjT4T2gU9sM.ip.9.nan.zz", "x.y.z.w.v.u"] {
            assert_eq!(
                AccessToken::from_wire(bad),
                Err(TokenError::Malformed),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn operations_lattice() {
        assert!(Operations::ALL.allows(Operations::STREAM));
        assert!(Operations::ALL.allows(Operations::PROBE));
        assert!(!Operations::STREAM.allows(Operations::ALL));
        assert!(Operations::STREAM.allows(Operations::STREAM));
    }
}
