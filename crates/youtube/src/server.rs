//! Video (content) servers.
//!
//! Each network hosts its own replicas ("Each type of server is hosted in
//! two different UMass subnets for source diversity", §5). A server checks
//! the access token on every range request, can be scheduled to fail or be
//! overloaded (the robustness scenarios of §2), and may apply Trickle-style
//! pacing (the paper's \[12\]) in the YouTube-service profile.

use crate::dns::Network;
use crate::token::{AccessToken, Operations, TokenError};
use crate::video::VideoId;
use msim_core::time::SimTime;
use msim_core::units::{BitRate, ByteSize};
use msim_http::StatusCode;
use std::net::Ipv4Addr;

/// Server identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

/// Application-layer pacing applied by the server to each connection:
/// the first `burst` bytes go at line rate, the rest at `rate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacePolicy {
    /// Unpaced initial burst per connection.
    pub burst: ByteSize,
    /// Steady-state pacing rate.
    pub rate: BitRate,
}

/// Scheduled unavailability windows (maintenance, crash, overload).
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    /// Half-open `[start, end)` windows during which requests fail.
    windows: Vec<(SimTime, SimTime)>,
}

impl FailurePlan {
    /// Always healthy.
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// Fails inside each given window.
    pub fn windows(mut windows: Vec<(SimTime, SimTime)>) -> FailurePlan {
        windows.sort_by_key(|w| w.0);
        for w in &windows {
            assert!(w.0 < w.1, "bad failure window {w:?}");
        }
        FailurePlan { windows }
    }

    /// Is the server down at `t`?
    pub fn is_failed(&self, t: SimTime) -> bool {
        self.windows.iter().any(|&(s, e)| s <= t && t < e)
    }
}

/// One video content server.
#[derive(Debug)]
pub struct VideoServer {
    /// Identifier.
    pub id: ServerId,
    /// DNS name, e.g. `r1.wifi.youtube-video.example`.
    pub domain: String,
    /// Address inside its network's subnet.
    pub addr: Ipv4Addr,
    /// Which access network can reach it.
    pub network: Network,
    failure: FailurePlan,
    /// Scheduled overload windows: the server answers 503 inside them, as
    /// if its session capacity were exhausted (chaos injection).
    overload: FailurePlan,
    pace: Option<PacePolicy>,
    /// Per-run pacing override (fleet capacity share); cleared by
    /// [`VideoServer::reset_session_state`], wins over `pace` while set.
    pace_override: Option<PacePolicy>,
    /// Sessions currently assigned (for load-aware selection).
    active_sessions: u32,
    /// Sessions beyond which the server responds with 503.
    session_capacity: u32,
    /// Aggregate service rate the server can sustain across all its
    /// sessions; `None` models an uncapacitated replica (the default).
    service_rate: Option<BitRate>,
}

impl VideoServer {
    /// Creates a healthy, unpaced server.
    pub fn new(id: ServerId, domain: impl Into<String>, addr: Ipv4Addr, network: Network) -> Self {
        VideoServer {
            id,
            domain: domain.into(),
            addr,
            network,
            failure: FailurePlan::none(),
            overload: FailurePlan::none(),
            pace: None,
            pace_override: None,
            active_sessions: 0,
            session_capacity: 64,
            service_rate: None,
        }
    }

    /// Installs a failure plan.
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.failure = plan;
        self
    }

    /// Replaces the failure plan in place.
    pub fn set_failures(&mut self, plan: FailurePlan) {
        self.failure = plan;
    }

    /// Replaces the overload plan in place: inside each window the server
    /// answers 503 regardless of its actual session count.
    pub fn set_overload(&mut self, plan: FailurePlan) {
        self.overload = plan;
    }

    /// Installs Trickle-style pacing.
    pub fn with_pacing(mut self, pace: PacePolicy) -> Self {
        self.pace = Some(pace);
        self
    }

    /// Lowers the 503 threshold (overload scenarios).
    pub fn with_session_capacity(mut self, cap: u32) -> Self {
        self.session_capacity = cap;
        self
    }

    /// Replaces the 503 threshold in place (fleet admission under shared
    /// load).
    pub fn set_session_capacity(&mut self, cap: u32) {
        self.session_capacity = cap;
    }

    /// The current 503 threshold.
    pub fn session_capacity(&self) -> u32 {
        self.session_capacity
    }

    /// Declares the aggregate service rate the replica can sustain.
    pub fn set_service_rate(&mut self, rate: Option<BitRate>) {
        self.service_rate = rate;
    }

    /// The aggregate service rate, if capacitated.
    pub fn service_rate(&self) -> Option<BitRate> {
        self.service_rate
    }

    /// The fair per-session share of the service rate if one more session
    /// joined now; `None` for an uncapacitated replica.
    pub fn share_with_one_more(&self) -> Option<BitRate> {
        self.service_rate
            .map(|c| BitRate::bps(c.as_bps() / f64::from(self.active_sessions + 1)))
    }

    /// Can the replica sustain one more session streaming at `rate`?
    /// Always true for uncapacitated replicas.
    pub fn can_sustain(&self, rate: BitRate) -> bool {
        self.share_with_one_more()
            .is_none_or(|share| share.as_bps() >= rate.as_bps())
    }

    /// Installs (or clears) a per-run pacing override: the fleet's way of
    /// charging a session its capacity share. Cleared by
    /// [`VideoServer::reset_session_state`].
    pub fn set_pace_override(&mut self, pace: Option<PacePolicy>) {
        self.pace_override = pace;
    }

    /// The pacing policy in force: the fleet override when set, the
    /// configured Trickle policy otherwise.
    pub fn pace(&self) -> Option<PacePolicy> {
        self.pace_override.or(self.pace)
    }

    /// Current session count.
    pub fn load(&self) -> u32 {
        self.active_sessions
    }

    /// Force the session count (fleet-injected shared load).
    pub fn set_load(&mut self, n: u32) {
        self.active_sessions = n;
    }

    /// Registers a streaming session.
    pub fn begin_session(&mut self) {
        self.active_sessions += 1;
    }

    /// Unregisters a streaming session.
    pub fn end_session(&mut self) {
        self.active_sessions = self.active_sessions.saturating_sub(1);
    }

    /// Clears all per-session state (load and failure plan), returning the
    /// server to the state it had straight out of [`VideoServer::new`]
    /// modulo its static topology and pacing config.
    pub fn reset_session_state(&mut self) {
        self.active_sessions = 0;
        self.failure = FailurePlan::none();
        self.overload = FailurePlan::none();
        self.pace_override = None;
    }

    /// Is the server inside a failure window at `t`?
    pub fn is_failed(&self, t: SimTime) -> bool {
        self.failure.is_failed(t)
    }

    /// The time-*dependent* half of range-request admission: failure
    /// windows and overload. Checked on every request; the token /
    /// signature half is time-independent per session and can be
    /// pre-validated once into a
    /// [`StreamGrant`](crate::service::StreamGrant).
    pub fn admit_at(&self, now: SimTime) -> Result<(), StatusCode> {
        if self.failure.is_failed(now) {
            return Err(StatusCode::INTERNAL_SERVER_ERROR);
        }
        if self.active_sessions > self.session_capacity || self.overload.is_failed(now) {
            return Err(StatusCode::SERVICE_UNAVAILABLE);
        }
        Ok(())
    }

    /// Admission + authorisation check for a range request arriving at
    /// `now`. On success the request proceeds onto the TCP model; on error
    /// the mapped HTTP status is returned.
    pub fn check_range_request(
        &self,
        secret: u64,
        now: SimTime,
        video_id: VideoId,
        client_ip: &str,
        token_wire: &str,
    ) -> Result<(), StatusCode> {
        self.admit_at(now)?;
        let token = AccessToken::from_wire(token_wire).map_err(|_| StatusCode::FORBIDDEN)?;
        match token.validate(secret, now, video_id, client_ip, Operations::STREAM) {
            Ok(()) => Ok(()),
            Err(TokenError::Expired { .. }) => Err(StatusCode::FORBIDDEN),
            Err(_) => Err(StatusCode::FORBIDDEN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::AccessToken;

    const SECRET: u64 = 42;

    fn vid() -> VideoId {
        VideoId::new("qjT4T2gU9sM").unwrap()
    }

    fn server() -> VideoServer {
        VideoServer::new(
            ServerId(1),
            "r1.wifi.youtube-video.example",
            Ipv4Addr::new(128, 119, 40, 1),
            Network::Wifi,
        )
    }

    fn token_at(t: SimTime) -> String {
        AccessToken::issue(SECRET, vid(), "203.0.113.7", Operations::ALL, t).to_wire()
    }

    #[test]
    fn healthy_server_accepts_valid_request() {
        let s = server();
        let tok = token_at(SimTime::ZERO);
        assert_eq!(
            s.check_range_request(SECRET, SimTime::from_secs(5), vid(), "203.0.113.7", &tok),
            Ok(())
        );
    }

    #[test]
    fn failure_window_returns_500() {
        let s = server().with_failures(FailurePlan::windows(vec![(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )]));
        let tok = token_at(SimTime::ZERO);
        assert_eq!(
            s.check_range_request(SECRET, SimTime::from_secs(15), vid(), "203.0.113.7", &tok),
            Err(StatusCode::INTERNAL_SERVER_ERROR)
        );
        assert!(s.is_failed(SimTime::from_secs(15)));
        assert_eq!(
            s.check_range_request(SECRET, SimTime::from_secs(25), vid(), "203.0.113.7", &tok),
            Ok(()),
            "recovers after the window"
        );
    }

    #[test]
    fn expired_token_is_403() {
        let s = server();
        let tok = token_at(SimTime::ZERO);
        assert_eq!(
            s.check_range_request(
                SECRET,
                SimTime::from_secs(3601) + msim_core::time::SimDuration::from_micros(1),
                vid(),
                "203.0.113.7",
                &tok
            ),
            Err(StatusCode::FORBIDDEN)
        );
    }

    #[test]
    fn garbage_token_is_403() {
        let s = server();
        assert_eq!(
            s.check_range_request(SECRET, SimTime::ZERO, vid(), "203.0.113.7", "junk"),
            Err(StatusCode::FORBIDDEN)
        );
    }

    #[test]
    fn overload_returns_503() {
        let mut s = server().with_session_capacity(1);
        s.begin_session();
        s.begin_session();
        let tok = token_at(SimTime::ZERO);
        assert_eq!(
            s.check_range_request(SECRET, SimTime::ZERO, vid(), "203.0.113.7", &tok),
            Err(StatusCode::SERVICE_UNAVAILABLE)
        );
        s.end_session();
        assert_eq!(
            s.check_range_request(SECRET, SimTime::ZERO, vid(), "203.0.113.7", &tok),
            Ok(())
        );
    }

    #[test]
    fn session_accounting_saturates() {
        let mut s = server();
        s.end_session();
        assert_eq!(s.load(), 0);
        s.begin_session();
        assert_eq!(s.load(), 1);
    }

    #[test]
    fn capacity_share_and_admission() {
        let mut s = server();
        assert!(s.can_sustain(BitRate::mbps(100.0)), "uncapacitated");
        assert_eq!(s.share_with_one_more(), None);
        s.set_service_rate(Some(BitRate::mbps(10.0)));
        assert!(
            s.can_sustain(BitRate::mbps(10.0)),
            "first session gets it all"
        );
        s.begin_session();
        s.begin_session();
        s.begin_session();
        // 10 Mbps over 4 sessions = 2.5 Mbps each.
        assert!(s.can_sustain(BitRate::mbps(2.5)));
        assert!(!s.can_sustain(BitRate::mbps(3.0)));
        assert_eq!(s.share_with_one_more().unwrap().as_mbps(), 2.5);
    }

    #[test]
    fn pace_override_wins_and_resets() {
        let mut s = server().with_pacing(PacePolicy {
            burst: ByteSize::kb(512),
            rate: BitRate::mbps(8.0),
        });
        let share = PacePolicy {
            burst: ByteSize::kb(64),
            rate: BitRate::mbps(2.0),
        };
        s.set_pace_override(Some(share));
        assert_eq!(s.pace(), Some(share));
        s.reset_session_state();
        assert_eq!(
            s.pace().unwrap().rate.as_mbps(),
            8.0,
            "configured policy back"
        );
    }

    #[test]
    #[should_panic(expected = "bad failure window")]
    fn inverted_failure_window_rejected() {
        FailurePlan::windows(vec![(SimTime::from_secs(5), SimTime::from_secs(5))]);
    }
}
