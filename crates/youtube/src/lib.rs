//! # msim-youtube — the emulated YouTube service
//!
//! Rebuilds, message-for-message, the control plane the paper's player
//! interacts with (§3.1, §4) and the §5 testbed topology:
//!
//! * [`video`] / `format` / [`catalog`] — 11-char video IDs, the
//!   circa-2014 itag table (the paper's HD 720p = itag 22), and the video
//!   catalog;
//! * [`dns`] — per-network DNS views: resolving a name over WiFi returns the
//!   WiFi-side replicas, over LTE the cellular-side ones (source diversity);
//! * [`token`] — one-hour access tokens bound to video, client IP and
//!   operations;
//! * [`sig`] — the signature cipher for copyrighted videos plus the decoder
//!   "page" the player must fetch (paper footnote 1);
//! * [`proxy`] — web proxy servers and the JSON video-information objects;
//! * [`server`] — video servers with failure injection, overload and
//!   Trickle-style pacing;
//! * [`service`] — the assembled façade used by player drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dns;
pub mod format;
pub mod proxy;
pub mod server;
pub mod service;
pub mod sig;
pub mod token;
pub mod video;

pub use catalog::Catalog;
pub use dns::{DnsAnswer, DnsError, DnsResolver, DnsZone, Network};
pub use format::{by_itag, hd_720p, Container, VideoFormat, ITAGS};
pub use proxy::{build_video_info, parse_video_info, InfoError, VideoInfo, WebProxyServer};
pub use server::{FailurePlan, PacePolicy, ServerId, VideoServer};
pub use service::{ServiceConfig, YoutubeService, PROXY_DOMAIN};
pub use sig::{CipherError, CipherOp, DecoderScript, SignatureCipher};
pub use token::{AccessToken, Operations, TokenError, TOKEN_TTL};
pub use video::{Video, VideoId, VideoIdError};
