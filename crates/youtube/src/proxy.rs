//! Web proxy servers and the JSON video-information objects they return.
//!
//! Paper §3.1/§4: the player's watch request goes to a web proxy server,
//! which authenticates the user (OAuth 2.0), resolves the client's public
//! IP, selects suitable video servers, mints an access token, and returns
//! everything "in JavaScript Object Notation (JSON) format". MSPlayer does
//! this *once per interface*, getting per-network server lists.

use crate::dns::Network;
use crate::server::VideoServer;
use crate::token::AccessToken;
use crate::video::Video;
use msim_core::time::SimDuration;
use msim_http::tls::TlsTimingModel;
use msim_json::Value;
use std::fmt;
use std::net::Ipv4Addr;

/// A web proxy ("www.youtube.com" front end) in one network.
#[derive(Clone, Debug)]
pub struct WebProxyServer {
    /// Network whose clients this proxy serves.
    pub network: Network,
    /// Proxy address.
    pub addr: Ipv4Addr,
    /// TLS handshake timing (Fig. 1's Δ₁/Δ₂ for this proxy).
    pub tls: TlsTimingModel,
    /// Additional OAuth verification delay before the JSON is produced.
    pub oauth_delay: SimDuration,
}

impl WebProxyServer {
    /// Creates a proxy with default timing.
    pub fn new(network: Network, addr: Ipv4Addr) -> WebProxyServer {
        WebProxyServer {
            network,
            addr,
            tls: TlsTimingModel::default(),
            oauth_delay: SimDuration::from_millis(6),
        }
    }

    /// Total control-plane latency from SYN to complete JSON on a path with
    /// round-trip time `rtt`: ψ(R) plus the OAuth verification time.
    pub fn json_ready_after(&self, rtt: SimDuration) -> SimDuration {
        self.tls.psi(rtt) + self.oauth_delay
    }
}

/// Builds the JSON video-information object the proxy returns.
///
/// `servers` must already be the selection for the client's network,
/// preference-ordered. `enciphered_sig` is present for copyrighted videos.
pub fn build_video_info(
    video: &Video,
    formats: &[crate::format::VideoFormat],
    servers: &[&VideoServer],
    token: &AccessToken,
    user_ip: &str,
    enciphered_sig: Option<&str>,
) -> Value {
    let fmt_values: Vec<Value> = formats
        .iter()
        .map(|f| {
            Value::object()
                .with("itag", f.itag as u64)
                .with("quality", f.quality_label)
                .with("container", f.container.to_string())
                .with("bitrate_bps", f.bitrate.as_bps().round())
                .with("size_bytes", f.size_for(video.duration).as_u64())
        })
        .collect();
    let server_values: Vec<Value> = servers
        .iter()
        .map(|s| {
            Value::object()
                .with("domain", s.domain.as_str())
                .with("addr", s.addr.to_string())
        })
        .collect();
    let mut root = Value::object()
        .with("video_id", video.id.as_str())
        .with("title", video.title.as_str())
        .with("author", video.author.as_str())
        .with("duration_secs", video.duration.as_secs_f64())
        .with("user_ip", user_ip)
        .with("copyrighted", video.copyrighted)
        .with("token", token.to_wire())
        .with("formats", Value::Array(fmt_values))
        .with("servers", Value::Array(server_values));
    if let Some(sig) = enciphered_sig {
        root = root.with("sig", sig);
    }
    root
}

/// A format entry decoded from the JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct InfoFormat {
    /// itag number.
    pub itag: u32,
    /// Quality label (e.g. "720p").
    pub quality: String,
    /// Total file size for this format.
    pub size_bytes: u64,
    /// Encoding bitrate in bits/s.
    pub bitrate_bps: f64,
}

/// The decoded video information (what the player's JSON decode step
/// produces, §4: "MSPlayer then decodes the JSON objects received on each
/// interface and synthesizes a new URL").
#[derive(Clone, Debug, PartialEq)]
pub struct VideoInfo {
    /// Video identifier string.
    pub video_id: String,
    /// Title.
    pub title: String,
    /// Uploader.
    pub author: String,
    /// Duration in seconds.
    pub duration_secs: f64,
    /// The client's public IP as seen by the proxy.
    pub user_ip: String,
    /// Whether a signature decipher step is required.
    pub copyrighted: bool,
    /// Access token wire form.
    pub token: String,
    /// Available formats.
    pub formats: Vec<InfoFormat>,
    /// Video server domains in this network, preference-ordered.
    pub server_domains: Vec<String>,
    /// Enciphered signature (copyrighted videos only).
    pub enciphered_sig: Option<String>,
}

impl VideoInfo {
    /// The format entry for `itag`, if offered.
    pub fn format(&self, itag: u32) -> Option<&InfoFormat> {
        self.formats.iter().find(|f| f.itag == itag)
    }

    /// Synthesizes the video URL for `itag` against the preferred server
    /// (paper §4: URL carries the required info, server address and token).
    pub fn synthesize_url(&self, itag: u32, signature: Option<&str>) -> Option<String> {
        let domain = self.server_domains.first()?;
        let mut url = format!(
            "https://{}/videoplayback?id={}&itag={}&token={}",
            domain, self.video_id, itag, self.token
        );
        if let Some(sig) = signature {
            url.push_str("&signature=");
            url.push_str(sig);
        }
        Some(url)
    }
}

/// Errors decoding a video-information JSON object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfoError(pub String);

impl fmt::Display for InfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad video info JSON: {}", self.0)
    }
}

impl std::error::Error for InfoError {}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, InfoError> {
    v.get(key)
        .ok_or_else(|| InfoError(format!("missing {key}")))
}

/// Decodes a video-information object (inverse of [`build_video_info`]).
pub fn parse_video_info(v: &Value) -> Result<VideoInfo, InfoError> {
    let str_field = |key: &str| -> Result<String, InfoError> {
        field(v, key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| InfoError(format!("{key} not a string")))
    };
    let formats_raw = field(v, "formats")?
        .as_array()
        .ok_or_else(|| InfoError("formats not an array".into()))?;
    let mut formats = Vec::with_capacity(formats_raw.len());
    for f in formats_raw {
        formats.push(InfoFormat {
            itag: f
                .get("itag")
                .and_then(Value::as_u64)
                .ok_or_else(|| InfoError("format.itag".into()))? as u32,
            quality: f
                .get("quality")
                .and_then(Value::as_str)
                .ok_or_else(|| InfoError("format.quality".into()))?
                .to_string(),
            size_bytes: f
                .get("size_bytes")
                .and_then(Value::as_u64)
                .ok_or_else(|| InfoError("format.size_bytes".into()))?,
            bitrate_bps: f
                .get("bitrate_bps")
                .and_then(Value::as_f64)
                .ok_or_else(|| InfoError("format.bitrate_bps".into()))?,
        });
    }
    let servers_raw = field(v, "servers")?
        .as_array()
        .ok_or_else(|| InfoError("servers not an array".into()))?;
    let server_domains = servers_raw
        .iter()
        .map(|s| {
            s.get("domain")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| InfoError("server.domain".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if server_domains.is_empty() {
        return Err(InfoError("empty server list".into()));
    }
    Ok(VideoInfo {
        video_id: str_field("video_id")?,
        title: str_field("title")?,
        author: str_field("author")?,
        duration_secs: field(v, "duration_secs")?
            .as_f64()
            .ok_or_else(|| InfoError("duration_secs".into()))?,
        user_ip: str_field("user_ip")?,
        copyrighted: field(v, "copyrighted")?
            .as_bool()
            .ok_or_else(|| InfoError("copyrighted".into()))?,
        token: str_field("token")?,
        formats,
        server_domains,
        enciphered_sig: v.get("sig").and_then(Value::as_str).map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ITAGS;
    use crate::server::{ServerId, VideoServer};
    use crate::token::Operations;
    use crate::video::VideoId;
    use msim_core::time::SimTime;

    fn fixture() -> (Value, AccessToken) {
        let id = VideoId::new("qjT4T2gU9sM").unwrap();
        let video = Video::new(id, "Test", "chan", SimDuration::from_secs(300), true);
        let s1 = VideoServer::new(
            ServerId(1),
            "r1.wifi.youtube-video.example",
            Ipv4Addr::new(128, 119, 40, 1),
            Network::Wifi,
        );
        let s2 = VideoServer::new(
            ServerId(2),
            "r2.wifi.youtube-video.example",
            Ipv4Addr::new(128, 119, 40, 2),
            Network::Wifi,
        );
        let token = AccessToken::issue(9, id, "203.0.113.7", Operations::STREAM, SimTime::ZERO);
        let json = build_video_info(
            &video,
            ITAGS,
            &[&s1, &s2],
            &token,
            "203.0.113.7",
            Some("ENCIPHERED"),
        );
        (json, token)
    }

    #[test]
    fn json_roundtrips_through_text() {
        let (json, _) = fixture();
        let text = msim_json::to_string(&json);
        let parsed = msim_json::from_str(&text).unwrap();
        assert_eq!(parsed, json);
    }

    #[test]
    fn parse_extracts_everything() {
        let (json, token) = fixture();
        let info = parse_video_info(&json).unwrap();
        assert_eq!(info.video_id, "qjT4T2gU9sM");
        assert_eq!(info.server_domains.len(), 2);
        assert_eq!(info.formats.len(), ITAGS.len());
        assert!(info.copyrighted);
        assert_eq!(info.enciphered_sig.as_deref(), Some("ENCIPHERED"));
        assert_eq!(info.token, token.to_wire());
        let f22 = info.format(22).unwrap();
        assert_eq!(f22.quality, "720p");
        // 300 s at 2.5 Mbit/s.
        assert_eq!(f22.size_bytes, 93_750_000);
    }

    #[test]
    fn synthesized_url_contains_token_and_sig() {
        let (json, token) = fixture();
        let info = parse_video_info(&json).unwrap();
        let url = info.synthesize_url(22, Some("SIGDEC")).unwrap();
        assert!(url.starts_with("https://r1.wifi.youtube-video.example/videoplayback?"));
        assert!(url.contains("itag=22"));
        assert!(url.contains(&format!("token={}", token.to_wire())));
        assert!(url.ends_with("&signature=SIGDEC"));
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let (json, _) = fixture();
        let Value::Object(mut map) = json else {
            panic!()
        };
        map.remove("token");
        let err = parse_video_info(&Value::Object(map)).unwrap_err();
        assert!(err.0.contains("token"), "{err}");
    }

    #[test]
    fn parse_rejects_empty_server_list() {
        let (json, _) = fixture();
        let Value::Object(mut map) = json else {
            panic!()
        };
        map.insert("servers".into(), Value::Array(vec![]));
        assert!(parse_video_info(&Value::Object(map)).is_err());
    }

    #[test]
    fn proxy_latency_composition() {
        let p = WebProxyServer::new(Network::Wifi, Ipv4Addr::new(128, 119, 1, 10));
        let rtt = SimDuration::from_millis(30);
        let total = p.json_ready_after(rtt);
        assert_eq!(total, p.tls.psi(rtt) + p.oauth_delay);
    }
}
