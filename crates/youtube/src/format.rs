//! Video format profiles ("itags").
//!
//! "The video server maintains multiple profiles of the same video for
//! different bitrates and video quality levels" (§2). The table below
//! mirrors the circa-2014 YouTube itag table for progressive MP4/WebM/3GP
//! streams. The paper's experiments use HD 720p MP4 with 44,100 Hz audio
//! (§5) — itag 22 here.

use msim_core::time::SimDuration;
use msim_core::units::{BitRate, ByteSize};
use std::fmt;

/// Container formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Container {
    /// MPEG-4 Part 14.
    Mp4,
    /// WebM (VP8 era).
    WebM,
    /// 3GP (legacy mobile).
    ThreeGp,
}

impl fmt::Display for Container {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Container::Mp4 => "mp4",
            Container::WebM => "webm",
            Container::ThreeGp => "3gp",
        })
    }
}

/// One downloadable profile of a video.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoFormat {
    /// The YouTube itag number.
    pub itag: u32,
    /// Container format.
    pub container: Container,
    /// Width × height.
    pub resolution: (u32, u32),
    /// Human label, e.g. `"720p"`.
    pub quality_label: &'static str,
    /// Combined audio+video encoding rate.
    pub bitrate: BitRate,
    /// Audio sample rate in Hz (the paper notes 44,100 Hz audio).
    pub audio_sample_rate: u32,
}

impl VideoFormat {
    /// File size of a `duration`-long video in this format.
    pub fn size_for(&self, duration: SimDuration) -> ByteSize {
        self.bitrate.bytes_over(duration)
    }

    /// Bytes of stream per second of playback.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bitrate.bytes_per_sec()
    }

    /// Seconds of playback contained in `bytes` of stream.
    pub fn playback_secs(&self, bytes: ByteSize) -> f64 {
        bytes.as_f64() / self.bytes_per_sec()
    }
}

/// The circa-2014 progressive itag table (subset).
pub const ITAGS: &[VideoFormat] = &[
    VideoFormat {
        itag: 17,
        container: Container::ThreeGp,
        resolution: (176, 144),
        quality_label: "144p",
        bitrate: BitRate::bps_const(120_000.0),
        audio_sample_rate: 22_050,
    },
    VideoFormat {
        itag: 36,
        container: Container::ThreeGp,
        resolution: (320, 240),
        quality_label: "240p",
        bitrate: BitRate::bps_const(250_000.0),
        audio_sample_rate: 22_050,
    },
    VideoFormat {
        itag: 18,
        container: Container::Mp4,
        resolution: (640, 360),
        quality_label: "360p",
        bitrate: BitRate::bps_const(600_000.0),
        audio_sample_rate: 44_100,
    },
    VideoFormat {
        itag: 43,
        container: Container::WebM,
        resolution: (640, 360),
        quality_label: "360p",
        bitrate: BitRate::bps_const(650_000.0),
        audio_sample_rate: 44_100,
    },
    VideoFormat {
        itag: 22,
        container: Container::Mp4,
        resolution: (1280, 720),
        quality_label: "720p",
        bitrate: BitRate::bps_const(2_500_000.0),
        audio_sample_rate: 44_100,
    },
    VideoFormat {
        itag: 37,
        container: Container::Mp4,
        resolution: (1920, 1080),
        quality_label: "1080p",
        bitrate: BitRate::bps_const(4_300_000.0),
        audio_sample_rate: 44_100,
    },
];

/// Looks up a format by itag.
pub fn by_itag(itag: u32) -> Option<&'static VideoFormat> {
    ITAGS.iter().find(|f| f.itag == itag)
}

/// The paper's experimental format: HD 720p MP4, 44.1 kHz audio (itag 22).
pub fn hd_720p() -> &'static VideoFormat {
    by_itag(22).expect("itag 22 present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itag_22_matches_paper_setup() {
        let f = hd_720p();
        assert_eq!(f.resolution, (1280, 720));
        assert_eq!(f.audio_sample_rate, 44_100, "44,100 Hz audio per §5");
        assert_eq!(f.container, Container::Mp4);
        assert_eq!(f.quality_label, "720p");
    }

    #[test]
    fn sizes_scale_with_duration_and_bitrate() {
        let f = hd_720p();
        // 40 s at 2.5 Mbit/s = 100 Mbit = 12.5 MB decimal.
        let s = f.size_for(SimDuration::from_secs(40));
        assert_eq!(s.as_u64(), 12_500_000);
        // Round trip through playback_secs.
        let secs = f.playback_secs(s);
        assert!((secs - 40.0).abs() < 1e-9);
    }

    #[test]
    fn itags_are_unique_and_ordered_by_quality() {
        let mut seen = std::collections::HashSet::new();
        for f in ITAGS {
            assert!(seen.insert(f.itag), "duplicate itag {}", f.itag);
            assert!(f.bitrate.as_bps() > 0.0);
        }
        // Higher resolutions cost more bits.
        let b360 = by_itag(18).unwrap().bitrate.as_bps();
        let b720 = by_itag(22).unwrap().bitrate.as_bps();
        let b1080 = by_itag(37).unwrap().bitrate.as_bps();
        assert!(b360 < b720 && b720 < b1080);
    }

    #[test]
    fn unknown_itag_is_none() {
        assert!(by_itag(999).is_none());
    }
}
