//! Per-network DNS resolution.
//!
//! "As wireless interfaces are associated with different networks, MSPlayer
//! requests partial content from video servers in all networks
//! simultaneously … In this work, we use Google's public DNS service to
//! resolve the IP addresses of YouTube servers." (§2)
//!
//! The crucial behaviour modelled here is that a DNS answer depends on *which
//! network asks*: the resolver (and YouTube's DNS-based server selection,
//! the paper's \[3\]) returns video-server addresses topologically close to
//! the querying network. Resolving `r1.youtube-video.example` over WiFi
//! yields servers in the WiFi-reachable subnet; over cellular it yields the
//! cellular-side replicas. That answer asymmetry is what gives MSPlayer its
//! *source* diversity on top of path diversity.

use msim_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// The access network an interface is attached to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Network {
    /// 802.11 home WiFi.
    Wifi,
    /// Cellular LTE.
    Cellular,
    /// Wired ethernet (campus/office attachment; the third path of the
    /// N-path scenarios — mHTTP's "more than two" sources).
    Ethernet,
}

impl Network {
    /// Every modelled network, WiFi first (the usual fast path).
    pub const ALL: [Network; 3] = [Network::Wifi, Network::Cellular, Network::Ethernet];

    /// Short name used in domains and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Network::Wifi => "wifi",
            Network::Cellular => "lte",
            Network::Ethernet => "eth",
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// DNS failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// No record for this name in this network's view.
    NxDomain(String),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NxDomain(name) => write!(f, "NXDOMAIN: {name}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// A resolved answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsAnswer {
    /// Addresses, preference-ordered.
    pub addrs: Vec<Ipv4Addr>,
    /// Answer TTL.
    pub ttl: SimDuration,
}

/// The authoritative zone: per-network views of each name.
#[derive(Clone, Debug, Default)]
pub struct DnsZone {
    records: BTreeMap<(Network, String), Vec<Ipv4Addr>>,
    ttl: SimDuration,
}

impl DnsZone {
    /// Creates an empty zone with a default 5-minute TTL.
    pub fn new() -> DnsZone {
        DnsZone {
            records: BTreeMap::new(),
            ttl: SimDuration::from_secs(300),
        }
    }

    /// Adds (or extends) a record in one network's view.
    pub fn add(&mut self, network: Network, name: &str, addr: Ipv4Addr) {
        self.records
            .entry((network, name.to_string()))
            .or_default()
            .push(addr);
    }

    /// Authoritative lookup of `name` as seen from `network`.
    pub fn lookup(&self, network: Network, name: &str) -> Result<DnsAnswer, DnsError> {
        self.records
            .get(&(network, name.to_string()))
            .filter(|addrs| !addrs.is_empty())
            .map(|addrs| DnsAnswer {
                addrs: addrs.clone(),
                ttl: self.ttl,
            })
            .ok_or_else(|| DnsError::NxDomain(name.to_string()))
    }
}

/// A caching stub resolver bound to one network interface (the "Google
/// public DNS over interface i" of §2).
pub struct DnsResolver {
    network: Network,
    /// Resolver processing time on top of the network round trip.
    server_delay: SimDuration,
    cache: BTreeMap<String, (SimTime, DnsAnswer)>,
}

impl DnsResolver {
    /// Creates a resolver for `network` with a typical public-resolver
    /// processing delay.
    pub fn new(network: Network) -> DnsResolver {
        DnsResolver {
            network,
            server_delay: SimDuration::from_millis(8),
            cache: BTreeMap::new(),
        }
    }

    /// The network this resolver queries through.
    pub fn network(&self) -> Network {
        self.network
    }

    /// Resolves `name` at time `now` through a path with round-trip `rtt`.
    /// Returns the answer and the instant it becomes available (cache hits
    /// are instantaneous).
    pub fn resolve(
        &mut self,
        zone: &DnsZone,
        name: &str,
        now: SimTime,
        rtt: SimDuration,
    ) -> Result<(DnsAnswer, SimTime), DnsError> {
        if let Some((expiry, answer)) = self.cache.get(name) {
            if now < *expiry {
                return Ok((answer.clone(), now));
            }
        }
        let answer = zone.lookup(self.network, name)?;
        let ready = now + rtt + self.server_delay;
        self.cache
            .insert(name.to_string(), (ready + answer.ttl, answer.clone()));
        Ok((answer, ready))
    }

    /// Drops all cached entries (e.g. after an interface change).
    pub fn flush(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> DnsZone {
        let mut z = DnsZone::new();
        z.add(
            Network::Wifi,
            "www.youtube.com",
            Ipv4Addr::new(128, 119, 1, 10),
        );
        z.add(
            Network::Cellular,
            "www.youtube.com",
            Ipv4Addr::new(172, 16, 9, 10),
        );
        z.add(
            Network::Wifi,
            "r1.youtube-video.example",
            Ipv4Addr::new(128, 119, 40, 1),
        );
        z.add(
            Network::Wifi,
            "r1.youtube-video.example",
            Ipv4Addr::new(128, 119, 40, 2),
        );
        z.add(
            Network::Cellular,
            "r1.youtube-video.example",
            Ipv4Addr::new(172, 16, 40, 1),
        );
        z
    }

    #[test]
    fn views_differ_per_network() {
        let z = zone();
        let wifi = z.lookup(Network::Wifi, "www.youtube.com").unwrap();
        let lte = z.lookup(Network::Cellular, "www.youtube.com").unwrap();
        assert_ne!(
            wifi.addrs, lte.addrs,
            "source diversity: per-network answers"
        );
    }

    #[test]
    fn multiple_replicas_in_one_view() {
        let z = zone();
        let ans = z.lookup(Network::Wifi, "r1.youtube-video.example").unwrap();
        assert_eq!(ans.addrs.len(), 2, "failover list within the network");
    }

    #[test]
    fn nxdomain_for_unknown_names() {
        let z = zone();
        assert!(matches!(
            z.lookup(Network::Wifi, "nosuch.example"),
            Err(DnsError::NxDomain(_))
        ));
    }

    #[test]
    fn resolver_charges_latency_then_caches() {
        let z = zone();
        let mut r = DnsResolver::new(Network::Wifi);
        let rtt = SimDuration::from_millis(25);
        let t0 = SimTime::from_secs(1);
        let (ans1, ready1) = r.resolve(&z, "www.youtube.com", t0, rtt).unwrap();
        assert_eq!(ready1, t0 + rtt + SimDuration::from_millis(8));
        // Cache hit: immediate.
        let t1 = ready1 + SimDuration::from_secs(1);
        let (ans2, ready2) = r.resolve(&z, "www.youtube.com", t1, rtt).unwrap();
        assert_eq!(ready2, t1, "cache hit is free");
        assert_eq!(ans1, ans2);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let z = zone();
        let mut r = DnsResolver::new(Network::Wifi);
        let rtt = SimDuration::from_millis(25);
        let (_ans, ready) = r
            .resolve(&z, "www.youtube.com", SimTime::ZERO, rtt)
            .unwrap();
        let after_ttl = ready + SimDuration::from_secs(301);
        let (_, ready2) = r.resolve(&z, "www.youtube.com", after_ttl, rtt).unwrap();
        assert!(ready2 > after_ttl, "re-query after TTL expiry");
    }

    #[test]
    fn flush_clears_cache() {
        let z = zone();
        let mut r = DnsResolver::new(Network::Wifi);
        let rtt = SimDuration::from_millis(25);
        let _ = r
            .resolve(&z, "www.youtube.com", SimTime::ZERO, rtt)
            .unwrap();
        r.flush();
        let t = SimTime::from_secs(1);
        let (_, ready) = r.resolve(&z, "www.youtube.com", t, rtt).unwrap();
        assert!(ready > t);
    }
}
