//! Signature cipher for copyrighted videos.
//!
//! Paper footnote 1: "As of July 2014, YouTube has applied algorithms to
//! encode copyrighted video signatures. Since these signatures are needed to
//! contact the video servers, for copyrighted videos, an additional
//! operation is required to fetch the video web page containing a decoder to
//! decipher the video signature."
//!
//! Historically that "decoder" was a small JavaScript routine composed of
//! three primitive operations applied to the signature string: *reverse*,
//! *swap the first char with position n*, and *splice off the first n
//! chars*. This module reproduces that scheme: the proxy enciphers the
//! signature; the player must fetch the [`DecoderScript`] (costing an extra
//! round trip in the bootstrap) and run it to recover the signature the
//! video server accepts.

use msim_core::rng::Prng;
use std::fmt;

/// Why a signature could not be deciphered.
///
/// Fuzz-found: the cipher ops permute *bytes*, so running them over a
/// non-ASCII signature (e.g. `Reverse` over a multi-byte UTF-8 sequence)
/// produced invalid UTF-8 and paniced when the result was re-assembled into
/// a `String`. Untrusted input goes through
/// [`DecoderScript::try_decipher`], which reports this as a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CipherError {
    /// The signature contains a non-ASCII byte; cipher ops are only closed
    /// over ASCII strings.
    NonAsciiSignature {
        /// Byte offset of the first non-ASCII byte.
        offset: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for CipherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipherError::NonAsciiSignature { offset, byte } => write!(
                f,
                "signature byte {byte:#04x} at offset {offset} is not ASCII"
            ),
        }
    }
}

impl std::error::Error for CipherError {}

/// One primitive cipher operation (mirrors the historical JS decoders).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CipherOp {
    /// Reverse the signature.
    Reverse,
    /// Swap position 0 with position `n % len`.
    Swap(usize),
    /// Remove the first `n` characters.
    Splice(usize),
}

impl CipherOp {
    fn apply(&self, sig: &mut Vec<u8>) {
        match *self {
            CipherOp::Reverse => sig.reverse(),
            CipherOp::Swap(n) => {
                if !sig.is_empty() {
                    let m = n % sig.len();
                    sig.swap(0, m);
                }
            }
            CipherOp::Splice(n) => {
                let n = n.min(sig.len());
                sig.drain(..n);
            }
        }
    }
}

/// The decoder program: the op sequence that *deciphers* a signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecoderScript {
    ops: Vec<CipherOp>,
}

impl DecoderScript {
    /// Runs the decoder over an enciphered signature from a *trusted*
    /// source (the emulated service only enciphers ASCII signatures).
    ///
    /// # Panics
    ///
    /// Panics on non-ASCII input; use [`DecoderScript::try_decipher`] for
    /// untrusted data.
    pub fn decipher(&self, enciphered: &str) -> String {
        self.try_decipher(enciphered).expect(
            "decipher() requires an ASCII signature; use try_decipher() for untrusted input",
        )
    }

    /// Runs the decoder over an arbitrary signature, rejecting non-ASCII
    /// input with a typed error instead of panicking mid-permutation.
    pub fn try_decipher(&self, enciphered: &str) -> Result<String, CipherError> {
        if let Some((offset, &byte)) = enciphered
            .as_bytes()
            .iter()
            .enumerate()
            .find(|(_, b)| !b.is_ascii())
        {
            return Err(CipherError::NonAsciiSignature { offset, byte });
        }
        let mut sig = enciphered.as_bytes().to_vec();
        for op in &self.ops {
            op.apply(&mut sig);
        }
        // The ops permute/drop bytes of an all-ASCII input, so the result
        // is ASCII and this cannot fail.
        Ok(String::from_utf8(sig).expect("ASCII is closed under cipher ops"))
    }

    /// The op sequence (for inspection / serialisation into the "video web
    /// page").
    pub fn ops(&self) -> &[CipherOp] {
        &self.ops
    }
}

/// The server-side cipher: enciphers true signatures and can produce the
/// decoder script the client needs.
///
/// Note the historical quirk this models: `Splice` is lossy, so the *server*
/// pads the signature before enciphering; the pad is what splices discard
/// during deciphering. Concretely the server enciphers by running the
/// decoder program backwards with inverse ops, inserting pad characters
/// where the decoder will splice them off.
#[derive(Clone, Debug)]
pub struct SignatureCipher {
    decoder: DecoderScript,
    pad_char: u8,
}

impl SignatureCipher {
    /// Generates a cipher with `n_ops` operations from a seeded RNG
    /// (different videos/pages get different decoders, like the rotating JS
    /// players did).
    pub fn generate(rng: &mut Prng, n_ops: usize) -> SignatureCipher {
        assert!(n_ops > 0, "cipher needs at least one op");
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let op = match rng.below(3) {
                0 => CipherOp::Reverse,
                1 => CipherOp::Swap(1 + rng.below(20) as usize),
                _ => CipherOp::Splice(1 + rng.below(3) as usize),
            };
            ops.push(op);
        }
        SignatureCipher {
            decoder: DecoderScript { ops },
            pad_char: b'A',
        }
    }

    /// The decoder script to embed in the "video web page".
    pub fn decoder(&self) -> DecoderScript {
        self.decoder.clone()
    }

    /// Enciphers a true signature such that
    /// `decoder.decipher(encipher(sig)) == sig`.
    pub fn encipher(&self, signature: &str) -> String {
        let mut sig = signature.as_bytes().to_vec();
        // Invert the decoder ops in reverse order.
        for op in self.decoder.ops.iter().rev() {
            match *op {
                CipherOp::Reverse => sig.reverse(),
                CipherOp::Swap(n) => {
                    if !sig.is_empty() {
                        let m = n % sig.len();
                        sig.swap(0, m); // swap is self-inverse at fixed len
                    }
                }
                CipherOp::Splice(n) => {
                    // Decoder removes n chars from the front; pre-pend pad.
                    let pad = vec![self.pad_char; n];
                    let mut padded = pad;
                    padded.extend_from_slice(&sig);
                    sig = padded;
                }
            }
        }
        String::from_utf8(sig).expect("ascii")
    }
}

/// Generates a plausible raw video signature (hex-ish, 40 chars, like the
/// historical `signature=` parameter).
pub fn generate_signature(rng: &mut Prng) -> String {
    const HEX: &[u8] = b"0123456789ABCDEF";
    let mut s = Vec::with_capacity(40);
    for i in 0..40 {
        if i == 8 || i == 16 {
            s.push(b'.');
        } else {
            s.push(HEX[rng.below(16) as usize]);
        }
    }
    String::from_utf8(s).expect("ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decipher_inverts_encipher() {
        let mut rng = Prng::new(1);
        for n_ops in 1..=8 {
            let cipher = SignatureCipher::generate(&mut rng, n_ops);
            let sig = generate_signature(&mut rng);
            let enc = cipher.encipher(&sig);
            let dec = cipher.decoder().decipher(&enc);
            assert_eq!(dec, sig, "n_ops={n_ops} enc={enc}");
        }
    }

    #[test]
    fn enciphered_differs_from_plain() {
        let mut rng = Prng::new(2);
        let cipher = SignatureCipher::generate(&mut rng, 5);
        let sig = generate_signature(&mut rng);
        let enc = cipher.encipher(&sig);
        assert_ne!(enc, sig, "cipher must actually scramble");
    }

    #[test]
    fn splice_only_cipher_pads_correctly() {
        let cipher = SignatureCipher {
            decoder: DecoderScript {
                ops: vec![CipherOp::Splice(3), CipherOp::Splice(2)],
            },
            pad_char: b'A',
        };
        let sig = "HELLO";
        let enc = cipher.encipher(sig);
        assert_eq!(enc.len(), sig.len() + 5);
        assert_eq!(cipher.decoder().decipher(&enc), sig);
    }

    #[test]
    fn swap_is_self_inverse() {
        let cipher = SignatureCipher {
            decoder: DecoderScript {
                ops: vec![CipherOp::Swap(7)],
            },
            pad_char: b'A',
        };
        let sig = "0123456789";
        assert_eq!(cipher.decoder().decipher(&cipher.encipher(sig)), sig);
    }

    #[test]
    fn ops_on_empty_signature_do_not_panic() {
        let script = DecoderScript {
            ops: vec![CipherOp::Reverse, CipherOp::Swap(3), CipherOp::Splice(2)],
        };
        assert_eq!(script.decipher(""), "");
    }

    // Fuzz-promoted: Reverse over a multi-byte UTF-8 sequence used to
    // produce invalid UTF-8 and panic in the String re-assembly.
    #[test]
    fn non_ascii_signature_is_a_typed_error_not_a_panic() {
        let script = DecoderScript {
            ops: vec![CipherOp::Reverse],
        };
        assert_eq!(
            script.try_decipher("café"),
            Err(CipherError::NonAsciiSignature {
                offset: 3,
                byte: 0xC3
            })
        );
        // Plain ASCII still deciphers through the fallible path.
        assert_eq!(script.try_decipher("abc").unwrap(), "cba");
    }

    #[test]
    fn generated_signatures_look_right() {
        let mut rng = Prng::new(3);
        let sig = generate_signature(&mut rng);
        assert_eq!(sig.len(), 40);
        assert_eq!(sig.matches('.').count(), 2);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Roundtrip holds for arbitrary op programs and signatures.
            #[test]
            fn arbitrary_programs_roundtrip(
                seed in any::<u64>(),
                n_ops in 1usize..10,
                sig in "[0-9A-F]{10,60}",
            ) {
                let mut rng = Prng::new(seed);
                let cipher = SignatureCipher::generate(&mut rng, n_ops);
                let enc = cipher.encipher(&sig);
                prop_assert_eq!(cipher.decoder().decipher(&enc), sig);
            }
        }
    }
}
