//! The assembled emulated YouTube service.
//!
//! Wires together the catalog, per-network DNS views, web proxies, video
//! servers, token minting, and the signature cipher into one façade the
//! player drivers talk to. The topology mirrors §5: one web proxy and `k`
//! video-server replicas per network ("Each type of server is hosted in two
//! different UMass subnets for source diversity").

use crate::catalog::Catalog;
use crate::dns::{DnsZone, Network};
use crate::proxy::{build_video_info, WebProxyServer};
use crate::server::{FailurePlan, PacePolicy, ServerId, VideoServer};
use crate::sig::{generate_signature, DecoderScript, SignatureCipher};
use crate::token::{AccessToken, Operations};
use crate::video::VideoId;
use msim_core::rng::Prng;
use msim_core::time::SimTime;
use msim_http::StatusCode;
use msim_json::Value;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Configuration for assembling a service instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Video-server replicas per network (paper testbed: 2 subnets).
    pub servers_per_network: u32,
    /// Pacing applied by every video server (None = testbed profile;
    /// Some = YouTube-service profile with Trickle-style limiting).
    pub pacing: Option<PacePolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            servers_per_network: 2,
            pacing: None,
        }
    }
}

/// The emulated service.
pub struct YoutubeService {
    catalog: Catalog,
    zone: DnsZone,
    proxies: Vec<WebProxyServer>,
    servers: Vec<VideoServer>,
    secret: u64,
    cipher: SignatureCipher,
    /// Per-video true signatures, minted on first use.
    signatures: BTreeMap<String, String>,
    rng: Prng,
}

fn subnet_base(network: Network) -> [u8; 2] {
    match network {
        Network::Wifi => [128, 119], // UMass-style subnet
        Network::Cellular => [172, 16],
        Network::Ethernet => [192, 88], // wired campus attachment
    }
}

/// The well-known front-end name.
pub const PROXY_DOMAIN: &str = "www.youtube.com";

impl YoutubeService {
    /// Assembles a service with the given catalog and config, seeded
    /// deterministically.
    pub fn new(seed: u64, catalog: Catalog, config: ServiceConfig) -> YoutubeService {
        let mut rng = Prng::new(seed ^ 0x5eed_5eed_0000_0001);
        let cipher = SignatureCipher::generate(&mut rng.fork(), 5);
        let mut zone = DnsZone::new();
        let mut proxies = Vec::new();
        let mut servers = Vec::new();
        let mut next_id = 0u32;
        for network in Network::ALL {
            let [a, b] = subnet_base(network);
            let proxy_addr = Ipv4Addr::new(a, b, 1, 10);
            zone.add(network, PROXY_DOMAIN, proxy_addr);
            proxies.push(WebProxyServer::new(network, proxy_addr));
            for replica in 0..config.servers_per_network {
                next_id += 1;
                let domain = format!("r{}.{}.youtube-video.example", replica + 1, network.name());
                let addr = Ipv4Addr::new(a, b, 40, (replica + 1) as u8);
                zone.add(network, &domain, addr);
                let mut server = VideoServer::new(ServerId(next_id), domain, addr, network);
                if let Some(pace) = config.pacing {
                    server = server.with_pacing(pace);
                }
                servers.push(server);
            }
        }
        YoutubeService {
            catalog,
            zone,
            proxies,
            servers,
            secret: Prng::new(seed ^ 0x70ce_77e5).next_u64(),
            cipher,
            signatures: BTreeMap::new(),
            rng,
        }
    }

    /// The DNS zone (hand to per-interface resolvers).
    pub fn zone(&self) -> &DnsZone {
        &self.zone
    }

    /// The catalog being served.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The web proxy reachable from `network`.
    pub fn proxy(&self, network: Network) -> &WebProxyServer {
        self.proxies
            .iter()
            .find(|p| p.network == network)
            .expect("a proxy exists per network")
    }

    /// All video servers reachable from `network`, preference-ordered
    /// (least-loaded first, then by id — the load-aware selection of the
    /// paper's \[3\]).
    pub fn servers_in(&self, network: Network) -> Vec<&VideoServer> {
        let mut list: Vec<&VideoServer> = self
            .servers
            .iter()
            .filter(|s| s.network == network)
            .collect();
        list.sort_by_key(|s| (s.load(), s.id));
        list
    }

    /// Mutable access to a server by address (failure injection, session
    /// accounting).
    pub fn server_mut(&mut self, addr: Ipv4Addr) -> Option<&mut VideoServer> {
        self.servers.iter_mut().find(|s| s.addr == addr)
    }

    /// Server lookup by address.
    pub fn server(&self, addr: Ipv4Addr) -> Option<&VideoServer> {
        self.servers.iter().find(|s| s.addr == addr)
    }

    /// Server lookup by domain name.
    pub fn server_by_domain(&self, domain: &str) -> Option<&VideoServer> {
        self.servers.iter().find(|s| s.domain == domain)
    }

    /// Mutable access to `network`'s `replica`-th server in id order —
    /// the stable addressing a fleet uses to inject shared load without
    /// knowing the service's subnet scheme.
    pub fn replica_mut(&mut self, network: Network, replica: u32) -> Option<&mut VideoServer> {
        let mut list: Vec<&mut VideoServer> = self
            .servers
            .iter_mut()
            .filter(|s| s.network == network)
            .collect();
        list.sort_by_key(|s| s.id);
        list.into_iter().nth(replica as usize)
    }

    /// True when no server in `network` carries an active session — the
    /// precondition under which a watch request's JSON is a pure function
    /// of `(network, client_ip, now)` (load-aware server ordering cannot
    /// differ), which is what lets session hosts cache bootstrap results.
    pub fn network_is_idle(&self, network: Network) -> bool {
        self.servers
            .iter()
            .filter(|s| s.network == network)
            .all(|s| s.load() == 0)
    }

    /// Injects a failure window into the server at `addr` (replaces any
    /// previous plan — scenarios inject one plan each).
    pub fn fail_server(&mut self, addr: Ipv4Addr, from: SimTime, until: SimTime) {
        if let Some(s) = self.server_mut(addr) {
            s.set_failures(FailurePlan::windows(vec![(from, until)]));
        }
    }

    /// Installs a multi-window failure plan on the server at `addr`
    /// (failure-storm scenarios inject several windows per server).
    pub fn fail_server_windows(&mut self, addr: Ipv4Addr, windows: Vec<(SimTime, SimTime)>) {
        if let Some(s) = self.server_mut(addr) {
            s.set_failures(FailurePlan::windows(windows));
        }
    }

    /// Installs overload windows on the server at `addr`: inside each
    /// window it answers 503 as if its session capacity were exhausted
    /// (chaos injection). Cleared by [`YoutubeService::reset_sessions`].
    pub fn overload_server_windows(&mut self, addr: Ipv4Addr, windows: Vec<(SimTime, SimTime)>) {
        if let Some(s) = self.server_mut(addr) {
            s.set_overload(FailurePlan::windows(windows));
        }
    }

    /// Returns the service to its pre-session state: every server's load
    /// and failure plan is cleared. [`SessionHost`] calls this between
    /// batched sessions so a warmed service behaves exactly like a freshly
    /// assembled one (DNS zone, cipher, and signature cache are immutable
    /// or content-only and are deliberately kept).
    ///
    /// [`SessionHost`]: ../../msplayer_core/sim/struct.SessionHost.html
    pub fn reset_sessions(&mut self) {
        for s in &mut self.servers {
            s.reset_session_state();
        }
    }

    /// Handles a watch request arriving at the `network` proxy: performs the
    /// catalog lookup, mints the token, selects servers, enciphers the
    /// signature for copyrighted videos, and returns the JSON object.
    ///
    /// Timing is *not* applied here — drivers charge
    /// [`WebProxyServer::json_ready_after`] on the wire.
    pub fn watch_request(
        &mut self,
        network: Network,
        video_id: VideoId,
        client_ip: &str,
        now: SimTime,
    ) -> Result<Value, StatusCode> {
        let Some(video) = self.catalog.get(video_id).cloned() else {
            return Err(StatusCode::NOT_FOUND);
        };
        let token = AccessToken::issue(self.secret, video_id, client_ip, Operations::ALL, now);
        let enciphered = if video.copyrighted {
            let sig = self
                .signatures
                .entry(video_id.as_str().to_string())
                .or_insert_with(|| generate_signature(&mut self.rng))
                .clone();
            Some(self.cipher.encipher(&sig))
        } else {
            None
        };
        let servers = self.servers_in(network);
        if servers.is_empty() {
            return Err(StatusCode::SERVICE_UNAVAILABLE);
        }
        Ok(build_video_info(
            &video,
            crate::format::ITAGS,
            &servers,
            &token,
            client_ip,
            enciphered.as_deref(),
        ))
    }

    /// The decoder script embedded in the "video web page" (fetched by the
    /// player for copyrighted videos, paper footnote 1).
    pub fn decoder_page(&self) -> DecoderScript {
        self.cipher.decoder()
    }

    /// Validates a range request for one format (`itag`) of the video
    /// hitting the server at `addr`. Checks failure windows, token, (for
    /// copyrighted videos) the deciphered signature, and that the requested
    /// itag is a profile the servers actually maintain. On success returns
    /// the server's pacing policy.
    #[allow(clippy::too_many_arguments)]
    pub fn check_range_request(
        &self,
        addr: Ipv4Addr,
        now: SimTime,
        video_id: VideoId,
        client_ip: &str,
        token_wire: &str,
        signature: Option<&str>,
        itag: u32,
    ) -> Result<Option<PacePolicy>, StatusCode> {
        let Some(server) = self.server(addr) else {
            return Err(StatusCode::NOT_FOUND);
        };
        server.check_range_request(self.secret, now, video_id, client_ip, token_wire)?;
        if let Some(video) = self.catalog.get(video_id) {
            if video.copyrighted {
                let expected = self.signatures.get(video_id.as_str());
                match (expected, signature) {
                    (Some(exp), Some(got)) if exp == got => {}
                    _ => return Err(StatusCode::FORBIDDEN),
                }
            }
        } else {
            return Err(StatusCode::NOT_FOUND);
        }
        if crate::format::by_itag(itag).is_none() {
            return Err(StatusCode::FORBIDDEN);
        }
        Ok(server.pace())
    }

    /// Pre-validates the *time-independent* half of range-request admission
    /// — token wire form, MAC, video/client/operation binding, catalog
    /// presence, and (for copyrighted videos) the deciphered signature —
    /// into a reusable [`StreamGrant`] covering every format in `itags`
    /// that the service actually maintains (the client's quality ladder:
    /// one entry for a fixed-rate session, several for a closed-loop ABR
    /// session that may switch itags mid-stream).
    ///
    /// A session performs these checks with identical inputs on every
    /// chunk; real CDNs amortize exactly this with session tickets. Only
    /// the per-request state (server failure windows, overload, token
    /// expiry, ladder membership of the requested itag) is left for request
    /// time, so [`YoutubeService::check_range_request_granted`] returns the
    /// same verdict as [`YoutubeService::check_range_request`] for every
    /// `(addr, now, itag)` — asserted by the
    /// `grant_matches_per_request_checks` test.
    pub fn grant_stream(
        &self,
        video_id: VideoId,
        client_ip: &str,
        token_wire: &str,
        signature: Option<&str>,
        itags: &[u32],
    ) -> StreamGrant {
        // Probe the token's static checks at its issue instant, which is
        // always inside the validity window: any error reported here is
        // time-independent. The token verdict and the content (catalog /
        // signature) verdict are kept separate so the per-request path can
        // interleave the expiry check between them, exactly where the full
        // path evaluates it.
        let (token_verdict, expires_at) = match AccessToken::from_wire(token_wire) {
            Err(_) => (Err(StatusCode::FORBIDDEN), SimTime::MAX),
            Ok(token) => (
                token
                    .validate(
                        self.secret,
                        token.issued_at,
                        video_id,
                        client_ip,
                        Operations::STREAM,
                    )
                    .map_err(|_| StatusCode::FORBIDDEN),
                token.expires_at(),
            ),
        };
        let content_verdict = match self.catalog.get(video_id) {
            None => Err(StatusCode::NOT_FOUND),
            Some(video) if video.copyrighted => {
                let expected = self.signatures.get(video_id.as_str());
                match (expected, signature) {
                    (Some(exp), Some(got)) if exp == got => Ok(()),
                    _ => Err(StatusCode::FORBIDDEN),
                }
            }
            Some(_) => Ok(()),
        };
        // Only profiles the format table maintains are grantable; a ladder
        // entry the service does not know simply is not granted, and range
        // requests for it are rejected at request time exactly as the full
        // path rejects unknown itags.
        let granted_itags = itags
            .iter()
            .copied()
            .filter(|&itag| crate::format::by_itag(itag).is_some())
            .collect();
        msim_core::telemetry::count("msp_grants_issued_total", 1);
        StreamGrant {
            token_verdict,
            expires_at,
            content_verdict,
            granted_itags,
        }
    }

    /// Per-request admission over a pre-validated [`StreamGrant`], in the
    /// full path's exact order — failure windows / overload, token checks
    /// (with expiry evaluated at `now`), catalog / signature, then the
    /// requested format — so the verdicts are bit-identical to
    /// [`YoutubeService::check_range_request`], without re-parsing or
    /// re-MAC-ing the token per chunk.
    pub fn check_range_request_granted(
        &self,
        addr: Ipv4Addr,
        now: SimTime,
        grant: &StreamGrant,
        itag: u32,
    ) -> Result<Option<PacePolicy>, StatusCode> {
        let result = self.check_granted_inner(addr, now, grant, itag);
        if msim_core::telemetry::enabled() {
            let verdict = match &result {
                Ok(_) => "ok",
                Err(status) => match status.0 {
                    403 => "403",
                    404 => "404",
                    500 => "500",
                    503 => "503",
                    _ => "other",
                },
            };
            msim_core::telemetry::count_with(
                "msp_admission_checks_total",
                &[("verdict", verdict)],
                1,
            );
        }
        result
    }

    fn check_granted_inner(
        &self,
        addr: Ipv4Addr,
        now: SimTime,
        grant: &StreamGrant,
        itag: u32,
    ) -> Result<Option<PacePolicy>, StatusCode> {
        let Some(server) = self.server(addr) else {
            return Err(StatusCode::NOT_FOUND);
        };
        server.admit_at(now)?;
        grant.token_verdict?;
        if now > grant.expires_at {
            return Err(StatusCode::FORBIDDEN);
        }
        grant.content_verdict?;
        if !grant.granted_itags.contains(&itag) {
            return Err(StatusCode::FORBIDDEN);
        }
        Ok(server.pace())
    }
}

/// A pre-validated streaming authorisation (see
/// [`YoutubeService::grant_stream`]): the outcomes of every
/// time-independent admission check, the token's expiry instant, and the
/// set of formats (itags) the grant covers — a closed-loop ABR session is
/// granted its whole quality ladder once and may then switch the streamed
/// itag mid-session without re-authorising.
#[derive(Clone, Debug)]
pub struct StreamGrant {
    /// Verdict of the token's static checks (wire form, MAC, video /
    /// client / operation binding).
    token_verdict: Result<(), StatusCode>,
    /// Requests after this instant are rejected with 403.
    expires_at: SimTime,
    /// Verdict of the content checks (catalog presence, deciphered
    /// signature), evaluated after expiry in the full path's order.
    content_verdict: Result<(), StatusCode>,
    /// Formats the grant covers; range requests for any other itag are
    /// rejected with 403.
    granted_itags: Vec<u32>,
}

impl StreamGrant {
    /// The formats this grant admits.
    pub fn granted_itags(&self) -> &[u32] {
        &self.granted_itags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::parse_video_info;
    use msim_core::time::SimDuration;

    /// Every itag the format table maintains — the widest possible grant
    /// ladder, under which the granted path must agree with the full path
    /// for any known itag.
    const ALL_ITAGS: &[u32] = &[17, 36, 18, 43, 22, 37];

    fn service() -> (YoutubeService, VideoId) {
        let (catalog, id) = Catalog::single_test_video();
        (
            YoutubeService::new(7, catalog, ServiceConfig::default()),
            id,
        )
    }

    #[test]
    fn topology_has_proxy_and_replicas_per_network() {
        let (svc, _) = service();
        for network in Network::ALL {
            let proxy_ans = svc.zone().lookup(network, PROXY_DOMAIN).unwrap();
            assert_eq!(proxy_ans.addrs.len(), 1);
            let servers = svc.servers_in(network);
            assert_eq!(servers.len(), 2, "two replicas per network");
            for s in servers {
                let ans = svc.zone().lookup(network, &s.domain).unwrap();
                assert_eq!(ans.addrs, vec![s.addr]);
            }
        }
    }

    #[test]
    fn watch_request_roundtrip_and_token_validates() {
        let (mut svc, id) = service();
        let now = SimTime::from_secs(2);
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", now)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        assert_eq!(info.video_id, id.as_str());
        assert!(!info.copyrighted);
        let server_addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        let pace = svc
            .check_range_request(server_addr, now, id, "203.0.113.7", &info.token, None, 22)
            .unwrap();
        assert!(pace.is_none(), "testbed profile is unpaced");
    }

    #[test]
    fn unknown_video_is_404() {
        let (mut svc, _) = service();
        let other = VideoId::new("dQw4w9WgXcQ").unwrap();
        assert_eq!(
            svc.watch_request(Network::Wifi, other, "203.0.113.7", SimTime::ZERO),
            Err(StatusCode::NOT_FOUND)
        );
    }

    #[test]
    fn copyrighted_video_requires_deciphered_signature() {
        let mut catalog = Catalog::new();
        let id = VideoId::new("c0pyRighted").unwrap();
        catalog.add(crate::video::Video::new(
            id,
            "Protected",
            "studio",
            SimDuration::from_secs(120),
            true,
        ));
        let mut svc = YoutubeService::new(3, catalog, ServiceConfig::default());
        let json = svc
            .watch_request(Network::Cellular, id, "198.51.100.9", SimTime::ZERO)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let enc = info.enciphered_sig.clone().expect("sig present");
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;

        // Without a signature: 403.
        assert_eq!(
            svc.check_range_request(
                addr,
                SimTime::ZERO,
                id,
                "198.51.100.9",
                &info.token,
                None,
                22
            ),
            Err(StatusCode::FORBIDDEN)
        );
        // With the enciphered signature passed as-is: still 403.
        assert_eq!(
            svc.check_range_request(
                addr,
                SimTime::ZERO,
                id,
                "198.51.100.9",
                &info.token,
                Some(&enc),
                22,
            ),
            Err(StatusCode::FORBIDDEN)
        );
        // Deciphering with the page's decoder: accepted.
        let deciphered = svc.decoder_page().decipher(&enc);
        assert_eq!(
            svc.check_range_request(
                addr,
                SimTime::ZERO,
                id,
                "198.51.100.9",
                &info.token,
                Some(&deciphered),
                22,
            ),
            Ok(None)
        );
    }

    #[test]
    fn token_from_one_network_fails_for_other_client_ip() {
        let (mut svc, id) = service();
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::ZERO)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        assert_eq!(
            svc.check_range_request(
                addr,
                SimTime::ZERO,
                id,
                "198.51.100.9",
                &info.token,
                None,
                22
            ),
            Err(StatusCode::FORBIDDEN),
            "token is bound to the requesting interface's public IP"
        );
    }

    #[test]
    fn failed_server_rejects_until_recovery() {
        let (mut svc, id) = service();
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::ZERO)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        svc.fail_server(addr, SimTime::from_secs(5), SimTime::from_secs(10));
        assert!(svc
            .check_range_request(
                addr,
                SimTime::from_secs(7),
                id,
                "203.0.113.7",
                &info.token,
                None,
                22,
            )
            .is_err());
        assert!(svc
            .check_range_request(
                addr,
                SimTime::from_secs(12),
                id,
                "203.0.113.7",
                &info.token,
                None,
                22,
            )
            .is_ok());
        // The other replica in the same network stays healthy → failover target.
        let backup = svc
            .servers_in(Network::Wifi)
            .into_iter()
            .find(|s| s.addr != addr)
            .unwrap()
            .addr;
        assert!(svc
            .check_range_request(
                backup,
                SimTime::from_secs(7),
                id,
                "203.0.113.7",
                &info.token,
                None,
                22,
            )
            .is_ok());
    }

    #[test]
    fn load_aware_ordering() {
        let (mut svc, _) = service();
        let first = svc.servers_in(Network::Wifi)[0].addr;
        svc.server_mut(first).unwrap().begin_session();
        svc.server_mut(first).unwrap().begin_session();
        let reordered = svc.servers_in(Network::Wifi);
        assert_ne!(reordered[0].addr, first, "loaded server demoted");
    }

    #[test]
    fn pacing_config_propagates() {
        let (catalog, id) = Catalog::single_test_video();
        let pace = PacePolicy {
            burst: msim_core::units::ByteSize::mb(2),
            rate: msim_core::units::BitRate::mbps(5.0),
        };
        let mut svc = YoutubeService::new(
            1,
            catalog,
            ServiceConfig {
                servers_per_network: 2,
                pacing: Some(pace),
            },
        );
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::ZERO)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        let got = svc
            .check_range_request(
                addr,
                SimTime::ZERO,
                id,
                "203.0.113.7",
                &info.token,
                None,
                22,
            )
            .unwrap();
        assert_eq!(got, Some(pace));
    }

    #[test]
    fn grant_matches_per_request_checks() {
        // The grant path must return exactly the verdict of the full
        // per-request path for every (condition, now) combination the
        // simulator can produce.
        let (mut svc, id) = service();
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::from_secs(1))
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        svc.fail_server(addr, SimTime::from_secs(100), SimTime::from_secs(200));

        // A token that MAC-validates for a video the catalog does not
        // carry: the full path reports token expiry (checked inside
        // `validate`) before the catalog lookup, so the grant path must
        // interleave expiry between its token and content verdicts.
        let ghost = VideoId::new("dQw4w9WgXcQ").unwrap();
        let ghost_wire = AccessToken::issue(
            svc.secret,
            ghost,
            "203.0.113.7",
            Operations::ALL,
            SimTime::from_secs(1),
        )
        .to_wire();

        let cases: Vec<(&str, VideoId, StreamGrant, String)> = vec![
            (
                "valid token",
                id,
                svc.grant_stream(id, "203.0.113.7", &info.token, None, ALL_ITAGS),
                info.token.clone(),
            ),
            (
                "wrong client ip",
                id,
                svc.grant_stream(id, "198.51.100.99", &info.token, None, ALL_ITAGS),
                info.token.clone(),
            ),
            (
                "malformed token",
                id,
                svc.grant_stream(id, "203.0.113.7", "garbage", None, ALL_ITAGS),
                "garbage".to_string(),
            ),
            (
                "uncatalogued video",
                ghost,
                svc.grant_stream(ghost, "203.0.113.7", &ghost_wire, None, ALL_ITAGS),
                ghost_wire,
            ),
        ];
        // Healthy instant, failure window, post-expiry instant, unknown
        // server.
        let instants = [
            SimTime::from_secs(2),
            SimTime::from_secs(150),
            SimTime::from_secs(1) + crate::token::TOKEN_TTL + SimDuration::from_secs(1),
        ];
        for (label, vid, grant, wire) in &cases {
            let client_ip = if label.contains("wrong") {
                "198.51.100.99"
            } else {
                "203.0.113.7"
            };
            for &now in &instants {
                // Sweep every known itag plus an unknown one: with a
                // full-ladder grant, "not granted" and "no such profile"
                // must produce the same verdicts as the full path.
                for &itag in ALL_ITAGS.iter().chain(&[999u32]) {
                    let full =
                        svc.check_range_request(addr, now, *vid, client_ip, wire, None, itag);
                    let granted = svc.check_range_request_granted(addr, now, grant, itag);
                    assert_eq!(full, granted, "{label} itag {itag} at {now}");
                }
            }
            let bogus = Ipv4Addr::new(10, 0, 0, 1);
            assert_eq!(
                svc.check_range_request_granted(bogus, instants[0], grant, 22),
                Err(StatusCode::NOT_FOUND),
                "{label} unknown server"
            );
        }
    }

    #[test]
    fn ladder_grant_covers_exactly_its_rungs() {
        let (mut svc, id) = service();
        let json = svc
            .watch_request(Network::Wifi, id, "203.0.113.7", SimTime::ZERO)
            .unwrap();
        let info = parse_video_info(&json).unwrap();
        let addr = svc.server_by_domain(&info.server_domains[0]).unwrap().addr;
        // A three-rung ladder plus an itag the service does not maintain:
        // the unknown rung is silently not granted.
        let grant = svc.grant_stream(id, "203.0.113.7", &info.token, None, &[18, 22, 37, 999]);
        assert_eq!(grant.granted_itags(), &[18, 22, 37]);
        for itag in [18, 22, 37] {
            assert!(
                svc.check_range_request_granted(addr, SimTime::ZERO, &grant, itag)
                    .is_ok(),
                "granted rung {itag} admitted"
            );
        }
        for itag in [17, 36, 43, 999] {
            assert_eq!(
                svc.check_range_request_granted(addr, SimTime::ZERO, &grant, itag),
                Err(StatusCode::FORBIDDEN),
                "ungranted rung {itag} rejected"
            );
        }
    }
}
