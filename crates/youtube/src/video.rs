//! Video identities and metadata.
//!
//! "Each YouTube video is identified by an 11-literal video ID after
//! `watch?v=` in the URL" (paper §3.1). IDs use the base64url alphabet.

use msim_core::time::SimDuration;
use std::fmt;

/// The 11-character video identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VideoId([u8; 11]);

/// Errors constructing or parsing video IDs / watch URLs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VideoIdError {
    /// The ID is not exactly 11 characters.
    BadLength(usize),
    /// The ID contains a character outside `[A-Za-z0-9_-]`.
    BadCharacter(char),
    /// The URL does not look like a YouTube watch URL.
    NotAWatchUrl(String),
}

impl fmt::Display for VideoIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoIdError::BadLength(n) => write!(f, "video id must be 11 chars, got {n}"),
            VideoIdError::BadCharacter(c) => write!(f, "invalid video id character {c:?}"),
            VideoIdError::NotAWatchUrl(u) => write!(f, "not a watch URL: {u:?}"),
        }
    }
}

impl std::error::Error for VideoIdError {}

fn is_id_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'-' || c == b'_'
}

impl VideoId {
    /// Validates and wraps an 11-character ID.
    pub fn new(s: &str) -> Result<VideoId, VideoIdError> {
        let bytes = s.as_bytes();
        if bytes.len() != 11 {
            return Err(VideoIdError::BadLength(bytes.len()));
        }
        if let Some(&bad) = bytes.iter().find(|&&c| !is_id_char(c)) {
            return Err(VideoIdError::BadCharacter(bad as char));
        }
        let mut id = [0u8; 11];
        id.copy_from_slice(bytes);
        Ok(VideoId(id))
    }

    /// Extracts the ID from a watch URL of the form
    /// `http(s)://www.youtube.com/watch?v=<id>[&...]`.
    pub fn from_watch_url(url: &str) -> Result<VideoId, VideoIdError> {
        let rest = url
            .strip_prefix("https://")
            .or_else(|| url.strip_prefix("http://"))
            .ok_or_else(|| VideoIdError::NotAWatchUrl(url.to_string()))?;
        let rest = rest
            .strip_prefix("www.youtube.com/watch?")
            .or_else(|| rest.strip_prefix("youtube.com/watch?"))
            .ok_or_else(|| VideoIdError::NotAWatchUrl(url.to_string()))?;
        let v = rest
            .split('&')
            .find_map(|pair| pair.strip_prefix("v="))
            .ok_or_else(|| VideoIdError::NotAWatchUrl(url.to_string()))?;
        VideoId::new(v)
    }

    /// The ID as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("validated ascii")
    }

    /// Generates a deterministic pseudo-random ID from an RNG stream.
    pub fn generate(rng: &mut msim_core::rng::Prng) -> VideoId {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
        let mut id = [0u8; 11];
        for slot in &mut id {
            *slot = ALPHABET[rng.below(64) as usize];
        }
        VideoId(id)
    }

    /// Renders the canonical watch URL.
    pub fn watch_url(&self) -> String {
        format!("http://www.youtube.com/watch?v={}", self.as_str())
    }
}

impl fmt::Debug for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VideoId({})", self.as_str())
    }
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Metadata for one catalogued video.
#[derive(Clone, Debug)]
pub struct Video {
    /// The 11-char identifier.
    pub id: VideoId,
    /// Display title.
    pub title: String,
    /// Uploader name.
    pub author: String,
    /// Playback duration.
    pub duration: SimDuration,
    /// Whether the video's signature is enciphered (paper footnote 1:
    /// copyrighted videos need an extra decoder fetch).
    pub copyrighted: bool,
}

impl Video {
    /// Builds a video record.
    pub fn new(
        id: VideoId,
        title: impl Into<String>,
        author: impl Into<String>,
        duration: SimDuration,
        copyrighted: bool,
    ) -> Video {
        Video {
            id,
            title: title.into(),
            author: author.into(),
            duration,
            copyrighted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::rng::Prng;

    #[test]
    fn accepts_the_papers_example_id() {
        // The paper's §3.1 example URL.
        let id = VideoId::new("qjT4T2gU9sM").unwrap();
        assert_eq!(id.as_str(), "qjT4T2gU9sM");
        assert_eq!(id.watch_url(), "http://www.youtube.com/watch?v=qjT4T2gU9sM");
    }

    #[test]
    fn rejects_bad_lengths_and_chars() {
        assert_eq!(VideoId::new("short"), Err(VideoIdError::BadLength(5)));
        assert_eq!(
            VideoId::new("qjT4T2gU9sMx"),
            Err(VideoIdError::BadLength(12))
        );
        assert_eq!(
            VideoId::new("qjT4T2gU9s!"),
            Err(VideoIdError::BadCharacter('!'))
        );
    }

    #[test]
    fn parses_watch_urls() {
        for url in [
            "http://www.youtube.com/watch?v=qjT4T2gU9sM",
            "https://www.youtube.com/watch?v=qjT4T2gU9sM",
            "https://www.youtube.com/watch?v=qjT4T2gU9sM&t=42",
            "https://www.youtube.com/watch?list=PL123&v=qjT4T2gU9sM",
        ] {
            assert_eq!(
                VideoId::from_watch_url(url).unwrap().as_str(),
                "qjT4T2gU9sM",
                "url {url}"
            );
        }
    }

    #[test]
    fn rejects_non_watch_urls() {
        for url in [
            "ftp://www.youtube.com/watch?v=qjT4T2gU9sM",
            "http://vimeo.com/watch?v=qjT4T2gU9sM",
            "http://www.youtube.com/embed/qjT4T2gU9sM",
            "http://www.youtube.com/watch?t=5",
        ] {
            assert!(VideoId::from_watch_url(url).is_err(), "url {url}");
        }
    }

    #[test]
    fn generated_ids_are_valid_and_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            let ida = VideoId::generate(&mut a);
            let idb = VideoId::generate(&mut b);
            assert_eq!(ida, idb);
            assert!(VideoId::new(ida.as_str()).is_ok());
        }
    }
}
