//! The video catalog: what the emulated service can serve.

use crate::format::{VideoFormat, ITAGS};
use crate::video::{Video, VideoId};
use msim_core::rng::Prng;
use msim_core::time::SimDuration;
use std::collections::BTreeMap;

/// A collection of videos, each available in every catalogued format
/// ("multiple profiles of the same video", §2).
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    videos: BTreeMap<String, Video>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Inserts a video (replacing any previous entry with the same ID).
    pub fn add(&mut self, video: Video) {
        self.videos.insert(video.id.as_str().to_string(), video);
    }

    /// Looks a video up by ID.
    pub fn get(&self, id: VideoId) -> Option<&Video> {
        self.videos.get(id.as_str())
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// True when no videos are catalogued.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// All videos in ID order.
    pub fn iter(&self) -> impl Iterator<Item = &Video> {
        self.videos.values()
    }

    /// The formats every video is offered in.
    pub fn formats(&self) -> &'static [VideoFormat] {
        ITAGS
    }

    /// Generates `n` synthetic videos with plausible durations (30 s – 15
    /// min, log-normal-ish) and ~20 % copyrighted, deterministically from
    /// `rng`.
    pub fn synthetic(rng: &mut Prng, n: usize) -> Catalog {
        const ADJECTIVES: &[&str] = &["Amazing", "Epic", "Quiet", "Hidden", "Rapid", "Golden"];
        const NOUNS: &[&str] = &[
            "Cats",
            "Mountains",
            "Streams",
            "Circuits",
            "Planets",
            "Gardens",
        ];
        let mut catalog = Catalog::new();
        for i in 0..n {
            let id = VideoId::generate(rng);
            let secs = rng.lognormal(4.6, 0.7).clamp(30.0, 900.0);
            let title = format!("{} {} #{:03}", rng.choose(ADJECTIVES), rng.choose(NOUNS), i);
            let author = format!("channel-{:02}", rng.below(20));
            let copyrighted = rng.chance(0.2);
            catalog.add(Video::new(
                id,
                title,
                author,
                SimDuration::from_secs_f64(secs),
                copyrighted,
            ));
        }
        catalog
    }

    /// A catalog with a single, known test video: 10 minutes of 720p,
    /// non-copyrighted, with the paper's example ID.
    pub fn single_test_video() -> (Catalog, VideoId) {
        let id = VideoId::new("qjT4T2gU9sM").expect("valid id");
        let mut c = Catalog::new();
        c.add(Video::new(
            id,
            "MSPlayer Test Stream",
            "umass-nets",
            SimDuration::from_secs(600),
            false,
        ));
        (c, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let (catalog, id) = Catalog::single_test_video();
        assert_eq!(catalog.len(), 1);
        let v = catalog.get(id).unwrap();
        assert_eq!(v.duration, SimDuration::from_secs(600));
        assert!(!v.copyrighted);
    }

    #[test]
    fn missing_video_is_none() {
        let (catalog, _) = Catalog::single_test_video();
        let other = VideoId::new("dQw4w9WgXcQ").unwrap();
        assert!(catalog.get(other).is_none());
    }

    #[test]
    fn synthetic_catalog_is_deterministic() {
        let mut a = Prng::new(11);
        let mut b = Prng::new(11);
        let ca = Catalog::synthetic(&mut a, 50);
        let cb = Catalog::synthetic(&mut b, 50);
        assert_eq!(ca.len(), 50);
        let ids_a: Vec<&str> = ca.iter().map(|v| v.id.as_str()).collect();
        let ids_b: Vec<&str> = cb.iter().map(|v| v.id.as_str()).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn synthetic_durations_in_bounds() {
        let mut rng = Prng::new(13);
        let c = Catalog::synthetic(&mut rng, 100);
        for v in c.iter() {
            let s = v.duration.as_secs_f64();
            assert!((30.0..=900.0).contains(&s), "duration {s}");
        }
        // Some but not all copyrighted.
        let n_copy = c.iter().filter(|v| v.copyrighted).count();
        assert!(n_copy > 0 && n_copy < 100, "copyrighted count {n_copy}");
    }

    #[test]
    fn replace_on_duplicate_id() {
        let (mut catalog, id) = Catalog::single_test_video();
        catalog.add(Video::new(
            id,
            "Replaced",
            "x",
            SimDuration::from_secs(1),
            true,
        ));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.get(id).unwrap().title, "Replaced");
    }
}
