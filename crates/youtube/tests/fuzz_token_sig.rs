//! Byte-mutation fuzz targets for the token and signature decoders —
//! the two parsers that consume data a middlebox or hostile CDN edge
//! could have rewritten mid-session.

use msim_core::rng::Prng;
use msim_youtube::sig::SignatureCipher;
use msim_youtube::token::AccessToken;
use proptest::fuzz;

const TOKEN_CORPUS: &[&[u8]] = &[
    b"qjT4T2gU9sM.203_0_113_7.1.100000000.feedbeefdeadcafe",
    b"dQw4w9WgXcQ.10_0_0_1.3.0.0000000000000000",
    b"qjT4T2gU9sM.203_0_113_7.255.18446744073709551615.ffffffffffffffff",
];

const SIG_CORPUS: &[&[u8]] = &[
    b"AAA1B2C3D4.5E6F7A8B.9C0D1E2F3A4B5C6D7E8F",
    b"0123456789ABCDEF0123456789ABCDEF01234567",
    b"",
];

#[test]
fn fuzz_token_from_wire_never_panics_and_accepted_tokens_are_stable() {
    fuzz::run("youtube::token::from_wire", TOKEN_CORPUS, 2_000, |data| {
        let text = String::from_utf8_lossy(data);
        if let Ok(token) = AccessToken::from_wire(&text) {
            // An accepted token's wire form must reparse to the same wire
            // form (to_wire ∘ from_wire is a projection, not lossy).
            let wire = token.to_wire();
            let again = AccessToken::from_wire(&wire)
                .unwrap_or_else(|e| panic!("re-serialised token {wire:?} must parse: {e:?}"));
            assert_eq!(again.to_wire(), wire, "wire form drifted on reparse");
        }
    });
}

#[test]
fn fuzz_try_decipher_never_panics_even_on_non_ascii() {
    let mut rng = Prng::new(7);
    let cipher = SignatureCipher::generate(&mut rng, 6);
    let decoder = cipher.decoder();
    fuzz::run("youtube::sig::try_decipher", SIG_CORPUS, 2_000, |data| {
        let text = String::from_utf8_lossy(data);
        if let Ok(deciphered) = decoder.try_decipher(&text) {
            // Cipher ops are closed over ASCII: accepted inputs yield
            // ASCII output no longer than the input.
            assert!(deciphered.is_ascii());
            assert!(deciphered.len() <= text.len());
        }
        // Non-ASCII input must be the typed error, never a panic.
        if !text.is_ascii() {
            assert!(decoder.try_decipher(&text).is_err());
        }
    });
}

#[test]
fn fuzz_encipher_decipher_roundtrip_under_mutated_signatures() {
    let mut rng = Prng::new(11);
    let cipher = SignatureCipher::generate(&mut rng, 4);
    let decoder = cipher.decoder();
    fuzz::run("youtube::sig::roundtrip", SIG_CORPUS, 1_000, |data| {
        // Only ASCII inputs are valid signatures; mutants that are not
        // simply fall outside the roundtrip contract.
        let Ok(text) = std::str::from_utf8(data) else {
            return;
        };
        if !text.is_ascii() {
            return;
        }
        let enc = cipher.encipher(text);
        assert_eq!(decoder.decipher(&enc), text, "roundtrip broke for {text:?}");
    });
}
