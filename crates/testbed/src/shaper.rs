//! Link shaping for the loopback testbed.
//!
//! The §5 testbed put real Apache servers behind real WiFi/LTE links. Over
//! loopback we recreate the two link properties that matter — bandwidth and
//! round-trip time — on the server side: each response is delayed by one
//! emulated RTT (request propagation + response propagation) and its body is
//! paced by a token bucket at the link rate.

use msim_core::time::SimDuration;
use msim_core::units::BitRate;
use std::time::{Duration, Instant};

/// The emulated link parameters for one served connection.
#[derive(Clone, Copy, Debug)]
pub struct LinkShape {
    /// Bottleneck rate for the body.
    pub rate: BitRate,
    /// Emulated round-trip time (charged once per request).
    pub rtt: SimDuration,
}

impl LinkShape {
    /// A fast, low-latency profile (WiFi-ish on loopback scales).
    pub fn wifi_like() -> LinkShape {
        LinkShape {
            rate: BitRate::mbps(40.0),
            rtt: SimDuration::from_millis(10),
        }
    }

    /// A slower, higher-latency profile (LTE-ish).
    pub fn lte_like() -> LinkShape {
        LinkShape {
            rate: BitRate::mbps(25.0),
            rtt: SimDuration::from_millis(30),
        }
    }
}

/// A token bucket that paces bytes at a configured rate.
///
/// `consume(n)` returns how long the caller must sleep before sending the
/// next block so that long-run throughput matches the rate. The bucket
/// allows a small burst (one refill quantum) so pacing does not add
/// per-block latency at low rates.
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    capacity: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Creates a bucket for `rate`, with a burst capacity of `burst` bytes.
    pub fn new(rate: BitRate, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_sec: rate.bytes_per_sec().max(1.0),
            capacity: burst_bytes.max(1) as f64,
            tokens: burst_bytes.max(1) as f64,
            last_refill: Instant::now(),
        }
    }

    /// Takes `n` bytes of budget; returns how long to sleep first.
    pub fn consume(&mut self, n: u64) -> Duration {
        self.refill();
        self.tokens -= n as f64;
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(-self.tokens / self.rate_bytes_per_sec)
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.capacity);
    }
}

/// Writes `body` to `w` in paced blocks, emulating `shape`.
pub fn write_paced(
    w: &mut impl std::io::Write,
    body: &[u8],
    shape: LinkShape,
) -> std::io::Result<()> {
    const BLOCK: usize = 16 * 1024;
    let mut bucket = TokenBucket::new(shape.rate, BLOCK as u64 * 2);
    for block in body.chunks(BLOCK) {
        let wait = bucket.consume(block.len() as u64);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        w.write_all(block)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_allows_initial_burst() {
        let mut b = TokenBucket::new(BitRate::mbps(8.0), 32 * 1024);
        assert_eq!(b.consume(16 * 1024), Duration::ZERO);
        assert_eq!(b.consume(16 * 1024), Duration::ZERO);
        // Bucket exhausted: the next block must wait.
        let wait = b.consume(16 * 1024);
        assert!(wait > Duration::ZERO);
    }

    #[test]
    fn bucket_long_run_rate_is_correct() {
        // 80 Mbit/s = 10 MB/s; pacing 1 MB through the bucket (sleeping as
        // instructed, like a real sender) should take ≈ 0.1 s.
        let mut b = TokenBucket::new(BitRate::mbps(80.0), 1);
        let start = Instant::now();
        for _ in 0..100 {
            let wait = b.consume(10_000);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        assert!((0.08..0.30).contains(&secs), "took {secs}s");
    }

    #[test]
    fn paced_write_delivers_everything() {
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut out = Vec::new();
        let shape = LinkShape {
            rate: BitRate::mbps(800.0), // fast so the test is quick
            rtt: SimDuration::ZERO,
        };
        write_paced(&mut out, &body, shape).unwrap();
        assert_eq!(out, body);
    }

    #[test]
    fn paced_write_takes_roughly_rate_time() {
        let body = vec![0u8; 125_000]; // 1 second at 1 Mbit/s
        let shape = LinkShape {
            rate: BitRate::mbps(4.0), // 0.25 s expected
            rtt: SimDuration::ZERO,
        };
        let start = Instant::now();
        let mut sink = std::io::sink();
        write_paced(&mut sink, &body, shape).unwrap();
        let took = start.elapsed().as_secs_f64();
        assert!((0.15..0.60).contains(&took), "took {took}s");
    }
}
