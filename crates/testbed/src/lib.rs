//! # msim-testbed — the real-socket loopback testbed
//!
//! The §5 evaluation ran MSPlayer against actual Apache servers over real
//! WiFi/LTE links. This crate rebuilds that testbed on loopback TCP:
//!
//! * [`shaper`] — token-bucket pacing + RTT delay emulating link shapes;
//! * [`server`] — a threaded HTTP/1.1 range server ("Apache") with
//!   keep-alive, failure injection and byte-exact range semantics, plus a
//!   web-proxy daemon serving the JSON video information;
//! * [`driver`] — the socket driver running the *same* sans-I/O
//!   [`msplayer_core::player::Player`] the simulator uses, with one blocking
//!   worker thread per path (mirroring the original player's threads);
//! * [`harness`] — one-call setup: shaped servers + proxies + session.
//!
//! The point of this crate is the sans-I/O proof: every scheduler decision
//! exercised by the deterministic simulator also runs against real sockets
//! moving real bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod harness;
pub mod server;
pub mod shaper;

pub use driver::{run_testbed_session, TestbedSession, TestbedStop};
pub use harness::Testbed;
pub use server::{ProxyDaemon, VideoFileServer};
pub use shaper::{LinkShape, TokenBucket};
