//! # msim-testbed — the real-socket loopback testbed
//!
//! The §5 evaluation ran MSPlayer against actual Apache servers over real
//! WiFi/LTE links. This crate rebuilds that testbed on loopback TCP:
//!
//! * [`shaper`] — token-bucket pacing + RTT delay emulating link shapes;
//! * [`server`] — a threaded HTTP/1.1 range server ("Apache") with
//!   keep-alive, failure injection and byte-exact range semantics, plus a
//!   web-proxy daemon serving the JSON video information;
//! * [`driver`] — the socket driver running the *same* sans-I/O
//!   [`msplayer_core::player::Player`] the simulator uses, with one blocking
//!   worker thread per path (mirroring the original player's threads);
//! * [`harness`] — one-call setup: shaped servers + proxies + session;
//! * [`obs`] — a live `/metrics` + `/jobs` + `/healthz` HTTP endpoint
//!   exposing the in-process [`msim_core::telemetry`] registry;
//! * [`lines`] — line-framed transport plumbing (reader threads, flushed
//!   line writers, a background accept loop) shared with the distributed
//!   sweep service's coordinator/worker protocol;
//! * [`signal`] — the SIGINT/SIGTERM shutdown flag the long-running
//!   binaries poll to flush artifacts before exiting.
//!
//! The point of this crate is the sans-I/O proof: every scheduler decision
//! exercised by the deterministic simulator also runs against real sockets
//! moving real bytes.

// `deny` rather than `forbid`: the [`signal`] module carries the
// workspace's single FFI call (signal-handler registration has no std
// API) under a scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod harness;
pub mod lines;
pub mod obs;
pub mod server;
pub mod shaper;
pub mod signal;

pub use driver::{run_testbed_session, TestbedSession, TestbedStop};
pub use harness::Testbed;
pub use lines::{spawn_line_reader, LineEvent, LineServer, LineWriter};
pub use obs::{JobsProvider, ObsServer};
pub use server::{ProxyDaemon, VideoFileServer};
pub use shaper::{LinkShape, TokenBucket};
pub use signal::{install_shutdown_handler, request_shutdown, shutdown_requested};
