//! Line-framed transport plumbing for control-plane protocols.
//!
//! The distributed sweep service (`msplayer_bench::cluster`) speaks a
//! line-delimited JSON protocol between its coordinator and workers. The
//! byte-moving side of that protocol lives here, next to the rest of the
//! real-socket plumbing: a reader thread that turns any `Read` stream
//! (a child's stdout, a TCP socket) into framed events on a channel, a
//! flushing line writer for the opposite direction, and a nonblocking
//! accept loop (the same shutdown-flag idiom as [`crate::server`]) for
//! the multi-host TCP mode.
//!
//! Frames are single lines: one `\n`-terminated UTF-8 payload per
//! message, no embedded newlines. A line that fails UTF-8 decoding is
//! delivered as [`LineEvent::Garbage`] rather than dropped — a corrupt
//! frame from a sick peer is a scheduling signal, not something to hide.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One event from a framed peer, tagged with the peer id the reader
/// thread was started with.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (without its trailing newline).
    Line(u64, String),
    /// Bytes arrived that do not decode as UTF-8 — a corrupt frame.
    Garbage(u64, usize),
    /// The peer's stream ended (EOF or read error).
    Closed(u64),
}

/// Spawns a reader thread that frames `stream` into lines and forwards
/// them to `tx` tagged with `peer`. The thread exits (after sending
/// [`LineEvent::Closed`]) on EOF, on a read error, or when the receiving
/// side of `tx` is dropped.
pub fn spawn_line_reader<R>(peer: u64, stream: R, tx: Sender<LineEvent>) -> JoinHandle<()>
where
    R: Read + Send + 'static,
{
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                        buf.pop();
                    }
                    let event = match String::from_utf8(std::mem::take(&mut buf)) {
                        Ok(line) => LineEvent::Line(peer, line),
                        Err(e) => LineEvent::Garbage(peer, e.as_bytes().len()),
                    };
                    if tx.send(event).is_err() {
                        return; // receiver gone — nobody cares anymore
                    }
                }
                Err(_) => break,
            }
        }
        let _ = tx.send(LineEvent::Closed(peer));
    })
}

/// A write half that frames messages as flushed lines.
///
/// Every send appends `\n` and flushes, so a message is either fully on
/// the wire or not sent at all from this process's point of view —
/// torn frames can only come from the transport (or a crashing peer),
/// which is exactly what the reader side's garbage handling is for.
pub struct LineWriter {
    sink: Box<dyn Write + Send>,
}

impl LineWriter {
    /// Wraps any writable sink (child stdin, socket write half, …).
    pub fn new(sink: impl Write + Send + 'static) -> LineWriter {
        LineWriter {
            sink: Box::new(sink),
        }
    }

    /// Writes one message as a framed line. `msg` must not contain
    /// newlines (single-line JSON by construction in the cluster
    /// protocol).
    pub fn send_line(&mut self, msg: &str) -> std::io::Result<()> {
        debug_assert!(!msg.contains('\n'), "line frames cannot contain newlines");
        self.sink.write_all(msg.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.sink.flush()
    }
}

/// A listening socket accepting framed peers in the background — the
/// multi-host entry point of the cluster protocol.
///
/// Accepted connections are handed to the caller's channel; the accept
/// loop uses the same nonblocking poll + shutdown flag idiom as the
/// testbed's HTTP servers, so dropping the server always terminates the
/// thread.
pub struct LineServer {
    /// Bound address (useful with a `:0` request).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LineServer {
    /// Binds `addr` and starts accepting; each accepted stream is sent to
    /// `conns` untouched (the caller splits it into reader/writer halves).
    pub fn start(addr: &str, conns: Sender<TcpStream>) -> std::io::Result<LineServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let s2 = shutdown.clone();
        let handle = std::thread::spawn(move || {
            while !s2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        if conns.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(LineServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }
}

impl Drop for LineServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn reader_frames_lines_and_reports_close() {
        let (tx, rx) = mpsc::channel();
        let data: &[u8] = b"alpha\nbeta\r\n{\"k\":1}\n";
        let h = spawn_line_reader(7, data, tx);
        match rx.recv().unwrap() {
            LineEvent::Line(7, s) => assert_eq!(s, "alpha"),
            other => panic!("{other:?}"),
        }
        match rx.recv().unwrap() {
            LineEvent::Line(7, s) => assert_eq!(s, "beta"),
            other => panic!("{other:?}"),
        }
        match rx.recv().unwrap() {
            LineEvent::Line(7, s) => assert_eq!(s, "{\"k\":1}"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(rx.recv().unwrap(), LineEvent::Closed(7)));
        h.join().unwrap();
    }

    #[test]
    fn non_utf8_bytes_surface_as_garbage() {
        let (tx, rx) = mpsc::channel();
        let data: Vec<u8> = vec![b'o', b'k', b'\n', 0xFF, 0xFE, b'\n'];
        let h = spawn_line_reader(1, std::io::Cursor::new(data), tx);
        assert!(matches!(rx.recv().unwrap(), LineEvent::Line(1, _)));
        assert!(matches!(rx.recv().unwrap(), LineEvent::Garbage(1, 2)));
        assert!(matches!(rx.recv().unwrap(), LineEvent::Closed(1)));
        h.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip_through_line_server() {
        let (conn_tx, conn_rx) = mpsc::channel();
        let server = LineServer::start("127.0.0.1:0", conn_tx).unwrap();
        let client = TcpStream::connect(server.addr).unwrap();
        let mut client_writer = LineWriter::new(client.try_clone().unwrap());
        client_writer.send_line("{\"type\":\"ready\"}").unwrap();

        let accepted = conn_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let (tx, rx) = mpsc::channel();
        let _h = spawn_line_reader(3, accepted.try_clone().unwrap(), tx);
        match rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap() {
            LineEvent::Line(3, s) => assert_eq!(s, "{\"type\":\"ready\"}"),
            other => panic!("{other:?}"),
        }

        // And the other direction: server → client.
        let mut server_writer = LineWriter::new(accepted);
        server_writer.send_line("{\"type\":\"lease\"}").unwrap();
        let (ctx, crx) = mpsc::channel();
        let _h2 = spawn_line_reader(4, client, ctx);
        match crx.recv_timeout(std::time::Duration::from_secs(5)).unwrap() {
            LineEvent::Line(4, s) => assert_eq!(s, "{\"type\":\"lease\"}"),
            other => panic!("{other:?}"),
        }
    }
}
