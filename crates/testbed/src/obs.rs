//! Live observability endpoint for the long-running binaries.
//!
//! [`ObsServer`] is a tiny threaded HTTP server (same accept-loop idiom as
//! [`crate::server`]) exposing the in-process
//! [`msim_core::telemetry`] registry while a sweep or fleet bench is
//! running:
//!
//! | endpoint   | body                                                   |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of every registered metric  |
//! | `/jobs`    | JSON job/shard state from the caller-supplied provider |
//! | `/healthz` | `{"status":"ok"}`                                      |
//!
//! Anything else gets the standard `404` JSON error. The server never
//! touches simulation state: it only *reads* atomic counters, so scraping
//! it mid-run cannot perturb a deterministic workload.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use msim_http::{decode_request, encode_response, Decoded, Response, StatusCode};

/// Callback producing the `/jobs` JSON body at scrape time.
pub type JobsProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// Content-Type for the Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A background thread serving `/metrics`, `/jobs` and `/healthz` until
/// dropped.
pub struct ObsServer {
    /// The bound address (useful when started on port 0).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port 0 for an ephemeral
    /// port) and serves scrapes until the returned handle is dropped.
    /// `jobs` renders the `/jobs` body; pass [`ObsServer::no_jobs`] for
    /// binaries without shard state.
    pub fn start(addr: &str, jobs: JobsProvider) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let s2 = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !s2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let jobs = jobs.clone();
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_obs_conn(stream, &jobs);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(ObsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// A [`JobsProvider`] for binaries with no job state: `/jobs` answers
    /// an empty list.
    pub fn no_jobs() -> JobsProvider {
        Arc::new(|| "{\"jobs\":[]}".to_string())
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_obs_conn(mut stream: TcpStream, jobs: &JobsProvider) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    // Serve requests one at a time on a keep-alive connection; scrapers
    // poll, so the loop exits when the peer closes or goes quiet.
    loop {
        let req = loop {
            match decode_request(&buf) {
                Ok(Decoded::Complete { message, consumed }) => {
                    buf.drain(..consumed);
                    break message;
                }
                Ok(Decoded::NeedMore) => {
                    let n = match stream.read(&mut scratch) {
                        Ok(0) => return Ok(()),
                        Ok(n) => n,
                        Err(_) => return Ok(()),
                    };
                    buf.extend_from_slice(&scratch[..n]);
                }
                Err(_) => {
                    let resp =
                        Response::json_error(StatusCode::BAD_REQUEST, "malformed request", "");
                    stream.write_all(&encode_response(&resp))?;
                    return Ok(());
                }
            }
        };
        let resp = match req.path() {
            "/metrics" => {
                let body = msim_core::telemetry::render_prometheus();
                Response::new(StatusCode::OK, body.into_bytes())
                    .header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            }
            "/jobs" => Response::new(StatusCode::OK, jobs().into_bytes())
                .header("Content-Type", "application/json; charset=utf-8"),
            "/healthz" => Response::new(StatusCode::OK, b"{\"status\":\"ok\"}".to_vec())
                .header("Content-Type", "application/json; charset=utf-8"),
            _ => Response::not_found_json(&req.target),
        };
        stream.write_all(&encode_response(&resp))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_http::{encode_request, Request};

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut buf = Vec::new();
        let mut scratch = [0u8; 4096];
        loop {
            if let Ok(msim_http::Decoded::Complete { message, .. }) =
                msim_http::decode_response(&buf)
            {
                return message;
            }
            let n = stream.read(&mut scratch).unwrap();
            assert!(n > 0, "server closed before full response");
            buf.extend_from_slice(&scratch[..n]);
        }
    }

    fn get(stream: &mut TcpStream, path: &str) -> Response {
        let req = Request::get(path).header("Host", "obs");
        stream.write_all(&encode_request(&req)).unwrap();
        read_response(stream)
    }

    #[test]
    fn serves_all_endpoints_on_one_connection() {
        msim_core::telemetry::set_enabled(true);
        msim_core::telemetry::count("msp_obs_test_total", 3);
        let server = ObsServer::start("127.0.0.1:0", ObsServer::no_jobs()).unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();

        let resp = get(&mut stream, "/healthz");
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"{\"status\":\"ok\"}");

        let resp = get(&mut stream, "/metrics");
        assert_eq!(resp.status, StatusCode::OK);
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(text.contains("msp_obs_test_total"));
        assert_eq!(
            resp.headers.get("Content-Type"),
            Some(PROMETHEUS_CONTENT_TYPE)
        );

        let resp = get(&mut stream, "/jobs");
        assert_eq!(resp.status, StatusCode::OK);
        assert!(msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).is_ok());

        let resp = get(&mut stream, "/nope");
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let v = msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("error").and_then(msim_json::Value::as_str),
            Some("unknown endpoint")
        );
    }
}
