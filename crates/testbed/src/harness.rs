//! One-call harness: spin up shaped servers + proxies on loopback, stream
//! with the real-socket driver, return metrics.

use crate::driver::{run_testbed_session, TestbedSession, TestbedStop};
use crate::server::{ProxyDaemon, VideoFileServer};
use crate::shaper::LinkShape;
use msim_core::time::SimDuration;
use msplayer_core::config::PlayerConfig;
use msplayer_core::metrics::SessionMetrics;
use std::sync::Arc;
use std::time::Duration;

/// A complete loopback testbed: per-path video servers (with replicas for
/// failover) and per-path web proxies.
pub struct Testbed {
    /// The synthetic video file all servers share.
    pub file: Arc<Vec<u8>>,
    /// Stream rate in bytes per second.
    pub bytes_per_sec: f64,
    /// Per path: the replica servers.
    pub servers: Vec<Vec<VideoFileServer>>,
    /// Per path: the web proxy.
    pub proxies: Vec<ProxyDaemon>,
}

impl Testbed {
    /// Builds a two-path testbed ("WiFi"-like and "LTE"-like shapes) with
    /// `replicas` video servers per path, serving `video_secs` of video at
    /// `bytes_per_sec`.
    pub fn start(video_secs: f64, bytes_per_sec: f64, replicas: usize) -> std::io::Result<Testbed> {
        let len = (video_secs * bytes_per_sec) as usize;
        let file: Arc<Vec<u8>> = Arc::new((0..len).map(|i| (i % 251) as u8).collect());
        let shapes = [LinkShape::wifi_like(), LinkShape::lte_like()];
        let mut servers = Vec::new();
        let mut proxies = Vec::new();
        for shape in shapes {
            let mut path_servers = Vec::new();
            for _ in 0..replicas.max(1) {
                path_servers.push(VideoFileServer::start(file.clone(), shape)?);
            }
            let json = msim_json::to_string(
                &msim_json::Value::object()
                    .with("video_id", "qjT4T2gU9sM")
                    .with("title", "Loopback Testbed Stream")
                    .with("size_bytes", len as u64)
                    .with(
                        "servers",
                        msim_json::Value::Array(
                            path_servers
                                .iter()
                                .map(|s| msim_json::Value::from(s.addr.to_string()))
                                .collect(),
                        ),
                    ),
            );
            proxies.push(ProxyDaemon::start(json, SimDuration::from_millis(8))?);
            servers.push(path_servers);
        }
        Ok(Testbed {
            file,
            bytes_per_sec,
            servers,
            proxies,
        })
    }

    /// Streams with the given player config until `stop`; returns metrics.
    pub fn run(
        &self,
        player: PlayerConfig,
        stop: TestbedStop,
        wall_timeout: Duration,
    ) -> std::io::Result<SessionMetrics> {
        let session = TestbedSession {
            path_servers: self
                .servers
                .iter()
                .map(|replicas| replicas.iter().map(|s| s.addr).collect())
                .collect(),
            video_len: self.file.len() as u64,
            bytes_per_sec: self.bytes_per_sec,
            player,
            stop,
            wall_timeout,
        };
        run_testbed_session(&session)
    }

    /// Injects (or clears) a failure on path `path`'s primary server.
    pub fn set_primary_failed(&self, path: usize, failed: bool) {
        self.servers[path][0]
            .controls
            .fail
            .store(failed, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::units::ByteSize;
    use msplayer_core::metrics::TrafficPhase;

    /// 1 Mbit/s stream so loopback tests complete in well under a second of
    /// shaped transfer.
    const BPS: f64 = 125_000.0;

    fn quick_player() -> PlayerConfig {
        PlayerConfig::msplayer()
            .with_initial_chunk(ByteSize::kb(64))
            .with_prebuffer_secs(3.0)
    }

    #[test]
    fn real_socket_prebuffer_session() {
        let tb = Testbed::start(30.0, BPS, 1).expect("testbed up");
        let m = tb
            .run(
                quick_player(),
                TestbedStop::PrebufferDone,
                Duration::from_secs(20),
            )
            .expect("session runs");
        let t = m.prebuffer_time().expect("prebuffer reached");
        assert!(t.as_secs_f64() > 0.01, "took {t}");
        assert!(t.as_secs_f64() < 15.0, "took {t}");
        // Both paths moved real bytes.
        assert!(m.chunk_count(0) > 0);
        assert!(m.chunk_count(1) > 0);
        let total: u64 = m.chunks.iter().map(|c| c.bytes).sum();
        assert!(total as f64 >= 3.0 * BPS, "fetched {total}");
    }

    #[test]
    fn failover_on_real_sockets() {
        let tb = Testbed::start(30.0, BPS, 2).expect("testbed up");
        // Kill path 0's primary before starting: first fetch gets 500 →
        // player fails over to the replica and completes.
        tb.set_primary_failed(0, true);
        let m = tb
            .run(
                quick_player(),
                TestbedStop::PrebufferDone,
                Duration::from_secs(20),
            )
            .expect("session runs");
        assert!(
            m.prebuffer_time().is_some(),
            "streaming survived the failure"
        );
        assert!(m.failovers[0] >= 1, "failover recorded: {:?}", m.failovers);
    }

    #[test]
    fn single_path_fixed_chunks_on_sockets() {
        let tb = Testbed::start(30.0, BPS, 1).expect("testbed up");
        let session = TestbedSession {
            path_servers: vec![vec![tb.servers[0][0].addr]],
            video_len: tb.file.len() as u64,
            bytes_per_sec: BPS,
            player: PlayerConfig::commercial_single_path(ByteSize::kb(64)).with_prebuffer_secs(2.0),
            stop: TestbedStop::PrebufferDone,
            wall_timeout: Duration::from_secs(20),
        };
        let m = run_testbed_session(&session).expect("runs");
        assert!(m.prebuffer_time().is_some());
        assert_eq!(m.chunk_count(1), 0);
        // The single-request pre-buffer mode issues one big chunk.
        assert_eq!(
            m.bytes_on(0, TrafficPhase::PreBuffering),
            (2.0 * BPS) as u64
        );
    }
}
