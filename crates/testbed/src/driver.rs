//! The socket driver: runs the sans-I/O [`Player`] over real loopback TCP.
//!
//! One worker thread per path performs blocking HTTP range requests on a
//! persistent connection (exactly like the python MSPlayer's per-path
//! threads, §3.2: "the processes of fetching video chunks over each path are
//! executed by independent threads, which are under the management of the
//! chunk scheduler"). The main thread owns the player state machine and a
//! wall-clock mapped onto [`SimTime`].

use msim_core::time::SimTime;
use msim_http::{decode_response, encode_request_into, ByteRange, Decoded, Request, StatusCode};
use msplayer_core::config::PlayerConfig;
use msplayer_core::metrics::SessionMetrics;
use msplayer_core::player::{ChunkFailReason, Player, PlayerAction, PlayerEvent};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// When the testbed session ends.
#[derive(Clone, Copy, Debug)]
pub enum TestbedStop {
    /// Stop when the pre-buffer target is reached.
    PrebufferDone,
    /// Stop after `n` refill cycles.
    AfterRefills(usize),
}

/// A testbed session description.
pub struct TestbedSession {
    /// Per-path replica lists (first entry is the primary video server).
    pub path_servers: Vec<Vec<SocketAddr>>,
    /// Total "video file" length in bytes (must match the servers' file).
    pub video_len: u64,
    /// Stream bytes per second (video bitrate / 8).
    pub bytes_per_sec: f64,
    /// Player configuration.
    pub player: PlayerConfig,
    /// Stop condition.
    pub stop: TestbedStop,
    /// Hard wall-clock cap on the session.
    pub wall_timeout: Duration,
}

enum WorkerEvent {
    Ready {
        path: usize,
    },
    Done {
        path: usize,
        index: u64,
        bytes: u64,
        requested_at: SimTime,
        first_byte_at: SimTime,
        completed_at: SimTime,
    },
    Failed {
        path: usize,
        reason: ChunkFailReason,
        at: SimTime,
    },
    Restored {
        path: usize,
        at: SimTime,
    },
}

enum WorkerCmd {
    Fetch { index: u64, range: ByteRange },
    Failover,
    Shutdown,
}

struct Clock {
    t0: Instant,
}

impl Clock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.t0.elapsed().as_micros() as u64)
    }
}

/// Runs a session; returns the player's metrics.
///
/// Errors are returned for setup problems (connect failures); runtime
/// transfer errors are fed to the player as chunk failures instead.
pub fn run_testbed_session(session: &TestbedSession) -> std::io::Result<SessionMetrics> {
    assert!(
        !session.path_servers.is_empty() && session.path_servers.len() <= 2,
        "one or two paths"
    );
    let clock = Clock { t0: Instant::now() };
    let (ev_tx, ev_rx): (Sender<WorkerEvent>, Receiver<WorkerEvent>) = channel();
    let mut cmd_txs: Vec<Sender<WorkerCmd>> = Vec::new();
    let mut workers = Vec::new();

    for (path, servers) in session.path_servers.iter().enumerate() {
        let (cmd_tx, cmd_rx) = channel::<WorkerCmd>();
        cmd_txs.push(cmd_tx);
        let servers = servers.clone();
        let ev_tx = ev_tx.clone();
        let t0 = clock.t0;
        workers.push(std::thread::spawn(move || {
            path_worker(path, servers, cmd_rx, ev_tx, t0);
        }));
    }

    let mut player = Player::new(
        session.player.clone(),
        session.video_len,
        session.bytes_per_sec,
        SimTime::ZERO,
    );
    let mut next_tick: Option<SimTime> = None;
    let mut last_now = SimTime::ZERO;
    let deadline = Instant::now() + session.wall_timeout;

    'main: loop {
        if Instant::now() > deadline {
            break;
        }
        // Wait for the next worker event or the pending tick.
        let timeout = match next_tick {
            Some(at) => {
                let now = clock.now();
                if at <= now {
                    Duration::ZERO
                } else {
                    Duration::from_micros((at - now).as_micros())
                }
            }
            None => Duration::from_millis(50),
        };
        let (now, event) = match ev_rx.recv_timeout(timeout) {
            Ok(ev) => {
                let (at, pe) = match ev {
                    WorkerEvent::Ready { path } => (clock.now(), PlayerEvent::PathReady { path }),
                    WorkerEvent::Done {
                        path,
                        index,
                        bytes,
                        requested_at,
                        first_byte_at,
                        completed_at,
                    } => (
                        completed_at,
                        PlayerEvent::ChunkComplete {
                            path,
                            index,
                            bytes,
                            requested_at,
                            first_byte_at,
                        },
                    ),
                    WorkerEvent::Failed { path, reason, at } => {
                        (at, PlayerEvent::ChunkFailed { path, reason })
                    }
                    WorkerEvent::Restored { path, at } => (at, PlayerEvent::PathRestored { path }),
                };
                (at, pe)
            }
            Err(RecvTimeoutError::Timeout) => {
                next_tick = None;
                (clock.now(), PlayerEvent::Tick)
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Keep the player's clock monotone even if worker timestamps race.
        let now = now.max(last_now);
        last_now = now;

        for action in player.handle(now, event) {
            match action {
                PlayerAction::Fetch { assignment } => {
                    let _ = cmd_txs[assignment.path].send(WorkerCmd::Fetch {
                        index: assignment.index,
                        range: assignment.range,
                    });
                }
                PlayerAction::Failover { path } => {
                    let _ = cmd_txs[path].send(WorkerCmd::Failover);
                }
                PlayerAction::ScheduleTick { at } => {
                    // Coalescing contract: the latest request supersedes
                    // any undelivered earlier one (the player re-derives
                    // its desired wakeup after every event).
                    next_tick = Some(at);
                }
            }
        }

        let stop = match session.stop {
            TestbedStop::PrebufferDone => player.prebuffer_done(),
            TestbedStop::AfterRefills(n) => player.refill_count() >= n,
        };
        if stop {
            break 'main;
        }
    }

    for tx in &cmd_txs {
        let _ = tx.send(WorkerCmd::Shutdown);
    }
    for w in workers {
        let _ = w.join();
    }
    // Real-socket transfers have no simulated TCP engine, so the
    // `SessionMetrics::transfer_*` telemetry (epochs / fast rounds /
    // solved rounds of the simulator's epoch transfer engine) stays at
    // its zero default here — the testbed measures wall-clock transfers,
    // not model rounds.
    Ok(player.into_metrics(clock.now().max(last_now)))
}

fn path_worker(
    path: usize,
    servers: Vec<SocketAddr>,
    cmd_rx: Receiver<WorkerCmd>,
    ev_tx: Sender<WorkerEvent>,
    t0: Instant,
) {
    let now = |t0: Instant| SimTime::from_micros(t0.elapsed().as_micros() as u64);
    // Reused across every chunk this worker fetches: request wire bytes and
    // the response accumulation buffer keep their capacity for the whole
    // session instead of re-allocating per chunk.
    let mut bufs = FetchBufs::default();
    let mut current = 0usize;
    let mut conn = match TcpStream::connect(servers[current]) {
        Ok(c) => {
            let _ = c.set_nodelay(true);
            let _ = ev_tx.send(WorkerEvent::Ready { path });
            Some(c)
        }
        Err(_) => None,
    };

    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            WorkerCmd::Shutdown => break,
            WorkerCmd::Failover => {
                current = (current + 1) % servers.len();
                conn = TcpStream::connect(servers[current]).ok();
                if let Some(c) = &conn {
                    let _ = c.set_nodelay(true);
                    let _ = ev_tx.send(WorkerEvent::Restored { path, at: now(t0) });
                }
            }
            WorkerCmd::Fetch { index, range } => {
                let requested_at = now(t0);
                let result = conn
                    .as_mut()
                    .ok_or(ChunkFailReason::Timeout)
                    .and_then(|c| fetch_range(c, range, t0, &mut bufs));
                match result {
                    Ok((bytes, first_byte_at)) => {
                        let _ = ev_tx.send(WorkerEvent::Done {
                            path,
                            index,
                            bytes,
                            requested_at,
                            first_byte_at,
                            completed_at: now(t0),
                        });
                    }
                    Err(reason) => {
                        // Reconnect to the same server for transport errors
                        // so a later retry can succeed.
                        conn = TcpStream::connect(servers[current]).ok();
                        let _ = ev_tx.send(WorkerEvent::Failed {
                            path,
                            reason,
                            at: now(t0),
                        });
                    }
                }
            }
        }
    }
}

/// Per-worker scratch buffers reused across chunk fetches.
#[derive(Default)]
struct FetchBufs {
    /// Encoded request bytes.
    wire: Vec<u8>,
    /// Accumulated response bytes.
    resp: Vec<u8>,
}

/// Issues one range request on the persistent connection. Returns
/// `(bytes, first_byte_at)`.
fn fetch_range(
    conn: &mut TcpStream,
    range: ByteRange,
    t0: Instant,
    bufs: &mut FetchBufs,
) -> Result<(u64, SimTime), ChunkFailReason> {
    let req = Request::get("/videoplayback?id=stream")
        .header("Host", "testbed")
        .with_range(range);
    encode_request_into(&req, &mut bufs.wire);
    conn.write_all(&bufs.wire)
        .map_err(|_| ChunkFailReason::Timeout)?;
    bufs.resp.clear();
    bufs.resp.reserve(range.len() as usize + 512);
    let buf = &mut bufs.resp;
    let mut scratch = [0u8; 64 * 1024];
    let mut first_byte_at: Option<SimTime> = None;
    loop {
        match decode_response(buf) {
            Ok(Decoded::Complete { message, .. }) => {
                return match message.status {
                    StatusCode::PARTIAL_CONTENT | StatusCode::OK => Ok((
                        message.body.len() as u64,
                        first_byte_at.unwrap_or_else(|| {
                            SimTime::from_micros(t0.elapsed().as_micros() as u64)
                        }),
                    )),
                    StatusCode::FORBIDDEN => Err(ChunkFailReason::Forbidden),
                    _ => Err(ChunkFailReason::ServerError),
                };
            }
            Ok(Decoded::NeedMore) => {
                let n = conn
                    .read(&mut scratch)
                    .map_err(|_| ChunkFailReason::Timeout)?;
                if n == 0 {
                    return Err(ChunkFailReason::Timeout);
                }
                if first_byte_at.is_none() {
                    first_byte_at = Some(SimTime::from_micros(t0.elapsed().as_micros() as u64));
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(_) => return Err(ChunkFailReason::ServerError),
        }
    }
}
