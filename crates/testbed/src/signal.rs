//! Cooperative shutdown on SIGINT/SIGTERM.
//!
//! The long-running binaries (`sweep`, `chaos`, `fleet_bench`,
//! `msplayer-sweepd`, `msplayer-sim`) want to flush partial artifacts and
//! write their checkpoint before exiting when the operator (or CI) kills
//! them. The handler here does the only async-signal-safe thing possible
//! — flip an atomic — and the binaries poll [`shutdown_requested`]
//! between units of work.
//!
//! This is the one place in the workspace that needs FFI: registering a
//! process signal handler has no std API. The `unsafe` is confined to the
//! two `libc::signal` calls below (the symbol comes from the libc std
//! already links; no new dependency).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has SIGINT or SIGTERM been received since
/// [`install_shutdown_handler`] was called?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Testing/bin hook: simulate a received signal in-process (the handler
/// path itself cannot be driven portably from a unit test).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// The conventional exit code for "terminated by signal N" shells
/// report: `128 + N`. Binaries exiting after a graceful SIGINT flush
/// should still look interrupted to their caller.
pub const SIGINT_EXIT: i32 = 130;

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // From the platform libc std already links against.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX registration call; the handler
        // only performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {
        // No signal registration off unix; shutdown_requested() simply
        // never fires and the binaries run to completion as before.
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent). Call once near the
/// top of `main`; poll [`shutdown_requested`] from the work loop.
pub fn install_shutdown_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_flag_roundtrip() {
        install_shutdown_handler();
        // Note: the flag is process-global and other tests never reset
        // it, so only the requested direction can be asserted.
        request_shutdown();
        assert!(shutdown_requested());
    }
}
