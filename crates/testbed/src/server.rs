//! Threaded HTTP servers for the loopback testbed: a video file server
//! (range requests over keep-alive connections, like §5's Apache) and a web
//! proxy daemon returning the JSON video information.
//!
//! Both servers route on the request path and answer unknown endpoints
//! with a proper `404` + JSON error body (and malformed requests with
//! `400`) instead of dropping the connection, so misdirected clients get
//! a diagnosable reply on a still-usable connection.

use crate::shaper::{write_paced, LinkShape};
use msim_core::time::SimDuration;
use msim_http::{decode_request, encode_response, Decoded, Response, StatusCode};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Shared controls for a running server (failure injection, counters).
#[derive(Default)]
pub struct ServerControls {
    /// When set, every request is answered with 500 (failure injection).
    pub fail: AtomicBool,
    /// Served range-request count.
    pub requests: AtomicU64,
    /// Total body bytes served.
    pub bytes: AtomicU64,
}

/// A running video file server on loopback.
pub struct VideoFileServer {
    /// Bound address.
    pub addr: SocketAddr,
    /// Runtime controls.
    pub controls: Arc<ServerControls>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl VideoFileServer {
    /// Starts a server holding a synthetic `file` of bytes, shaping every
    /// response according to `shape`. The "file" is the pre-downloaded
    /// video of §5.
    pub fn start(file: Arc<Vec<u8>>, shape: LinkShape) -> std::io::Result<VideoFileServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let controls = Arc::new(ServerControls::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let c2 = controls.clone();
        let s2 = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !s2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let file = file.clone();
                        let controls = c2.clone();
                        let stop = s2.clone();
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_video_conn(stream, &file, shape, &controls, &stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(VideoFileServer {
            addr,
            controls,
            shutdown,
            handle: Some(handle),
        })
    }
}

impl Drop for VideoFileServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_video_conn(
    mut stream: TcpStream,
    file: &[u8],
    shape: LinkShape,
    controls: &ServerControls,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut scratch = [0u8; 4096];
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Try to decode a request from what we have.
        match decode_request(&buf) {
            Ok(Decoded::Complete { message, consumed }) => {
                buf.drain(..consumed);
                let resp = build_video_response(&message, file, controls);
                // Count before writing: once the client has read the full
                // response, the counters are guaranteed up to date.
                controls.requests.fetch_add(1, Ordering::Relaxed);
                controls
                    .bytes
                    .fetch_add(resp.body.len() as u64, Ordering::Relaxed);
                // Emulate the link RTT: request propagation + first byte.
                std::thread::sleep(to_std(shape.rtt));
                let wire = encode_response(&resp);
                // Head goes immediately; body is paced at the link rate.
                let head_len = wire.len() - resp.body.len();
                use std::io::Write;
                stream.write_all(&wire[..head_len])?;
                write_paced(&mut stream, &resp.body, shape)?;
            }
            Ok(Decoded::NeedMore) => match stream.read(&mut scratch) {
                Ok(0) => return Ok(()), // client closed
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            },
            Err(_) => {
                // Malformed request: answer 400 and close.
                let resp = Response::new(StatusCode::BAD_REQUEST, Vec::new());
                use std::io::Write;
                stream.write_all(&encode_response(&resp))?;
                return Ok(());
            }
        }
    }
}

fn build_video_response(
    req: &msim_http::Request,
    file: &[u8],
    controls: &ServerControls,
) -> Response {
    if controls.fail.load(Ordering::Relaxed) {
        return Response::new(StatusCode::INTERNAL_SERVER_ERROR, Vec::new());
    }
    // Only the videoplayback endpoint exists here; anything else is a
    // client bug and earns a 404 JSON error on the live connection.
    if req.path() != "/videoplayback" {
        return Response::not_found_json(&req.target);
    }
    match req.range() {
        Some(Ok(range)) => match range.clamp_to(file.len() as u64) {
            Ok(r) => {
                let body = file[r.start as usize..=(r.end as usize)].to_vec();
                Response::partial_content(body, r, file.len() as u64)
            }
            Err(_) => Response::new(StatusCode::RANGE_NOT_SATISFIABLE, Vec::new()),
        },
        Some(Err(_)) => Response::new(StatusCode::BAD_REQUEST, Vec::new()),
        None => {
            // Whole-file GET (not used by the player, but be a good server).
            Response::new(StatusCode::OK, file.to_vec())
        }
    }
}

/// A running web-proxy daemon serving one JSON document at `/watch`.
pub struct ProxyDaemon {
    /// Bound address.
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProxyDaemon {
    /// Starts the daemon. `json` is the video-information object for this
    /// network's view (pre-built by the harness); `processing` emulates the
    /// OAuth/JSON generation delay.
    pub fn start(json: String, processing: SimDuration) -> std::io::Result<ProxyDaemon> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let s2 = shutdown.clone();
        let json = Arc::new(json);
        let handle = std::thread::spawn(move || {
            while !s2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let json = json.clone();
                        std::thread::spawn(move || {
                            let _ = serve_proxy_conn(stream, &json, processing);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ProxyDaemon {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }
}

impl Drop for ProxyDaemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_proxy_conn(
    mut stream: TcpStream,
    json: &str,
    processing: SimDuration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    use std::io::Write;
    let req = loop {
        match decode_request(&buf) {
            Ok(Decoded::Complete { message, .. }) => break message,
            Ok(Decoded::NeedMore) => {
                let n = stream.read(&mut scratch)?;
                if n == 0 {
                    return Ok(());
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(_) => {
                // Malformed request: a diagnosable 400 beats a silent
                // connection drop.
                let resp = Response::json_error(StatusCode::BAD_REQUEST, "malformed request", "");
                stream.write_all(&encode_response(&resp))?;
                return Ok(());
            }
        }
    };
    if req.path() != "/watch" {
        let resp = Response::not_found_json(&req.target);
        return stream.write_all(&encode_response(&resp));
    }
    std::thread::sleep(to_std(processing));
    let resp = Response::json(json.as_bytes().to_vec());
    stream.write_all(&encode_response(&resp))
}

fn to_std(d: SimDuration) -> std::time::Duration {
    std::time::Duration::from_micros(d.as_micros())
}

/// A guard that keeps shared state alive for assertions in tests.
pub type Shared<T> = Arc<Mutex<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use msim_http::{encode_request, Request};
    use std::io::Write;

    use msim_http::ByteRange;

    fn fetch_range(addr: SocketAddr, start: u64, len: u64) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = Request::get("/videoplayback?id=test")
            .header("Host", "testbed")
            .with_range(ByteRange::from_offset_len(start, len));
        stream.write_all(&encode_request(&req)).unwrap();
        read_response(&mut stream)
    }

    fn read_response(stream: &mut TcpStream) -> Response {
        let mut buf = Vec::new();
        let mut scratch = [0u8; 8192];
        loop {
            match decode_response(&buf).unwrap() {
                Decoded::Complete { message, .. } => return message,
                Decoded::NeedMore => {
                    let n = stream.read(&mut scratch).unwrap();
                    assert!(n > 0, "server closed early");
                    buf.extend_from_slice(&scratch[..n]);
                }
            }
        }
    }

    use msim_http::decode_response;

    fn test_file(n: usize) -> Arc<Vec<u8>> {
        Arc::new((0..n).map(|i| (i % 251) as u8).collect())
    }

    fn fast_shape() -> LinkShape {
        LinkShape {
            rate: msim_core::units::BitRate::mbps(400.0),
            rtt: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn serves_correct_range_bytes() {
        let file = test_file(100_000);
        let server = VideoFileServer::start(file.clone(), fast_shape()).unwrap();
        let resp = fetch_range(server.addr, 1000, 5000);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(&resp.body[..], &file[1000..6000]);
        let (range, total) = resp.content_range().unwrap().unwrap();
        assert_eq!(range, ByteRange::from_offset_len(1000, 5000));
        assert_eq!(total, 100_000);
    }

    #[test]
    fn keepalive_serves_sequential_requests() {
        let file = test_file(50_000);
        let server = VideoFileServer::start(file.clone(), fast_shape()).unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        for i in 0..5u64 {
            let req = Request::get("/videoplayback")
                .header("Host", "testbed")
                .with_range(ByteRange::from_offset_len(i * 1000, 1000));
            stream.write_all(&encode_request(&req)).unwrap();
            let resp = read_response(&mut stream);
            assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
            assert_eq!(
                &resp.body[..],
                &file[(i * 1000) as usize..(i * 1000 + 1000) as usize]
            );
        }
        assert_eq!(server.controls.requests.load(Ordering::Relaxed), 5);
        assert_eq!(server.controls.bytes.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn range_past_eof_is_clamped_or_416() {
        let file = test_file(10_000);
        let server = VideoFileServer::start(file.clone(), fast_shape()).unwrap();
        let resp = fetch_range(server.addr, 9_000, 5_000);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body.len(), 1000, "clamped at EOF");
        let resp = fetch_range(server.addr, 20_000, 100);
        assert_eq!(resp.status, StatusCode::RANGE_NOT_SATISFIABLE);
    }

    #[test]
    fn failure_injection_returns_500() {
        let file = test_file(10_000);
        let server = VideoFileServer::start(file, fast_shape()).unwrap();
        server.controls.fail.store(true, Ordering::Relaxed);
        let resp = fetch_range(server.addr, 0, 100);
        assert_eq!(resp.status, StatusCode::INTERNAL_SERVER_ERROR);
        server.controls.fail.store(false, Ordering::Relaxed);
        let resp = fetch_range(server.addr, 0, 100);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
    }

    #[test]
    fn proxy_serves_json() {
        let daemon = ProxyDaemon::start(
            r#"{"video_id":"qjT4T2gU9sM"}"#.into(),
            SimDuration::from_millis(5),
        )
        .unwrap();
        let mut stream = TcpStream::connect(daemon.addr).unwrap();
        let req = Request::get("/watch?v=qjT4T2gU9sM").header("Host", "www.youtube.com");
        stream.write_all(&encode_request(&req)).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, StatusCode::OK);
        let v = msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("video_id").and_then(msim_json::Value::as_str),
            Some("qjT4T2gU9sM")
        );
    }

    #[test]
    fn unknown_endpoint_is_404_json_not_a_drop() {
        // Regression: unknown endpoints used to be served (video server)
        // or silently ignored; they must answer 404 with a JSON error
        // body and keep the connection usable.
        let file = test_file(10_000);
        let server = VideoFileServer::start(file.clone(), fast_shape()).unwrap();
        let mut stream = TcpStream::connect(server.addr).unwrap();
        let req = Request::get("/metrics").header("Host", "testbed");
        stream.write_all(&encode_request(&req)).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let v = msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("error").and_then(msim_json::Value::as_str),
            Some("unknown endpoint")
        );
        assert_eq!(
            v.get("target").and_then(msim_json::Value::as_str),
            Some("/metrics")
        );
        // The same connection still serves a real request afterwards.
        let req = Request::get("/videoplayback")
            .header("Host", "testbed")
            .with_range(ByteRange::from_offset_len(0, 100));
        stream.write_all(&encode_request(&req)).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(&resp.body[..], &file[..100]);
    }

    #[test]
    fn proxy_unknown_endpoint_is_404_json() {
        let daemon =
            ProxyDaemon::start(r#"{"video_id":"x"}"#.into(), SimDuration::from_millis(1)).unwrap();
        let mut stream = TcpStream::connect(daemon.addr).unwrap();
        let req = Request::get("/totally/else").header("Host", "www.youtube.com");
        stream.write_all(&encode_request(&req)).unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        let v = msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("target").and_then(msim_json::Value::as_str),
            Some("/totally/else")
        );
    }

    #[test]
    fn proxy_malformed_request_gets_400_not_a_drop() {
        let daemon =
            ProxyDaemon::start(r#"{"video_id":"x"}"#.into(), SimDuration::from_millis(1)).unwrap();
        let mut stream = TcpStream::connect(daemon.addr).unwrap();
        stream
            .write_all(b"BREW /coffee HTCPCP/1.0\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let v = msim_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("error").and_then(msim_json::Value::as_str),
            Some("malformed request")
        );
    }

    #[test]
    fn rtt_shaping_delays_response() {
        let file = test_file(1000);
        let shape = LinkShape {
            rate: msim_core::units::BitRate::mbps(400.0),
            rtt: SimDuration::from_millis(60),
        };
        let server = VideoFileServer::start(file, shape).unwrap();
        let start = std::time::Instant::now();
        let _ = fetch_range(server.addr, 0, 100);
        let took = start.elapsed();
        assert!(
            took >= std::time::Duration::from_millis(55),
            "took {took:?}"
        );
    }
}
