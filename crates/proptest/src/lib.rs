//! Minimal, zero-dependency stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! real proptest cannot be fetched. This crate implements the subset of its
//! API that the workspace's property tests use, with the same macro surface
//! (`proptest!`, `prop_assert!`, `prop_oneof!`, …) and deterministic
//! sampling: every test function derives its RNG seed from its own name, so
//! failures are reproducible run-to-run.
//!
//! Differences from the real crate (intentional, documented):
//! * no shrinking — a failing case reports the seed/case index instead;
//! * regex string strategies support the subset actually used here
//!   (character classes, escapes, `\PC`, `{m,n}` / `*` quantifiers);
//! * `prop_recursive` expands a fixed number of levels with a 50/50
//!   leaf/recurse split rather than a size-budgeted tree.

pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Unused knob kept for struct-update-syntax compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property assertion (returned, not panicked, so the harness
    /// can attach the case number before panicking).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic split-mix / xorshift RNG used for sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[lo, hi)`; `lo < hi` required.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Rejection-free multiply-shift; bias is negligible for test use.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values (sampling only; no shrinking).
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| f(inner.sample(rng))))
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
        }

        /// Builds a recursive strategy: `self` is the leaf, `expand` wraps an
        /// inner strategy into composites. Expands `depth` levels with a
        /// 50/50 leaf/recurse choice at each.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let expanded = expand(strat).boxed();
                let l = leaf.clone();
                strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.below(2) == 0 {
                        l.sample(rng)
                    } else {
                        expanded.sample(rng)
                    }
                }));
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Regex-subset string strategy (see crate docs).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub fn union<T: 'static>(alternatives: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let i = rng.below(alternatives.len() as u64) as usize;
            alternatives[i].sample(rng)
        }))
    }
}

pub mod arbitrary {
    use super::strategy::BoxedStrategy;
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(|rng: &mut TestRng| T::arbitrary(rng)))
    }
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;
    use std::rc::Rc;

    fn sample_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        range.start + rng.below((range.end - range.start) as u64) as usize
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let n = sample_len(&size, rng);
            (0..n).map(|_| element.sample(rng)).collect()
        }))
    }

    /// `BTreeMap` with keys from `key` and values from `value`; up to `size`
    /// entries (duplicate keys collapse, as in the real crate).
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy + 'static,
        V: Strategy + 'static,
        K::Value: Ord + 'static,
        V::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let n = sample_len(&size, rng);
            (0..n)
                .map(|_| (key.sample(rng), value.sample(rng)))
                .collect()
        }))
    }
}

pub mod sample {
    use super::strategy::BoxedStrategy;
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            options[rng.below(options.len() as u64) as usize].clone()
        }))
    }
}

pub mod string {
    //! Sampling for the regex subset used by the workspace's tests:
    //! character classes with escapes and ranges, `\PC` ("any printable
    //! character"), literal characters, and `*` / `{n}` / `{m,n}`
    //! quantifiers applied to the preceding atom.

    use super::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum Atom {
        /// Explicit set of characters to choose from.
        Class(Vec<char>),
        /// `\PC`: any printable character (sampled from a fixed alphabet).
        Printable,
    }

    const PRINTABLE_EXTRA: &[char] = &['é', 'ß', '中', '文', '✓', 'Ω', '¿', '\u{203d}'];

    fn printable_alphabet() -> Vec<char> {
        let mut v: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
        v.extend_from_slice(PRINTABLE_EXTRA);
        v
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().expect("dangling escape in class");
                    set.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                }
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next();
                        match look.peek() {
                            Some(&']') | None => set.push(c),
                            Some(&hi) => {
                                chars.next();
                                chars.next();
                                for u in (c as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(u) {
                                        set.push(ch);
                                    }
                                }
                            }
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    /// Samples one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => {
                    let e = chars.next().expect("dangling escape");
                    match e {
                        'P' => {
                            let cat = chars.next().expect("\\P needs a category");
                            assert_eq!(cat, 'C', "only \\PC is supported");
                            Atom::Printable
                        }
                        'n' => Atom::Class(vec!['\n']),
                        't' => Atom::Class(vec!['\t']),
                        other => Atom::Class(vec![other]),
                    }
                }
                literal => Atom::Class(vec![literal]),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            let n = if hi > lo {
                lo + rng.below((hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            let alphabet;
            let set: &[char] = match &atom {
                Atom::Class(set) => set,
                Atom::Printable => {
                    alphabet = printable_alphabet();
                    &alphabet
                }
            };
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod fuzz {
    //! A deterministic byte-mutation fuzz driver for the hand-rolled
    //! parsers: seed-corpus inputs are mutated with the classic fuzzing
    //! moves (bit flips, truncation, duplication, splicing, digit blasts,
    //! multi-byte UTF-8 insertion) and fed to a target closure. Panics
    //! propagate — the test harness reports the failing case — and every
    //! case derives from a stable per-target seed, so a failure replays
    //! exactly.

    use crate::test_runner::TestRng;

    /// Deterministic mutator over a seed corpus.
    pub struct ByteMutator {
        rng: TestRng,
    }

    impl ByteMutator {
        /// A mutator seeded explicitly (see [`crate::seed_for`]).
        pub fn new(seed: u64) -> ByteMutator {
            ByteMutator {
                rng: TestRng::new(seed),
            }
        }

        /// Produces one mutated input: picks a corpus entry and applies
        /// 1–4 stacked mutations.
        pub fn mutate(&mut self, corpus: &[&[u8]]) -> Vec<u8> {
            assert!(!corpus.is_empty(), "fuzz corpus must not be empty");
            let pick = self.rng.below(corpus.len() as u64) as usize;
            let mut data = corpus[pick].to_vec();
            let n_mutations = 1 + self.rng.below(4);
            for _ in 0..n_mutations {
                self.mutate_once(&mut data, corpus);
            }
            data
        }

        fn mutate_once(&mut self, data: &mut Vec<u8>, corpus: &[&[u8]]) {
            match self.rng.below(8) {
                // Bit flip.
                0 if !data.is_empty() => {
                    let i = self.rng.below(data.len() as u64) as usize;
                    data[i] ^= 1 << self.rng.below(8);
                }
                // Overwrite one byte with an arbitrary value.
                1 if !data.is_empty() => {
                    let i = self.rng.below(data.len() as u64) as usize;
                    data[i] = self.rng.below(256) as u8;
                }
                // Truncate (models a cut-off wire frame).
                2 if !data.is_empty() => {
                    let keep = self.rng.below(data.len() as u64) as usize;
                    data.truncate(keep);
                }
                // Duplicate a slice in place.
                3 if !data.is_empty() => {
                    let start = self.rng.below(data.len() as u64) as usize;
                    let len = 1 + self.rng.below((data.len() - start).max(1) as u64) as usize;
                    let slice = data[start..(start + len).min(data.len())].to_vec();
                    let at = self.rng.below(data.len() as u64 + 1) as usize;
                    data.splice(at..at, slice);
                }
                // Insert random bytes.
                4 => {
                    let at = self.rng.below(data.len() as u64 + 1) as usize;
                    let n = 1 + self.rng.below(8) as usize;
                    let bytes: Vec<u8> = (0..n).map(|_| self.rng.below(256) as u8).collect();
                    data.splice(at..at, bytes);
                }
                // Splice with another corpus entry (crossover).
                5 => {
                    let other = corpus[self.rng.below(corpus.len() as u64) as usize];
                    let cut = self.rng.below(data.len() as u64 + 1) as usize;
                    let other_cut = self.rng.below(other.len() as u64 + 1) as usize;
                    data.truncate(cut);
                    data.extend_from_slice(&other[other_cut.min(other.len())..]);
                }
                // ASCII digit blast (overflow hunting: long runs of '9').
                6 => {
                    let at = self.rng.below(data.len() as u64 + 1) as usize;
                    let n = 1 + self.rng.below(24) as usize;
                    data.splice(at..at, std::iter::repeat_n(b'9', n));
                }
                // Multi-byte UTF-8 insertion (non-ASCII hunting).
                _ => {
                    let at = self.rng.below(data.len() as u64 + 1) as usize;
                    let snippets: [&[u8]; 4] = [
                        "é".as_bytes(),
                        "٠٥".as_bytes(),
                        "\u{202e}".as_bytes(),
                        &[0xC3, 0x28], // invalid UTF-8 pair
                    ];
                    let s = snippets[self.rng.below(4) as usize];
                    data.splice(at..at, s.iter().copied());
                }
            }
        }
    }

    /// Runs `target` over `cases` mutated inputs derived from `corpus`.
    /// The per-target seed comes from `name` via [`crate::seed_for`], so
    /// every run (local or CI) explores the same sequence and a failure
    /// reproduces by name alone. The target receives raw bytes; parsers
    /// over `&str` should go through `String::from_utf8_lossy` (and also
    /// exercise their byte-level entry points where they exist).
    pub fn run(name: &str, corpus: &[&[u8]], cases: u32, mut target: impl FnMut(&[u8])) {
        let mut mutator = ByteMutator::new(crate::seed_for(name));
        // The unmutated corpus always runs first: regressions on the seed
        // inputs themselves are the cheapest to catch.
        for input in corpus {
            target(input);
        }
        for _ in 0..cases {
            let data = mutator.mutate(corpus);
            target(&data);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mutation_stream_is_deterministic_per_name() {
            let corpus: &[&[u8]] = &[b"bytes=0-1023", b"GET / HTTP/1.1\r\n\r\n"];
            let collect = |name: &str| {
                let mut seen = Vec::new();
                run(name, corpus, 50, |data| seen.push(data.to_vec()));
                seen
            };
            assert_eq!(collect("target-a"), collect("target-a"));
            assert_ne!(collect("target-a"), collect("target-b"));
        }

        #[test]
        fn mutations_actually_diverge_from_the_corpus() {
            let corpus: &[&[u8]] = &[b"bytes 0-1023/4096"];
            let mut mutated = 0usize;
            run("divergence", corpus, 100, |data| {
                if data != corpus[0] {
                    mutated += 1;
                }
            });
            assert!(mutated > 80, "only {mutated}/100 inputs were mutated");
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to the crate modules, mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Derives a stable 64-bit seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The property-test macro. Mirrors `proptest::proptest!` for the subset
/// used in this workspace: an optional `#![proptest_config(..)]` header and
/// one or more `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::test_runner::TestRng::new(seed);
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::sample(&$strat, rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports a failing property instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shapes() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = crate::string::sample_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = crate::string::sample_pattern("[0-9A-F]{10,60}", &mut rng);
            assert!((10..=60).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_lowercase()));

            let s = crate::string::sample_pattern("\\PC*", &mut rng);
            assert!(s.chars().count() <= 32);

            let s = crate::string::sample_pattern("[a-zA-Z0-9 \\-_.]{1,40}", &mut rng);
            assert!((1..=40).contains(&s.chars().count()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        use crate::strategy::Strategy;
        for _ in 0..1000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let f = (1.0f64..2.0).sample(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let (a, b) = (0usize..2, 1.0e5f64..1.0e9).sample(&mut rng);
            assert!(a < 2);
            assert!((1.0e5..1.0e9).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_plumbing_works(
            x in 0u64..100,
            flag in any::<bool>(),
            v in prop::collection::vec(0u8..10, 1..5),
            k in prop::sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!(x < 100);
            prop_assert!(flag == flag);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_ne!(k, 0);
            prop_assert_eq!(u64::from(k).saturating_sub(3), 0u64);
        }
    }
}
