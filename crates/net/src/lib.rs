//! # msim-net — simulated access networks for the MSPlayer reproduction
//!
//! The paper's client reaches two *different* networks at once: a home WiFi
//! attachment and a commercial LTE attachment (§5), each carrying legacy TCP
//! to servers in that network. This crate provides those substrates:
//!
//! * [`link`] — a stochastic access link (time-varying available bandwidth,
//!   jittered RTT, random loss, outages);
//! * [`tcp`] — a deterministic round-based TCP connection model with IW10
//!   slow start, CUBIC congestion avoidance ([`cubic`]), slow-start restart
//!   after idle, persistent-connection window reuse, and optional
//!   server-side pacing (Trickle-style, the paper's \[12\]), executed by
//!   an epoch-based engine that solves stable stretches in closed form
//!   (bit-identical to the preserved per-RTT reference loop);
//! * [`profile`] — calibrated WiFi/LTE path recipes for the §5 emulated
//!   testbed and the §6 production-YouTube environment;
//! * [`mobility`] — outage schedules for the mobility/robustness scenarios;
//! * [`middlebox`] — the MPTCP option-stripping motivation model (§2).
//!
//! Everything is deterministic given a seed and independent across paths, so
//! scheduler comparisons are noise-controlled: all schedulers face the exact
//! same bandwidth sample paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cubic;
pub mod link;
pub mod middlebox;
pub mod mobility;
pub mod profile;
pub mod tcp;

pub use cubic::Cubic;
pub use link::Link;
pub use mobility::OutageSchedule;
pub use profile::PathProfile;
pub use tcp::{
    TcpConfig, TcpConnection, TransferEngine, TransferOutcome, TransferResult, TransferStats,
};
