//! CUBIC congestion control (RFC 8312), the algorithm the paper's testbed
//! servers run ("standard Linux 3.5 kernel with CUBIC congestion control",
//! §5).
//!
//! Only the pieces that shape *transfer durations* are modelled: the cubic
//! window growth function between loss events, the multiplicative decrease,
//! and the TCP-friendly (Reno-tracking) lower bound. Windows are tracked in
//! packets as `f64`, as in the kernel's implementation notes.

/// CUBIC state for one connection.
///
/// `PartialEq` compares every field bit-for-bit — the warm-connection
/// equivalence tests between the epoch transfer engine and the reference
/// round loop rely on it.
#[derive(Clone, Debug, PartialEq)]
pub struct Cubic {
    /// Scaling constant C (RFC 8312 recommends 0.4).
    pub c: f64,
    /// Multiplicative decrease factor β (RFC 8312: 0.7).
    pub beta: f64,
    /// Window size (packets) just before the last reduction.
    w_max: f64,
    /// Time (s) for the cubic to return to `w_max` after a loss.
    k: f64,
    /// Seconds of congestion-avoidance time accumulated since the last loss.
    epoch_elapsed: f64,
    /// Whether a loss epoch has started (false until the first loss).
    epoch_started: bool,
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new(0.4, 0.7)
    }
}

impl Cubic {
    /// Creates a CUBIC controller with explicit constants.
    pub fn new(c: f64, beta: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        assert!((0.0..1.0).contains(&beta), "beta must be in (0,1)");
        Cubic {
            c,
            beta,
            w_max: 0.0,
            k: 0.0,
            epoch_elapsed: 0.0,
            epoch_started: false,
        }
    }

    /// Registers a congestion event at current window `cwnd_pkts`.
    /// Returns the reduced window.
    pub fn on_loss(&mut self, cwnd_pkts: f64) -> f64 {
        // Fast convergence (RFC 8312 §4.6): if we lost below the previous
        // w_max, release bandwidth by remembering a slightly smaller peak.
        if self.epoch_started && cwnd_pkts < self.w_max {
            self.w_max = cwnd_pkts * (1.0 + self.beta) / 2.0;
        } else {
            self.w_max = cwnd_pkts;
        }
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.epoch_elapsed = 0.0;
        self.epoch_started = true;
        (cwnd_pkts * self.beta).max(2.0)
    }

    /// Advances congestion-avoidance time by `dt_secs` and returns the target
    /// window, `max(W_cubic, W_est)` where `W_est` is the TCP-friendly
    /// (Reno) window estimate. `rtt_secs` is needed for `W_est`.
    ///
    /// Before any loss has occurred the caller should be in slow start; this
    /// function then just grows a cubic from the current point.
    pub fn advance(&mut self, dt_secs: f64, rtt_secs: f64, cwnd_pkts: f64) -> f64 {
        if !self.epoch_started {
            // No loss yet: initialise an epoch at the current window so the
            // cubic has an origin (mirrors kernel behaviour when entering CA
            // via ssthresh).
            self.w_max = cwnd_pkts;
            self.k = 0.0;
            self.epoch_elapsed = 0.0;
            self.epoch_started = true;
        }
        self.epoch_elapsed += dt_secs;
        // TCP-friendly region (RFC 8312 §4.2) is folded into `window_at`.
        self.window_at(self.epoch_elapsed, rtt_secs)
    }

    /// Advances congestion-avoidance time by `steps` equal increments of
    /// `dt_secs` and returns the target window, **bit-identical** to
    /// calling [`Cubic::advance`]`(dt_secs, rtt_secs, _)` `steps` times
    /// and keeping the last return value.
    ///
    /// This is the congestion-avoidance half of the epoch transfer
    /// engine's fast path: `advance` is a pure function of the
    /// *accumulated* epoch time (intermediate windows feed nothing), so a
    /// run of `steps` loss-free rounds needs exactly one polynomial
    /// evaluation. The elapsed-time accumulator is still advanced step by
    /// step — floating-point addition is not associative, and bit-parity
    /// with the per-round reference loop matters more than saving `steps`
    /// additions (they are the cheapest possible loop body).
    ///
    /// `cwnd_pkts` is only read when no epoch has started yet (mirroring
    /// [`Cubic::advance`]'s origin initialisation). `steps == 0` returns
    /// `cwnd_pkts` unchanged and touches nothing.
    pub fn advance_closed_form(
        &mut self,
        steps: u64,
        dt_secs: f64,
        rtt_secs: f64,
        cwnd_pkts: f64,
    ) -> f64 {
        if steps == 0 {
            return cwnd_pkts;
        }
        if !self.epoch_started {
            self.w_max = cwnd_pkts;
            self.k = 0.0;
            self.epoch_elapsed = 0.0;
            self.epoch_started = true;
        }
        for _ in 0..steps {
            self.epoch_elapsed += dt_secs;
        }
        self.window_at(self.epoch_elapsed, rtt_secs)
    }

    /// The target window at epoch time `t` — the exact expression
    /// [`Cubic::advance`] evaluates, factored out so the closed form and
    /// the per-round path cannot drift apart.
    fn window_at(&self, t: f64, rtt_secs: f64) -> f64 {
        let w_cubic = self.c * (t - self.k).powi(3) + self.w_max;
        let w_est = self.w_max * self.beta
            + 3.0 * (1.0 - self.beta) / (1.0 + self.beta) * (t / rtt_secs.max(1e-6));
        w_cubic.max(w_est).max(2.0)
    }

    /// Closed-form estimate of how many further `dt_secs` steps the window
    /// stays **below** `target_pkts`: inverts the cubic polynomial and the
    /// TCP-friendly line and takes the earlier crossing (exact in real
    /// arithmetic; off by at most ulps in floating point).
    ///
    /// This is an *estimate*, not a guarantee — callers must verify the
    /// end state (see the epoch engine, which re-evaluates the window at
    /// the candidate horizon and halves the skip until it proves safe).
    /// Returns 0 when the window may cross immediately; `u64::MAX`-ish
    /// large values when no crossing is in sight. When no epoch has
    /// started, the origin is projected from `cwnd_pkts` exactly as
    /// [`Cubic::advance`] would initialise it.
    pub fn steps_below(
        &self,
        target_pkts: f64,
        dt_secs: f64,
        rtt_secs: f64,
        cwnd_pkts: f64,
    ) -> u64 {
        if dt_secs <= 0.0 {
            return 0;
        }
        let (w_max, k, elapsed) = if self.epoch_started {
            (self.w_max, self.k, self.epoch_elapsed)
        } else {
            (cwnd_pkts, 0.0, 0.0)
        };
        // TCP-friendly crossing: w_max·β + 3(1−β)/(1+β)·t/rtt = target.
        let rtt = rtt_secs.max(1e-6);
        let slope = 3.0 * (1.0 - self.beta) / (1.0 + self.beta) / rtt;
        let t_est = (target_pkts - w_max * self.beta) / slope.max(1e-300);
        // The crossing of max(W_cubic, W_est) is the earlier individual
        // crossing. If the cubic is still below target at the line's
        // crossing, the line crosses first and the (expensive) cube root
        // is never needed — the common case in the post-loss sawtooth,
        // where the TCP-friendly region dominates.
        let t_cross = if t_est.is_finite()
            && t_est > 0.0
            && self.c * (t_est - k).powi(3) + w_max <= target_pkts
        {
            t_est
        } else {
            let t_cubic = k + ((target_pkts - w_max) / self.c).cbrt();
            t_cubic.min(t_est)
        };
        if !t_cross.is_finite() || t_cross <= elapsed {
            return 0;
        }
        let steps = ((t_cross - elapsed) / dt_secs).floor();
        if !steps.is_finite() {
            return 0;
        }
        steps as u64
    }

    /// Seconds of congestion-avoidance time accumulated in the current
    /// epoch (zero before any epoch starts).
    pub fn epoch_elapsed(&self) -> f64 {
        self.epoch_elapsed
    }

    /// Projects the target window at epoch time `elapsed` **without
    /// mutating state** — the read-only counterpart of
    /// [`Cubic::advance_closed_form`] used by solvers to verify a
    /// candidate skip before committing. When no epoch has started the
    /// origin is projected from `cwnd_pkts` exactly as `advance` would
    /// initialise it.
    ///
    /// Callers comparing this against thresholds must leave a relative
    /// guard: the committed value comes from the stepwise-accumulated
    /// elapsed time, which drifts from the analytic `elapsed` by a few
    /// ulps per step.
    pub fn projected_window(&self, elapsed: f64, rtt_secs: f64, cwnd_pkts: f64) -> f64 {
        if self.epoch_started {
            self.window_at(elapsed, rtt_secs)
        } else {
            let w_cubic = self.c * elapsed.powi(3) + cwnd_pkts;
            let w_est = cwnd_pkts * self.beta
                + 3.0 * (1.0 - self.beta) / (1.0 + self.beta) * (elapsed / rtt_secs.max(1e-6));
            w_cubic.max(w_est).max(2.0)
        }
    }

    /// The time constant K (seconds) of the current epoch.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The pre-loss window the cubic is converging back to.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_reduces_window_by_beta() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        assert!((reduced - 70.0).abs() < 1e-9);
        assert_eq!(c.w_max(), 100.0);
    }

    #[test]
    fn window_returns_to_w_max_at_k() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        // At t = K the cubic crosses w_max again. Use a long RTT so the
        // TCP-friendly (Reno) lower bound does not dominate the region.
        let k = c.k();
        assert!(k > 0.0);
        let w = c.advance(k, 0.5, reduced);
        assert!((w - 100.0).abs() < 2.0, "w at K = {w}");
    }

    #[test]
    fn growth_is_concave_then_convex() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        let k = c.k();
        // Sample the window on both sides of K.
        let mut prev = reduced;
        let mut deltas = Vec::new();
        let steps = 40;
        let dt = 2.0 * k / steps as f64;
        let mut cc = c.clone();
        for _ in 0..steps {
            let w = cc.advance(dt, 0.5, prev);
            deltas.push(w - prev);
            prev = w;
        }
        // Concave region: growth rate decreasing; convex region: increasing.
        let first_half_trend = deltas[3] > deltas[steps / 2 - 2];
        let second_half_trend = deltas[steps - 2] > deltas[steps / 2 + 2];
        assert!(first_half_trend, "concave before K: {deltas:?}");
        assert!(second_half_trend, "convex after K: {deltas:?}");
    }

    #[test]
    fn tcp_friendly_floor_applies_at_small_windows() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(4.0);
        // With a tiny w_max the Reno estimate quickly dominates.
        let w = c.advance(1.0, 0.05, reduced);
        let w_est = 4.0 * 0.7 + 3.0 * 0.3 / 1.7 * (1.0 / 0.05);
        assert!((w - w_est).abs() < 1e-6, "w {w} vs w_est {w_est}");
    }

    #[test]
    fn fast_convergence_shrinks_w_max() {
        let mut c = Cubic::default();
        c.on_loss(100.0);
        // Second loss below the previous peak → remembered peak shrinks.
        c.on_loss(50.0);
        assert!((c.w_max() - 50.0 * 1.7 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_never_below_two() {
        let mut c = Cubic::default();
        assert!(c.on_loss(1.0) >= 2.0);
        let w = c.advance(0.001, 0.05, 2.0);
        assert!(w >= 2.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        Cubic::new(0.4, 1.5);
    }

    #[test]
    fn closed_form_advance_is_bit_identical_to_stepping() {
        // Across loss epochs, RTT scales, and step counts, N sequential
        // advances and one closed-form advance must agree exactly — both
        // in return value and in internal state.
        for (w0, rtt, dt) in [
            (100.0, 0.5, 0.5),
            (37.3, 0.02, 0.02),
            (12.0, 0.035, 0.035),
            (250.0, 0.1, 0.1),
        ] {
            for steps in [1u64, 2, 3, 7, 50, 513, 4096] {
                let mut stepped = Cubic::default();
                let reduced = stepped.on_loss(w0);
                let mut closed = stepped.clone();

                let mut w_stepped = reduced;
                for _ in 0..steps {
                    w_stepped = stepped.advance(dt, rtt, w_stepped);
                }
                let w_closed = closed.advance_closed_form(steps, dt, rtt, reduced);
                assert_eq!(w_stepped.to_bits(), w_closed.to_bits(), "w0={w0} n={steps}");
                assert_eq!(stepped, closed, "state diverged: w0={w0} n={steps}");
            }
        }
    }

    #[test]
    fn closed_form_initialises_a_fresh_epoch_like_advance() {
        let mut a = Cubic::default();
        let mut b = Cubic::default();
        let mut w = 20.0;
        for _ in 0..17 {
            w = a.advance(0.04, 0.04, w);
        }
        let w_closed = b.advance_closed_form(17, 0.04, 0.04, 20.0);
        assert_eq!(w.to_bits(), w_closed.to_bits());
        assert_eq!(a, b);
    }

    #[test]
    fn closed_form_zero_steps_is_identity() {
        let mut c = Cubic::default();
        c.on_loss(50.0);
        let snapshot = c.clone();
        assert_eq!(c.advance_closed_form(0, 0.05, 0.05, 35.0), 35.0);
        assert_eq!(c, snapshot, "zero steps must not touch state");
    }

    #[test]
    fn steps_below_estimate_is_boundary_accurate() {
        // The estimate inverts the same polynomial the stepper evaluates:
        // stepping the estimated count must stay within fp noise of the
        // target (callers re-verify with a guard before trusting it), and
        // one more step past a finite estimate must actually cross.
        for (w0, rtt) in [(100.0, 0.05), (37.3, 0.02), (400.0, 0.25)] {
            let mut c = Cubic::default();
            let reduced = c.on_loss(w0);
            for target_mult in [1.02, 1.2, 2.0] {
                let target = w0 * target_mult;
                let n = c.steps_below(target, rtt, rtt, reduced);
                let n_check = n.min(100_000);
                let mut probe = c.clone();
                let mut w = reduced;
                for i in 0..n_check {
                    w = probe.advance(rtt, rtt, w);
                    assert!(
                        w <= target * (1.0 + 1e-9),
                        "w0={w0} target={target}: crossed at step {i} of {n_check}"
                    );
                }
                if n == n_check {
                    // Two more steps must cross (floor + fp slop ≤ 1 step).
                    let w1 = probe.advance(rtt, rtt, w);
                    let w2 = probe.advance(rtt, rtt, w1);
                    assert!(
                        w2 >= target * (1.0 - 1e-9),
                        "w0={w0} target={target}: estimate too conservative ({w2})"
                    );
                }
            }
        }
    }
}
