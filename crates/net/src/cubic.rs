//! CUBIC congestion control (RFC 8312), the algorithm the paper's testbed
//! servers run ("standard Linux 3.5 kernel with CUBIC congestion control",
//! §5).
//!
//! Only the pieces that shape *transfer durations* are modelled: the cubic
//! window growth function between loss events, the multiplicative decrease,
//! and the TCP-friendly (Reno-tracking) lower bound. Windows are tracked in
//! packets as `f64`, as in the kernel's implementation notes.

/// CUBIC state for one connection.
#[derive(Clone, Debug)]
pub struct Cubic {
    /// Scaling constant C (RFC 8312 recommends 0.4).
    pub c: f64,
    /// Multiplicative decrease factor β (RFC 8312: 0.7).
    pub beta: f64,
    /// Window size (packets) just before the last reduction.
    w_max: f64,
    /// Time (s) for the cubic to return to `w_max` after a loss.
    k: f64,
    /// Seconds of congestion-avoidance time accumulated since the last loss.
    epoch_elapsed: f64,
    /// Whether a loss epoch has started (false until the first loss).
    epoch_started: bool,
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new(0.4, 0.7)
    }
}

impl Cubic {
    /// Creates a CUBIC controller with explicit constants.
    pub fn new(c: f64, beta: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        assert!((0.0..1.0).contains(&beta), "beta must be in (0,1)");
        Cubic {
            c,
            beta,
            w_max: 0.0,
            k: 0.0,
            epoch_elapsed: 0.0,
            epoch_started: false,
        }
    }

    /// Registers a congestion event at current window `cwnd_pkts`.
    /// Returns the reduced window.
    pub fn on_loss(&mut self, cwnd_pkts: f64) -> f64 {
        // Fast convergence (RFC 8312 §4.6): if we lost below the previous
        // w_max, release bandwidth by remembering a slightly smaller peak.
        if self.epoch_started && cwnd_pkts < self.w_max {
            self.w_max = cwnd_pkts * (1.0 + self.beta) / 2.0;
        } else {
            self.w_max = cwnd_pkts;
        }
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.epoch_elapsed = 0.0;
        self.epoch_started = true;
        (cwnd_pkts * self.beta).max(2.0)
    }

    /// Advances congestion-avoidance time by `dt_secs` and returns the target
    /// window, `max(W_cubic, W_est)` where `W_est` is the TCP-friendly
    /// (Reno) window estimate. `rtt_secs` is needed for `W_est`.
    ///
    /// Before any loss has occurred the caller should be in slow start; this
    /// function then just grows a cubic from the current point.
    pub fn advance(&mut self, dt_secs: f64, rtt_secs: f64, cwnd_pkts: f64) -> f64 {
        if !self.epoch_started {
            // No loss yet: initialise an epoch at the current window so the
            // cubic has an origin (mirrors kernel behaviour when entering CA
            // via ssthresh).
            self.w_max = cwnd_pkts;
            self.k = 0.0;
            self.epoch_elapsed = 0.0;
            self.epoch_started = true;
        }
        self.epoch_elapsed += dt_secs;
        let t = self.epoch_elapsed;
        let w_cubic = self.c * (t - self.k).powi(3) + self.w_max;
        // TCP-friendly region (RFC 8312 §4.2).
        let w_est = self.w_max * self.beta
            + 3.0 * (1.0 - self.beta) / (1.0 + self.beta) * (t / rtt_secs.max(1e-6));
        w_cubic.max(w_est).max(2.0)
    }

    /// The time constant K (seconds) of the current epoch.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The pre-loss window the cubic is converging back to.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_reduces_window_by_beta() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        assert!((reduced - 70.0).abs() < 1e-9);
        assert_eq!(c.w_max(), 100.0);
    }

    #[test]
    fn window_returns_to_w_max_at_k() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        // At t = K the cubic crosses w_max again. Use a long RTT so the
        // TCP-friendly (Reno) lower bound does not dominate the region.
        let k = c.k();
        assert!(k > 0.0);
        let w = c.advance(k, 0.5, reduced);
        assert!((w - 100.0).abs() < 2.0, "w at K = {w}");
    }

    #[test]
    fn growth_is_concave_then_convex() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(100.0);
        let k = c.k();
        // Sample the window on both sides of K.
        let mut prev = reduced;
        let mut deltas = Vec::new();
        let steps = 40;
        let dt = 2.0 * k / steps as f64;
        let mut cc = c.clone();
        for _ in 0..steps {
            let w = cc.advance(dt, 0.5, prev);
            deltas.push(w - prev);
            prev = w;
        }
        // Concave region: growth rate decreasing; convex region: increasing.
        let first_half_trend = deltas[3] > deltas[steps / 2 - 2];
        let second_half_trend = deltas[steps - 2] > deltas[steps / 2 + 2];
        assert!(first_half_trend, "concave before K: {deltas:?}");
        assert!(second_half_trend, "convex after K: {deltas:?}");
    }

    #[test]
    fn tcp_friendly_floor_applies_at_small_windows() {
        let mut c = Cubic::default();
        let reduced = c.on_loss(4.0);
        // With a tiny w_max the Reno estimate quickly dominates.
        let w = c.advance(1.0, 0.05, reduced);
        let w_est = 4.0 * 0.7 + 3.0 * 0.3 / 1.7 * (1.0 / 0.05);
        assert!((w - w_est).abs() < 1e-6, "w {w} vs w_est {w_est}");
    }

    #[test]
    fn fast_convergence_shrinks_w_max() {
        let mut c = Cubic::default();
        c.on_loss(100.0);
        // Second loss below the previous peak → remembered peak shrinks.
        c.on_loss(50.0);
        assert!((c.w_max() - 50.0 * 1.7 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_never_below_two() {
        let mut c = Cubic::default();
        assert!(c.on_loss(1.0) >= 2.0);
        let w = c.advance(0.001, 0.05, 2.0);
        assert!(w >= 2.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        Cubic::new(0.4, 1.5);
    }
}
