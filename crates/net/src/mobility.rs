//! Mobility modelling: link outage schedules.
//!
//! The paper motivates MSPlayer with connections that "break down
//! temporarily due to mobility" (§1) and reports (without figures) that
//! MSPlayer sustains playback through such events. An [`OutageSchedule`] is
//! a set of half-open `[start, end)` windows during which a link is dead;
//! it can be fixed (scripted scenarios) or generated from a two-state
//! renewal process (random walking-around-town connectivity).

use msim_core::rng::Prng;
use msim_core::time::{SimDuration, SimTime};

/// A set of non-overlapping, sorted outage windows.
#[derive(Clone, Debug)]
pub struct OutageSchedule {
    /// Sorted, disjoint `[start, end)` windows.
    windows: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// Builds a schedule from explicit windows; they are sorted and must be
    /// disjoint and well-formed.
    pub fn from_windows(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.sort_by_key(|w| w.0);
        for w in &windows {
            assert!(w.0 < w.1, "empty or inverted outage window {w:?}");
        }
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping outage windows");
        }
        OutageSchedule { windows }
    }

    /// Generates a schedule from a renewal process over `[0, horizon)`:
    /// up-times are exponential with mean `mean_up`, outages exponential
    /// with mean `mean_down`.
    pub fn generate(
        horizon: SimTime,
        mean_up: SimDuration,
        mean_down: SimDuration,
        rng: &mut Prng,
    ) -> Self {
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let up = SimDuration::from_secs_f64(rng.exponential(mean_up.as_secs_f64()));
            let start = t + up;
            if start >= horizon {
                break;
            }
            let down =
                SimDuration::from_secs_f64(rng.exponential(mean_down.as_secs_f64()).max(0.001));
            let end = start + down;
            windows.push((start, end.min(horizon)));
            t = end;
            if t >= horizon {
                break;
            }
        }
        OutageSchedule { windows }
    }

    /// A schedule with no outages.
    pub fn none() -> Self {
        OutageSchedule {
            windows: Vec::new(),
        }
    }

    /// True when the link is up at `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        !self.windows.iter().any(|&(s, e)| s <= t && t < e)
    }

    /// The first instant at or after `t` when the link is up. If `t` is
    /// inside an outage this is that window's end, otherwise `t` itself.
    pub fn next_up(&self, t: SimTime) -> SimTime {
        for &(s, e) in &self.windows {
            if s <= t && t < e {
                return e;
            }
        }
        t
    }

    /// The start of the first outage at or after `t`, if any.
    pub fn next_outage_after(&self, t: SimTime) -> Option<SimTime> {
        self.windows.iter().map(|&(s, _)| s).find(|&s| s >= t)
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Total downtime inside `[0, horizon)`.
    pub fn downtime(&self, horizon: SimTime) -> SimDuration {
        self.windows
            .iter()
            .map(|&(s, e)| e.min(horizon).saturating_since(s.min(horizon)))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_windows_queries() {
        let s = OutageSchedule::from_windows(vec![
            (SimTime::from_secs(10), SimTime::from_secs(12)),
            (SimTime::from_secs(20), SimTime::from_secs(25)),
        ]);
        assert!(s.is_up(SimTime::from_secs(5)));
        assert!(!s.is_up(SimTime::from_secs(11)));
        assert!(s.is_up(SimTime::from_secs(12)), "end is exclusive");
        assert_eq!(s.next_up(SimTime::from_secs(11)), SimTime::from_secs(12));
        assert_eq!(s.next_up(SimTime::from_secs(13)), SimTime::from_secs(13));
        assert_eq!(
            s.next_outage_after(SimTime::from_secs(13)),
            Some(SimTime::from_secs(20))
        );
        assert_eq!(s.next_outage_after(SimTime::from_secs(30)), None);
    }

    #[test]
    fn windows_are_sorted_on_construction() {
        let s = OutageSchedule::from_windows(vec![
            (SimTime::from_secs(20), SimTime::from_secs(25)),
            (SimTime::from_secs(10), SimTime::from_secs(12)),
        ]);
        assert_eq!(s.windows()[0].0, SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_rejected() {
        OutageSchedule::from_windows(vec![
            (SimTime::from_secs(10), SimTime::from_secs(15)),
            (SimTime::from_secs(14), SimTime::from_secs(20)),
        ]);
    }

    #[test]
    fn downtime_accounting() {
        let s = OutageSchedule::from_windows(vec![
            (SimTime::from_secs(10), SimTime::from_secs(12)),
            (SimTime::from_secs(20), SimTime::from_secs(25)),
        ]);
        assert_eq!(
            s.downtime(SimTime::from_secs(100)),
            SimDuration::from_secs(7)
        );
        // Horizon truncates the second window.
        assert_eq!(
            s.downtime(SimTime::from_secs(22)),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn generated_schedule_respects_horizon_and_means() {
        let mut rng = Prng::new(3);
        let horizon = SimTime::from_secs(10_000);
        let s = OutageSchedule::generate(
            horizon,
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            &mut rng,
        );
        assert!(!s.windows().is_empty());
        for &(start, end) in s.windows() {
            assert!(start < end && end <= horizon);
        }
        // Duty cycle ≈ 100/110 up.
        let down_frac = s.downtime(horizon).as_secs_f64() / horizon.as_secs_f64();
        assert!(
            (0.04..0.16).contains(&down_frac),
            "down fraction {down_frac}"
        );
    }

    #[test]
    fn none_schedule_always_up() {
        let s = OutageSchedule::none();
        assert!(s.is_up(SimTime::from_secs(1_000_000)));
        assert_eq!(s.downtime(SimTime::from_secs(1000)), SimDuration::ZERO);
    }
}
