//! Round-based TCP connection model, executed by an epoch-based transfer
//! engine.
//!
//! Every HTTP range request in the paper's system rides a persistent legacy
//! TCP connection. What determines a chunk's download time is:
//!
//! * one RTT of request latency ("packets start to arrive one RTT after the
//!   request is sent", §2),
//! * the congestion window ramp (slow start from IW10, CUBIC afterwards),
//! * the available bandwidth of the access link during the transfer,
//! * losses (queue overflow at the bottleneck + random wireless loss),
//! * slow-start restart after ON/OFF idle periods (RFC 2861), which matters
//!   in the re-buffering phase of Figs. 3/5.
//!
//! The model simulates these per RTT "round": each round delivers
//! `min(cwnd, BDP)` bytes, cwnd grows per slow start / CUBIC, and losses cut
//! it. This fluid approximation is standard for transfer-time studies and is
//! deterministic given the link's RNG streams.
//!
//! # The two engines
//!
//! Two interchangeable engines execute that model:
//!
//! * [`rounds`] — the reference **round loop**: one iteration per RTT,
//!   exactly the historical implementation (the differential baseline,
//!   like `event::fourary::FourAryQueue` is for the event queue);
//! * [`epoch`] — the default **epoch engine**: the same model decomposed
//!   into composable phases (request latency, slow-start ramp, CUBIC
//!   growth, pacing, drain, idle restart, dead link) over explicit epoch
//!   boundaries. Wherever the link advertises a [`StableWindow`] (constant
//!   rate/RTT, zero loss probability, *zero randomness consumed per
//!   round*), the engine solves whole runs of rounds in closed form —
//!   geometric sums in slow start, the CUBIC window polynomial in
//!   congestion avoidance — and replays only the state arithmetic the
//!   round loop would have performed, in the same order, so results are
//!   **bit-identical**: same [`TransferResult`] model fields, same RNG
//!   stream positions, same warm-connection state.
//!
//! Select an engine per connection via [`TcpConfig::engine`]; differential
//! tests in `crates/net/tests/transfer_engines.rs` pin the equivalence
//! across randomized profiles, handoffs, idle gaps, and loss regimes.
//!
//! [`StableWindow`]: crate::link::StableWindow

pub mod epoch;
pub mod fluid;
pub mod rounds;

use crate::cubic::Cubic;
use crate::link::Link;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::{BitRate, ByteSize};

/// Which transfer engine a connection runs (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransferEngine {
    /// The epoch-based engine with the closed-form fast path (default).
    #[default]
    Epoch,
    /// The per-RTT reference loop — bit-identical, slower on stable
    /// links; keep it at hand for debugging and differential testing.
    RoundLoop,
}

/// Tunables for the TCP model (defaults match a Linux 3.5-era stack).
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in packets (IW10 per RFC 6928).
    pub initial_cwnd_pkts: f64,
    /// Initial slow-start threshold in packets (effectively unbounded).
    pub initial_ssthresh_pkts: f64,
    /// Bottleneck queue capacity as a multiple of the instantaneous BDP.
    pub queue_bdp_factor: f64,
    /// Restart threshold: idle longer than this triggers slow-start restart
    /// (RFC 2861). `None` disables restart.
    pub idle_restart: Option<SimDuration>,
    /// Window the connection restarts with after idle, in packets.
    pub restart_cwnd_pkts: f64,
    /// Receiver window cap in bytes (e.g. default 3 MB auto-tuning ceiling).
    pub rwnd_bytes: u64,
    /// Abort a transfer after the link has been dead for this long
    /// (models application-level timeout on top of TCP retransmission).
    pub dead_link_timeout: SimDuration,
    /// Which transfer engine executes requests on this connection.
    pub engine: TransferEngine,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            initial_cwnd_pkts: 10.0,
            initial_ssthresh_pkts: f64::INFINITY,
            queue_bdp_factor: 1.0,
            idle_restart: Some(SimDuration::from_millis(1_000)),
            restart_cwnd_pkts: 10.0,
            rwnd_bytes: 3 * 1024 * 1024,
            dead_link_timeout: SimDuration::from_secs(4),
            engine: TransferEngine::default(),
        }
    }
}

/// Why a transfer ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// All requested bytes delivered.
    Complete,
    /// The link stayed dead past [`TcpConfig::dead_link_timeout`].
    TimedOut,
}

/// Execution telemetry of one transfer: how the engine got the result,
/// never *what* the result is. The model fields of [`TransferResult`] are
/// engine-independent (differential-tested); these counters are not — the
/// round loop always reports zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Stable-link epochs the engine ran fast-path rounds in.
    pub epochs: u32,
    /// Rounds executed on the fast path (lean or closed-form-solved).
    pub fast_rounds: u32,
    /// The subset of `fast_rounds` skipped by a closed-form solve
    /// (geometric slow start, CUBIC polynomial, cap-limited runs).
    pub solved_rounds: u32,
}

impl TransferStats {
    /// Accumulates another transfer's telemetry (saturating).
    pub fn absorb(&mut self, other: TransferStats) {
        self.epochs = self.epochs.saturating_add(other.epochs);
        self.fast_rounds = self.fast_rounds.saturating_add(other.fast_rounds);
        self.solved_rounds = self.solved_rounds.saturating_add(other.solved_rounds);
    }
}

/// The result of simulating one request/response transfer.
#[derive(Clone, Debug)]
pub struct TransferResult {
    /// When the request was issued.
    pub requested_at: SimTime,
    /// When the first response byte arrived.
    pub first_byte_at: SimTime,
    /// When the last byte arrived (or the abort time on timeout).
    pub completed_at: SimTime,
    /// Bytes actually delivered.
    pub delivered: ByteSize,
    /// Number of TCP rounds the transfer took.
    pub rounds: u32,
    /// Congestion events experienced.
    pub losses: u32,
    /// How it ended.
    pub outcome: TransferOutcome,
    /// Engine telemetry (epochs engaged, fast-path rounds). Excluded from
    /// the bit-identity contract between engines.
    pub stats: TransferStats,
}

impl TransferResult {
    /// Transfer duration as seen by the application: request to last byte.
    pub fn duration(&self) -> SimDuration {
        self.completed_at.saturating_since(self.requested_at)
    }

    /// Application-level goodput over the whole request.
    pub fn goodput(&self) -> BitRate {
        BitRate::from_transfer(self.delivered, self.duration())
    }
}

/// Connection state that persists across requests on a keep-alive
/// connection: the congestion window survives between chunks, subject to
/// slow-start restart after idleness.
pub struct TcpConnection {
    cfg: TcpConfig,
    cubic: Cubic,
    cwnd_pkts: f64,
    ssthresh_pkts: f64,
    /// Set once the 3WHS is done.
    established_at: Option<SimTime>,
    /// Completion time of the most recent activity.
    last_activity: SimTime,
    /// Total bytes delivered on this connection (for server pacing models).
    total_delivered: u64,
    /// Optional server-side pacing: (burst bytes sent unpaced, pace rate).
    pace: Option<(u64, BitRate)>,
}

impl TcpConnection {
    /// Creates an unconnected connection with the given config.
    pub fn new(cfg: TcpConfig) -> Self {
        let cwnd = cfg.initial_cwnd_pkts;
        let ssthresh = cfg.initial_ssthresh_pkts;
        TcpConnection {
            cfg,
            cubic: Cubic::default(),
            cwnd_pkts: cwnd,
            ssthresh_pkts: ssthresh,
            established_at: None,
            last_activity: SimTime::ZERO,
            total_delivered: 0,
            pace: None,
        }
    }

    /// Applies a server-side pacing policy: the first `burst` bytes of the
    /// connection are sent at link speed, the remainder paced at `rate`.
    /// Models YouTube's Trickle-style rate limiting (cited as \[12\] in the
    /// paper).
    pub fn with_server_pacing(mut self, burst: ByteSize, rate: BitRate) -> Self {
        self.pace = Some((burst.as_u64(), rate));
        self
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.established_at.is_some()
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd_pkts * self.cfg.mss as f64
    }

    /// Performs the TCP three-way handshake starting at `now`. The
    /// connection can carry a request after one RTT. Returns the instant at
    /// which the first request may be sent.
    pub fn connect(&mut self, link: &mut Link, now: SimTime) -> SimTime {
        let rtt = link.rtt_at(now);
        let done = now + rtt;
        self.established_at = Some(done);
        self.last_activity = done;
        done
    }

    /// Simulates a request for `size` bytes issued at `now` (which must be
    /// at or after the handshake completion). Returns the transfer record.
    ///
    /// The request consumes one upstream half-RTT; the first data packet
    /// arrives a full RTT after the request. Subsequent rounds deliver
    /// `min(cwnd, avail·RTT, rwnd, pace·RTT)` bytes each.
    ///
    /// Execution is delegated to the engine selected by
    /// [`TcpConfig::engine`]; both engines produce bit-identical model
    /// results (see the module docs).
    pub fn request(&mut self, link: &mut Link, now: SimTime, size: ByteSize) -> TransferResult {
        assert!(self.established_at.is_some(), "request() before connect()");
        debug_assert!(size.as_u64() > 0, "zero-byte request");

        // Phase: slow-start restart after idle (RFC 2861) — shared by
        // both engines, before any round runs.
        self.idle_restart_phase(now);

        if msim_core::telemetry::enabled() {
            let engine = match self.cfg.engine {
                TransferEngine::Epoch => "epoch",
                TransferEngine::RoundLoop => "rounds",
            };
            msim_core::telemetry::count_with(
                "msp_transfer_requests_total",
                &[("engine", engine)],
                1,
            );
        }
        match self.cfg.engine {
            TransferEngine::Epoch => epoch::run(self, link, now, size),
            TransferEngine::RoundLoop => rounds::run(self, link, now, size),
        }
    }

    /// Resets the window if the connection idled past the restart
    /// threshold (RFC 2861).
    fn idle_restart_phase(&mut self, now: SimTime) {
        if let Some(idle_limit) = self.cfg.idle_restart {
            let idle = now.saturating_since(self.last_activity);
            if idle > idle_limit {
                self.cwnd_pkts = self.cfg.restart_cwnd_pkts;
                self.ssthresh_pkts = self.cfg.initial_ssthresh_pkts;
                self.cubic = Cubic::default();
            }
        }
    }

    /// A bit-exact snapshot of the warm-connection state that persists
    /// across keep-alive requests. The engine-equivalence tests compare
    /// these to prove that a chunk served by the fast path leaves the
    /// connection in exactly the state the round loop would have.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            cwnd_pkts: self.cwnd_pkts,
            ssthresh_pkts: self.ssthresh_pkts,
            total_delivered: self.total_delivered,
            last_activity: self.last_activity,
            cubic: self.cubic.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        requested_at: SimTime,
        first_byte_at: SimTime,
        completed_at: SimTime,
        delivered: f64,
        rounds: u32,
        losses: u32,
        outcome: TransferOutcome,
        stats: TransferStats,
    ) -> TransferResult {
        self.last_activity = completed_at;
        TransferResult {
            requested_at,
            first_byte_at,
            completed_at,
            delivered: ByteSize::bytes(delivered.max(0.0) as u64),
            rounds,
            losses,
            outcome,
            stats,
        }
    }

    /// Link rate, additionally capped by server pacing once past the burst.
    fn effective_rate(&self, link: &mut Link, t: SimTime) -> BitRate {
        let link_rate = link.rate_at(t);
        match self.pace {
            Some((burst, pace_rate)) if self.total_delivered >= burst => {
                BitRate::bps(link_rate.as_bps().min(pace_rate.as_bps()))
            }
            _ => link_rate,
        }
    }
}

/// Warm-connection state observable across keep-alive requests — see
/// [`TcpConnection::snapshot`]. `PartialEq` is bit-exact (`f64` fields
/// compare by value, the CUBIC state field-by-field).
#[derive(Clone, Debug, PartialEq)]
pub struct ConnSnapshot {
    /// Congestion window, packets.
    pub cwnd_pkts: f64,
    /// Slow-start threshold, packets.
    pub ssthresh_pkts: f64,
    /// Lifetime bytes delivered (drives server pacing).
    pub total_delivered: u64,
    /// Completion time of the most recent activity (drives idle restart).
    pub last_activity: SimTime,
    /// Full CUBIC controller state.
    pub cubic: Cubic,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::process::Constant;
    use msim_core::rng::Prng;

    fn quiet_link(mbps: f64, rtt_ms: u64) -> Link {
        Link::new(
            "test",
            Constant(mbps),
            SimDuration::from_millis(rtt_ms),
            0.0,
            0.0,
            Prng::new(1),
        )
    }

    fn connected(cfg: TcpConfig, link: &mut Link) -> (TcpConnection, SimTime) {
        let mut conn = TcpConnection::new(cfg);
        let ready = conn.connect(link, SimTime::ZERO);
        (conn, ready)
    }

    #[test]
    fn handshake_costs_one_rtt() {
        let mut link = quiet_link(10.0, 50);
        let (_conn, ready) = connected(TcpConfig::default(), &mut link);
        assert_eq!(ready, SimTime::from_millis(50));
    }

    #[test]
    fn small_transfer_is_request_rtt_plus_drain() {
        let mut link = quiet_link(8.0, 50);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        // 10 KB fits in the initial window (10 * 1448 = 14 480 B).
        let res = conn.request(&mut link, ready, ByteSize::kb(10));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        assert_eq!(res.delivered, ByteSize::kb(10));
        // 1 RTT for the request + partial round: strictly more than 1 RTT,
        // at most 2 RTT.
        let dur = res.duration().as_secs_f64();
        assert!((0.05..0.10).contains(&dur), "duration {dur}");
    }

    #[test]
    fn slow_start_doubles_per_round() {
        let mut link = quiet_link(1000.0, 100); // fat link so BDP is never binding
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        // 1 MB at IW10: rounds deliver ~10, 20, 40, 80, ... packets.
        let res = conn.request(&mut link, ready, ByteSize::mb(1));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        // 1 MB = 724 packets → IW10 doubling: 10+20+40+80+160+320 = 630 in 6
        // rounds, finishing inside round 7. Request RTT adds 1.
        assert!((6..=8).contains(&res.rounds), "rounds {}", res.rounds);
    }

    #[test]
    fn throughput_approaches_link_rate_for_large_transfers() {
        let mut link = quiet_link(10.0, 30);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(8));
        let goodput = res.goodput().as_mbps();
        assert!(
            (7.0..=10.0).contains(&goodput),
            "goodput {goodput} Mbit/s on a 10 Mbit/s link"
        );
    }

    #[test]
    fn persistent_connection_keeps_cwnd_across_requests() {
        let mut link = quiet_link(50.0, 40);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let first = conn.request(&mut link, ready, ByteSize::mb(1));
        let warm_cwnd = conn.cwnd_bytes();
        // Second request right away: no idle restart, warm window.
        let second = conn.request(&mut link, first.completed_at, ByteSize::mb(1));
        assert!(second.duration() < first.duration(), "warm transfer faster");
        // The warm window may take congestion cuts, but stays well above IW10.
        assert!(conn.cwnd_bytes() >= warm_cwnd * 0.3);
        assert!(conn.cwnd_bytes() > 10.0 * 1448.0 * 2.0);
    }

    #[test]
    fn idle_restart_resets_window() {
        let mut link = quiet_link(50.0, 40);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let first = conn.request(&mut link, ready, ByteSize::mb(1));
        let warm = conn.cwnd_bytes();
        assert!(warm > 10.0 * 1448.0);
        // Wait 5 s (ON/OFF gap) then request again: window restarts.
        let later = first.completed_at + SimDuration::from_secs(5);
        let second = conn.request(&mut link, later, ByteSize::mb(1));
        assert!(
            second.rounds >= first.rounds.saturating_sub(1),
            "cold again"
        );
    }

    #[test]
    fn random_loss_slows_transfers() {
        let mk = |loss: f64, seed: u64| {
            let mut link = Link::new(
                "l",
                Constant(20.0),
                SimDuration::from_millis(40),
                0.0,
                loss,
                Prng::new(seed),
            );
            let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
            conn.request(&mut link, ready, ByteSize::mb(4)).duration()
        };
        let clean: f64 = (0..5).map(|s| mk(0.0, s).as_secs_f64()).sum();
        let lossy: f64 = (0..5).map(|s| mk(0.10, s).as_secs_f64()).sum();
        assert!(lossy > clean, "lossy {lossy} vs clean {clean}");
    }

    #[test]
    fn server_pacing_caps_goodput_after_burst() {
        let mut link = quiet_link(50.0, 30);
        let mut conn = TcpConnection::new(TcpConfig::default())
            .with_server_pacing(ByteSize::kb(256), BitRate::mbps(2.0));
        let ready = conn.connect(&mut link, SimTime::ZERO);
        let res = conn.request(&mut link, ready, ByteSize::mb(4));
        let goodput = res.goodput().as_mbps();
        assert!(goodput < 3.0, "paced goodput {goodput}");
    }

    #[test]
    fn outage_times_out_transfer() {
        use crate::mobility::OutageSchedule;
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_millis(100), SimTime::from_secs(60))]);
        let mut link = quiet_link(10.0, 50).with_outages(sched);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(8));
        assert_eq!(res.outcome, TransferOutcome::TimedOut);
        assert!(res.delivered < ByteSize::mb(8));
        // Abort happens within timeout + a couple of rounds.
        assert!(res.completed_at < SimTime::from_secs(10));
    }

    #[test]
    fn short_outage_recovers_and_completes() {
        use crate::mobility::OutageSchedule;
        let sched = OutageSchedule::from_windows(vec![(
            SimTime::from_millis(200),
            SimTime::from_millis(700),
        )]);
        let mut link = quiet_link(10.0, 50).with_outages(sched);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(2));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        assert!(res.losses >= 1, "outage registered as loss");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut link = Link::new(
                "l",
                Constant(12.0),
                SimDuration::from_millis(35),
                0.15,
                0.01,
                Prng::new(99),
            );
            let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
            conn.request(&mut link, ready, ByteSize::mb(3)).completed_at
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "before connect")]
    fn request_requires_connect() {
        let mut link = quiet_link(10.0, 50);
        let mut conn = TcpConnection::new(TcpConfig::default());
        conn.request(&mut link, SimTime::ZERO, ByteSize::kb(1));
    }
}
