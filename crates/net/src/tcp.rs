//! Round-based TCP connection model.
//!
//! Every HTTP range request in the paper's system rides a persistent legacy
//! TCP connection. What determines a chunk's download time is:
//!
//! * one RTT of request latency ("packets start to arrive one RTT after the
//!   request is sent", §2),
//! * the congestion window ramp (slow start from IW10, CUBIC afterwards),
//! * the available bandwidth of the access link during the transfer,
//! * losses (queue overflow at the bottleneck + random wireless loss),
//! * slow-start restart after ON/OFF idle periods (RFC 2861), which matters
//!   in the re-buffering phase of Figs. 3/5.
//!
//! The model simulates these per RTT "round": each round delivers
//! `min(cwnd, BDP)` bytes, cwnd grows per slow start / CUBIC, and losses cut
//! it. This fluid approximation is standard for transfer-time studies and is
//! deterministic given the link's RNG streams.

use crate::cubic::Cubic;
use crate::link::Link;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::{BitRate, ByteSize};

/// Tunables for the TCP model (defaults match a Linux 3.5-era stack).
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in packets (IW10 per RFC 6928).
    pub initial_cwnd_pkts: f64,
    /// Initial slow-start threshold in packets (effectively unbounded).
    pub initial_ssthresh_pkts: f64,
    /// Bottleneck queue capacity as a multiple of the instantaneous BDP.
    pub queue_bdp_factor: f64,
    /// Restart threshold: idle longer than this triggers slow-start restart
    /// (RFC 2861). `None` disables restart.
    pub idle_restart: Option<SimDuration>,
    /// Window the connection restarts with after idle, in packets.
    pub restart_cwnd_pkts: f64,
    /// Receiver window cap in bytes (e.g. default 3 MB auto-tuning ceiling).
    pub rwnd_bytes: u64,
    /// Abort a transfer after the link has been dead for this long
    /// (models application-level timeout on top of TCP retransmission).
    pub dead_link_timeout: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            initial_cwnd_pkts: 10.0,
            initial_ssthresh_pkts: f64::INFINITY,
            queue_bdp_factor: 1.0,
            idle_restart: Some(SimDuration::from_millis(1_000)),
            restart_cwnd_pkts: 10.0,
            rwnd_bytes: 3 * 1024 * 1024,
            dead_link_timeout: SimDuration::from_secs(4),
        }
    }
}

/// Why a transfer ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// All requested bytes delivered.
    Complete,
    /// The link stayed dead past [`TcpConfig::dead_link_timeout`].
    TimedOut,
}

/// The result of simulating one request/response transfer.
#[derive(Clone, Debug)]
pub struct TransferResult {
    /// When the request was issued.
    pub requested_at: SimTime,
    /// When the first response byte arrived.
    pub first_byte_at: SimTime,
    /// When the last byte arrived (or the abort time on timeout).
    pub completed_at: SimTime,
    /// Bytes actually delivered.
    pub delivered: ByteSize,
    /// Number of TCP rounds the transfer took.
    pub rounds: u32,
    /// Congestion events experienced.
    pub losses: u32,
    /// How it ended.
    pub outcome: TransferOutcome,
}

impl TransferResult {
    /// Transfer duration as seen by the application: request to last byte.
    pub fn duration(&self) -> SimDuration {
        self.completed_at.saturating_since(self.requested_at)
    }

    /// Application-level goodput over the whole request.
    pub fn goodput(&self) -> BitRate {
        BitRate::from_transfer(self.delivered, self.duration())
    }
}

/// Connection state that persists across requests on a keep-alive
/// connection: the congestion window survives between chunks, subject to
/// slow-start restart after idleness.
pub struct TcpConnection {
    cfg: TcpConfig,
    cubic: Cubic,
    cwnd_pkts: f64,
    ssthresh_pkts: f64,
    /// Set once the 3WHS is done.
    established_at: Option<SimTime>,
    /// Completion time of the most recent activity.
    last_activity: SimTime,
    /// Total bytes delivered on this connection (for server pacing models).
    total_delivered: u64,
    /// Optional server-side pacing: (burst bytes sent unpaced, pace rate).
    pace: Option<(u64, BitRate)>,
}

impl TcpConnection {
    /// Creates an unconnected connection with the given config.
    pub fn new(cfg: TcpConfig) -> Self {
        let cwnd = cfg.initial_cwnd_pkts;
        let ssthresh = cfg.initial_ssthresh_pkts;
        TcpConnection {
            cfg,
            cubic: Cubic::default(),
            cwnd_pkts: cwnd,
            ssthresh_pkts: ssthresh,
            established_at: None,
            last_activity: SimTime::ZERO,
            total_delivered: 0,
            pace: None,
        }
    }

    /// Applies a server-side pacing policy: the first `burst` bytes of the
    /// connection are sent at link speed, the remainder paced at `rate`.
    /// Models YouTube's Trickle-style rate limiting (cited as \[12\] in the
    /// paper).
    pub fn with_server_pacing(mut self, burst: ByteSize, rate: BitRate) -> Self {
        self.pace = Some((burst.as_u64(), rate));
        self
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.established_at.is_some()
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd_pkts * self.cfg.mss as f64
    }

    /// Performs the TCP three-way handshake starting at `now`. The
    /// connection can carry a request after one RTT. Returns the instant at
    /// which the first request may be sent.
    pub fn connect(&mut self, link: &mut Link, now: SimTime) -> SimTime {
        let rtt = link.rtt_at(now);
        let done = now + rtt;
        self.established_at = Some(done);
        self.last_activity = done;
        done
    }

    /// Simulates a request for `size` bytes issued at `now` (which must be
    /// at or after the handshake completion). Returns the transfer record.
    ///
    /// The request consumes one upstream half-RTT; the first data packet
    /// arrives a full RTT after the request. Subsequent rounds deliver
    /// `min(cwnd, avail·RTT, rwnd, pace·RTT)` bytes each.
    pub fn request(&mut self, link: &mut Link, now: SimTime, size: ByteSize) -> TransferResult {
        assert!(self.established_at.is_some(), "request() before connect()");
        debug_assert!(size.as_u64() > 0, "zero-byte request");

        // Slow-start restart after idle (RFC 2861).
        if let Some(idle_limit) = self.cfg.idle_restart {
            let idle = now.saturating_since(self.last_activity);
            if idle > idle_limit {
                self.cwnd_pkts = self.cfg.restart_cwnd_pkts;
                self.ssthresh_pkts = self.cfg.initial_ssthresh_pkts;
                self.cubic = Cubic::default();
            }
        }

        let mss = self.cfg.mss as f64;
        let mut t = now;
        let mut remaining = size.as_u64() as f64;
        let mut rounds: u32 = 0;
        let mut losses: u32 = 0;
        let mut first_byte_at: Option<SimTime> = None;
        let mut dead_for = SimDuration::ZERO;

        // The request packet travels for one RTT before data flows.
        let req_rtt = link.rtt_at(t);
        t += req_rtt;
        first_byte_at.get_or_insert(t);

        while remaining > 0.0 {
            rounds += 1;
            let rtt = link.rtt_at(t);
            let rate = self.effective_rate(link, t);

            if rate.as_bps() <= 0.0 {
                // Link dead: TCP retransmits silently; the application aborts
                // after `dead_link_timeout`.
                if let Some(up_at) = link.next_up_after(t) {
                    let wait = up_at.saturating_since(t);
                    dead_for += wait;
                    if dead_for >= self.cfg.dead_link_timeout {
                        let abort_at = t + self
                            .cfg
                            .dead_link_timeout
                            .saturating_sub(dead_for.saturating_sub(wait));
                        return self.finish(
                            now,
                            first_byte_at.unwrap_or(abort_at),
                            abort_at,
                            size.as_u64() as f64 - remaining,
                            rounds,
                            losses,
                            TransferOutcome::TimedOut,
                        );
                    }
                    t = up_at;
                    // Loss of a full window during the outage.
                    self.cwnd_pkts = self.cubic.on_loss(self.cwnd_pkts);
                    self.ssthresh_pkts = self.cwnd_pkts;
                    losses += 1;
                    continue;
                }
                // No scheduled recovery: abort at the timeout.
                let abort_at = t + self.cfg.dead_link_timeout;
                return self.finish(
                    now,
                    first_byte_at.unwrap_or(abort_at),
                    abort_at,
                    size.as_u64() as f64 - remaining,
                    rounds,
                    losses,
                    TransferOutcome::TimedOut,
                );
            }
            dead_for = SimDuration::ZERO;

            let bdp_bytes = rate.bytes_per_sec() * rtt.as_secs_f64();
            let queue_bytes = bdp_bytes * self.cfg.queue_bdp_factor;
            let cwnd_bytes = self.cwnd_pkts * mss;

            // Bytes the sender puts on the wire this round.
            let offered = cwnd_bytes
                .min(self.cfg.rwnd_bytes as f64)
                .min(remaining.max(mss));
            // Bytes that fit through the bottleneck in one RTT.
            let deliverable = bdp_bytes.max(mss);
            let sent = offered.min(remaining);
            let delivered = sent.min(deliverable);

            // Congestion: window exceeded path capacity + queue.
            let overflow = offered > bdp_bytes + queue_bytes;
            let random_loss = link.random_loss();

            // Time for this round: a full RTT, or the fraction needed to
            // finish the remaining bytes at the deliverable rate.
            let round_time = if delivered >= remaining {
                // Last round: time to drain `remaining` at the line rate,
                // at most one RTT.
                let frac = (remaining / deliverable).min(1.0);
                rtt.mul_f64(frac.max(0.05))
            } else {
                rtt
            };

            remaining -= delivered;
            self.total_delivered += delivered as u64;
            t += round_time;

            if remaining <= 0.0 {
                break;
            }

            // Window evolution for the next round.
            if overflow || random_loss {
                losses += 1;
                self.cwnd_pkts = self.cubic.on_loss(self.cwnd_pkts);
                self.ssthresh_pkts = self.cwnd_pkts;
            } else if self.cwnd_pkts < self.ssthresh_pkts {
                // Slow start: cwnd grows by one MSS per ACKed segment.
                self.cwnd_pkts += delivered / mss;
                if self.cwnd_pkts >= self.ssthresh_pkts {
                    self.cwnd_pkts = self.ssthresh_pkts;
                }
            } else {
                self.cwnd_pkts =
                    self.cubic
                        .advance(rtt.as_secs_f64(), rtt.as_secs_f64(), self.cwnd_pkts);
            }
            // The window never usefully exceeds what the receiver offers.
            let rwnd_pkts = self.cfg.rwnd_bytes as f64 / mss;
            self.cwnd_pkts = self.cwnd_pkts.min(rwnd_pkts).max(2.0);
        }

        self.finish(
            now,
            first_byte_at.expect("first byte recorded"),
            t,
            size.as_u64() as f64,
            rounds,
            losses,
            TransferOutcome::Complete,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        requested_at: SimTime,
        first_byte_at: SimTime,
        completed_at: SimTime,
        delivered: f64,
        rounds: u32,
        losses: u32,
        outcome: TransferOutcome,
    ) -> TransferResult {
        self.last_activity = completed_at;
        TransferResult {
            requested_at,
            first_byte_at,
            completed_at,
            delivered: ByteSize::bytes(delivered.max(0.0) as u64),
            rounds,
            losses,
            outcome,
        }
    }

    /// Link rate, additionally capped by server pacing once past the burst.
    fn effective_rate(&self, link: &mut Link, t: SimTime) -> BitRate {
        let link_rate = link.rate_at(t);
        match self.pace {
            Some((burst, pace_rate)) if self.total_delivered >= burst => {
                BitRate::bps(link_rate.as_bps().min(pace_rate.as_bps()))
            }
            _ => link_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::process::Constant;
    use msim_core::rng::Prng;

    fn quiet_link(mbps: f64, rtt_ms: u64) -> Link {
        Link::new(
            "test",
            Box::new(Constant(mbps)),
            SimDuration::from_millis(rtt_ms),
            0.0,
            0.0,
            Prng::new(1),
        )
    }

    fn connected(cfg: TcpConfig, link: &mut Link) -> (TcpConnection, SimTime) {
        let mut conn = TcpConnection::new(cfg);
        let ready = conn.connect(link, SimTime::ZERO);
        (conn, ready)
    }

    #[test]
    fn handshake_costs_one_rtt() {
        let mut link = quiet_link(10.0, 50);
        let (_conn, ready) = connected(TcpConfig::default(), &mut link);
        assert_eq!(ready, SimTime::from_millis(50));
    }

    #[test]
    fn small_transfer_is_request_rtt_plus_drain() {
        let mut link = quiet_link(8.0, 50);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        // 10 KB fits in the initial window (10 * 1448 = 14 480 B).
        let res = conn.request(&mut link, ready, ByteSize::kb(10));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        assert_eq!(res.delivered, ByteSize::kb(10));
        // 1 RTT for the request + partial round: strictly more than 1 RTT,
        // at most 2 RTT.
        let dur = res.duration().as_secs_f64();
        assert!((0.05..0.10).contains(&dur), "duration {dur}");
    }

    #[test]
    fn slow_start_doubles_per_round() {
        let mut link = quiet_link(1000.0, 100); // fat link so BDP is never binding
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        // 1 MB at IW10: rounds deliver ~10, 20, 40, 80, ... packets.
        let res = conn.request(&mut link, ready, ByteSize::mb(1));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        // 1 MB = 724 packets → IW10 doubling: 10+20+40+80+160+320 = 630 in 6
        // rounds, finishing inside round 7. Request RTT adds 1.
        assert!((6..=8).contains(&res.rounds), "rounds {}", res.rounds);
    }

    #[test]
    fn throughput_approaches_link_rate_for_large_transfers() {
        let mut link = quiet_link(10.0, 30);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(8));
        let goodput = res.goodput().as_mbps();
        assert!(
            (7.0..=10.0).contains(&goodput),
            "goodput {goodput} Mbit/s on a 10 Mbit/s link"
        );
    }

    #[test]
    fn persistent_connection_keeps_cwnd_across_requests() {
        let mut link = quiet_link(50.0, 40);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let first = conn.request(&mut link, ready, ByteSize::mb(1));
        let warm_cwnd = conn.cwnd_bytes();
        // Second request right away: no idle restart, warm window.
        let second = conn.request(&mut link, first.completed_at, ByteSize::mb(1));
        assert!(second.duration() < first.duration(), "warm transfer faster");
        // The warm window may take congestion cuts, but stays well above IW10.
        assert!(conn.cwnd_bytes() >= warm_cwnd * 0.3);
        assert!(conn.cwnd_bytes() > 10.0 * 1448.0 * 2.0);
    }

    #[test]
    fn idle_restart_resets_window() {
        let mut link = quiet_link(50.0, 40);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let first = conn.request(&mut link, ready, ByteSize::mb(1));
        let warm = conn.cwnd_bytes();
        assert!(warm > 10.0 * 1448.0);
        // Wait 5 s (ON/OFF gap) then request again: window restarts.
        let later = first.completed_at + SimDuration::from_secs(5);
        let second = conn.request(&mut link, later, ByteSize::mb(1));
        assert!(
            second.rounds >= first.rounds.saturating_sub(1),
            "cold again"
        );
    }

    #[test]
    fn random_loss_slows_transfers() {
        let mk = |loss: f64, seed: u64| {
            let mut link = Link::new(
                "l",
                Box::new(Constant(20.0)),
                SimDuration::from_millis(40),
                0.0,
                loss,
                Prng::new(seed),
            );
            let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
            conn.request(&mut link, ready, ByteSize::mb(4)).duration()
        };
        let clean: f64 = (0..5).map(|s| mk(0.0, s).as_secs_f64()).sum();
        let lossy: f64 = (0..5).map(|s| mk(0.10, s).as_secs_f64()).sum();
        assert!(lossy > clean, "lossy {lossy} vs clean {clean}");
    }

    #[test]
    fn server_pacing_caps_goodput_after_burst() {
        let mut link = quiet_link(50.0, 30);
        let mut conn = TcpConnection::new(TcpConfig::default())
            .with_server_pacing(ByteSize::kb(256), BitRate::mbps(2.0));
        let ready = conn.connect(&mut link, SimTime::ZERO);
        let res = conn.request(&mut link, ready, ByteSize::mb(4));
        let goodput = res.goodput().as_mbps();
        assert!(goodput < 3.0, "paced goodput {goodput}");
    }

    #[test]
    fn outage_times_out_transfer() {
        use crate::mobility::OutageSchedule;
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_millis(100), SimTime::from_secs(60))]);
        let mut link = quiet_link(10.0, 50).with_outages(sched);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(8));
        assert_eq!(res.outcome, TransferOutcome::TimedOut);
        assert!(res.delivered < ByteSize::mb(8));
        // Abort happens within timeout + a couple of rounds.
        assert!(res.completed_at < SimTime::from_secs(10));
    }

    #[test]
    fn short_outage_recovers_and_completes() {
        use crate::mobility::OutageSchedule;
        let sched = OutageSchedule::from_windows(vec![(
            SimTime::from_millis(200),
            SimTime::from_millis(700),
        )]);
        let mut link = quiet_link(10.0, 50).with_outages(sched);
        let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
        let res = conn.request(&mut link, ready, ByteSize::mb(2));
        assert_eq!(res.outcome, TransferOutcome::Complete);
        assert!(res.losses >= 1, "outage registered as loss");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut link = Link::new(
                "l",
                Box::new(Constant(12.0)),
                SimDuration::from_millis(35),
                0.15,
                0.01,
                Prng::new(99),
            );
            let (mut conn, ready) = connected(TcpConfig::default(), &mut link);
            conn.request(&mut link, ready, ByteSize::mb(3)).completed_at
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "before connect")]
    fn request_requires_connect() {
        let mut link = quiet_link(10.0, 50);
        let mut conn = TcpConnection::new(TcpConfig::default());
        conn.request(&mut link, SimTime::ZERO, ByteSize::kb(1));
    }
}
