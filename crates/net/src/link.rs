//! A simulated access link: time-varying available bandwidth, RTT with
//! jitter, random loss, and optional outage windows (mobility).

use crate::mobility::OutageSchedule;
use msim_core::process::{Process, ProcessKind};
use msim_core::rng::{DeviateMode, DrawKind, DrawTable, Prng};
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::BitRate;

/// A window over which a link is *provably boring*: constant rate, constant
/// RTT, zero per-round loss probability, no outage — and, crucially, no
/// randomness consumed by any per-round sampling inside it. The epoch-based
/// transfer engine ([`crate::tcp`]) collapses TCP rounds inside such
/// windows into closed-form solves; see [`Link::stable_window`] for the
/// exact contract.
#[derive(Clone, Copy, Debug)]
pub struct StableWindow {
    /// The (effective, clamped) link rate holding over the window.
    pub rate: BitRate,
    /// The round-trip time holding over the window (no jitter by
    /// definition of stability).
    pub rtt: SimDuration,
    /// Exclusive end of the window: the guarantee covers `[t, until)`.
    pub until: SimTime,
}

/// One directional access link (WiFi or LTE attachment).
///
/// The available-bandwidth process is sampled per TCP round; RTT jitter is
/// drawn per round from a log-normal multiplier so that latency spikes are
/// occasionally large but never negative.
pub struct Link {
    /// Human-readable name, e.g. `"wifi"`.
    pub name: String,
    rate_process: ProcessKind,
    base_rtt: SimDuration,
    rtt_jitter_frac: f64,
    random_loss_per_round: f64,
    outages: Option<OutageSchedule>,
    rng: Prng,
    /// Per-round RTT jitter multipliers (full log-normal values, `exp`
    /// included, so the per-round draw is an indexed load). `None` on
    /// jitter-free links, which never draw.
    jitter: Option<DrawTable>,
}

impl Link {
    /// Assembles a link from its parts. `rate_process` yields Mbit/s.
    /// Concrete process types dispatch through [`ProcessKind`] (a
    /// predictable branch on the per-round hot path instead of a vtable);
    /// exotic implementations can still be passed as `Box<dyn Process>`.
    pub fn new(
        name: impl Into<String>,
        rate_process: impl Into<ProcessKind>,
        base_rtt: SimDuration,
        rtt_jitter_frac: f64,
        random_loss_per_round: f64,
        rng: Prng,
    ) -> Self {
        Self::with_mode(
            name,
            rate_process,
            base_rtt,
            rtt_jitter_frac,
            random_loss_per_round,
            rng,
            DeviateMode::default(),
        )
    }

    /// As [`Link::new`] with an explicit deviate-generation mode.
    pub fn with_mode(
        name: impl Into<String>,
        rate_process: impl Into<ProcessKind>,
        base_rtt: SimDuration,
        rtt_jitter_frac: f64,
        random_loss_per_round: f64,
        mut rng: Prng,
        mode: DeviateMode,
    ) -> Self {
        // Jittered links fork a dedicated stream for the multiplier table
        // so loss draws stay on `rng`; jitter-free links leave `rng`
        // untouched, preserving their (stable-path) draw sequence.
        let jitter = (rtt_jitter_frac > 0.0).then(|| {
            let sigma = rtt_jitter_frac;
            DrawTable::new(
                rng.fork(),
                DrawKind::LognormalMult {
                    mu: -0.5 * sigma * sigma,
                    sigma,
                },
                mode,
            )
        });
        Link {
            name: name.into(),
            rate_process: rate_process.into(),
            base_rtt,
            rtt_jitter_frac,
            random_loss_per_round,
            outages: None,
            rng,
            jitter,
        }
    }

    /// Attaches an outage schedule (mobility: the link is dead inside
    /// outage windows).
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = Some(outages);
        self
    }

    /// Available bandwidth at time `t`; zero while in an outage.
    pub fn rate_at(&mut self, t: SimTime) -> BitRate {
        if let Some(o) = &self.outages {
            if !o.is_up(t) {
                return BitRate::ZERO;
            }
        }
        BitRate::mbps(self.rate_process.value_at(t).max(0.01))
    }

    /// Round-trip time at time `t` (base RTT × log-normal jitter, sigma
    /// chosen so that std/mean ≈ jitter_frac). The multiplier comes from
    /// the link's cycling draw table: an indexed load per round instead of
    /// Box–Muller's `ln`/`sqrt`/`cos` plus an `exp`.
    pub fn rtt_at(&mut self, _t: SimTime) -> SimDuration {
        match &mut self.jitter {
            None => self.base_rtt,
            Some(table) => self.base_rtt.mul_f64(table.draw().max(0.3)),
        }
    }

    /// The configured base (unjittered) RTT.
    pub fn base_rtt(&self) -> SimDuration {
        self.base_rtt
    }

    /// Draws whether a random (non-congestion) loss hits this round.
    pub fn random_loss(&mut self) -> bool {
        self.rng.chance(self.random_loss_per_round)
    }

    /// True when the link is usable at `t` (no outage in progress).
    pub fn is_up(&self, t: SimTime) -> bool {
        self.outages.as_ref().is_none_or(|o| o.is_up(t))
    }

    /// Next instant at or after `t` when the link comes back up, if it is
    /// currently down. Returns `None` when already up.
    pub fn next_up_after(&self, t: SimTime) -> Option<SimTime> {
        let o = self.outages.as_ref()?;
        if o.is_up(t) {
            None
        } else {
            Some(o.next_up(t))
        }
    }

    /// Draws and returns the next raw value of the link's own RNG stream.
    /// Test-only: differential tests use it to pin the stream *position*
    /// (not just past draws) after a transfer ran on each engine.
    #[doc(hidden)]
    pub fn rng_probe(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Probes for a [`StableWindow`] starting at `t`.
    ///
    /// When this returns `Some(w)`, the link guarantees that for every
    /// `t' ∈ [t, w.until)`:
    ///
    /// * [`Link::rate_at`]`(t')` returns exactly `w.rate`,
    /// * [`Link::rtt_at`]`(t')` returns exactly `w.rtt`,
    /// * [`Link::random_loss`]`()` returns `false`,
    ///
    /// **and none of those calls consumes randomness or observably mutates
    /// state** — so a caller may skip them entirely and every later sample
    /// on this link is bit-identical to the call-every-round execution.
    /// This is the foundation of the TCP fast path's bit-identity claim.
    ///
    /// The probe itself samples the rate at `t` (exactly as a per-round
    /// caller would), so callers must treat the probe as their sample for
    /// time `t`. Returns `None` when the link is jittered, lossy, in an
    /// outage, or its rate process cannot advertise a horizon.
    pub fn stable_window(&mut self, t: SimTime) -> Option<StableWindow> {
        if self.rtt_jitter_frac > 0.0 || self.random_loss_per_round > 0.0 {
            return None;
        }
        let mut until = SimTime::MAX;
        if let Some(o) = &self.outages {
            if !o.is_up(t) {
                return None;
            }
            if let Some(next_down) = o.next_outage_after(t) {
                until = next_down;
            }
        }
        let rate = self.rate_at(t);
        until = until.min(self.rate_process.stable_until(t)?);
        if until <= t {
            return None;
        }
        Some(StableWindow {
            rate,
            rtt: self.base_rtt,
            until,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::process::Constant;

    fn test_link(jitter: f64) -> Link {
        Link::new(
            "test",
            Constant(10.0),
            SimDuration::from_millis(50),
            jitter,
            0.0,
            Prng::new(1),
        )
    }

    #[test]
    fn rate_comes_from_process() {
        let mut l = test_link(0.0);
        assert!((l.rate_at(SimTime::ZERO).as_mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_without_jitter_is_base() {
        let mut l = test_link(0.0);
        assert_eq!(l.rtt_at(SimTime::ZERO), SimDuration::from_millis(50));
    }

    #[test]
    fn rtt_jitter_has_right_scale() {
        let mut l = test_link(0.2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| l.rtt_at(SimTime::ZERO).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.050).abs() < 0.002, "mean rtt {mean}");
        assert!(samples.iter().all(|&s| s > 0.0), "rtt always positive");
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((0.1..0.35).contains(&cv), "cv {cv}");
    }

    #[test]
    fn outage_zeroes_rate() {
        use crate::mobility::OutageSchedule;
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_secs(10), SimTime::from_secs(20))]);
        let mut l = test_link(0.0).with_outages(sched);
        assert!(l.rate_at(SimTime::from_secs(5)).as_mbps() > 0.0);
        assert_eq!(l.rate_at(SimTime::from_secs(15)).as_bps(), 0.0);
        assert!(!l.is_up(SimTime::from_secs(15)));
        assert_eq!(
            l.next_up_after(SimTime::from_secs(15)),
            Some(SimTime::from_secs(20))
        );
        assert_eq!(l.next_up_after(SimTime::from_secs(25)), None);
        assert!(l.rate_at(SimTime::from_secs(25)).as_mbps() > 0.0);
    }

    #[test]
    fn random_loss_frequency() {
        let mut l = Link::new(
            "lossy",
            Constant(10.0),
            SimDuration::from_millis(50),
            0.0,
            0.1,
            Prng::new(7),
        );
        let hits = (0..10_000).filter(|_| l.random_loss()).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn stable_window_on_quiet_constant_link() {
        let mut l = test_link(0.0);
        let w = l.stable_window(SimTime::from_secs(1)).expect("stable");
        assert_eq!(w.until, SimTime::MAX);
        assert_eq!(w.rtt, SimDuration::from_millis(50));
        assert!((w.rate.as_mbps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_or_loss_defeat_stability() {
        let mut jittered = test_link(0.2);
        assert!(jittered.stable_window(SimTime::ZERO).is_none());
        let mut lossy = Link::new(
            "lossy",
            Constant(10.0),
            SimDuration::from_millis(50),
            0.0,
            0.01,
            Prng::new(7),
        );
        assert!(lossy.stable_window(SimTime::ZERO).is_none());
    }

    #[test]
    fn outages_bound_or_defeat_stability() {
        use crate::mobility::OutageSchedule;
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_secs(10), SimTime::from_secs(20))]);
        let mut l = test_link(0.0).with_outages(sched);
        // Before the outage: window ends at the outage start.
        let w = l.stable_window(SimTime::from_secs(5)).expect("up + stable");
        assert_eq!(w.until, SimTime::from_secs(10));
        // Inside the outage: no stability at all.
        assert!(l.stable_window(SimTime::from_secs(15)).is_none());
        // After: unbounded again.
        let w = l.stable_window(SimTime::from_secs(25)).expect("up again");
        assert_eq!(w.until, SimTime::MAX);
    }

    #[test]
    fn stochastic_rate_process_defeats_stability() {
        use msim_core::process::Ou;
        let mut l = Link::new(
            "ou",
            Ou::new(10.0, 2.0, 1.0, Prng::new(9)),
            SimDuration::from_millis(40),
            0.0,
            0.0,
            Prng::new(10),
        );
        assert!(l.stable_window(SimTime::from_millis(10)).is_none());
        // The probe's own sample counts as the sample for that instant:
        // a subsequent rate_at at the same t must agree and not re-draw.
        let t = SimTime::from_millis(20);
        let _ = l.stable_window(t);
        let a = l.rate_at(t);
        let b = l.rate_at(t);
        assert_eq!(a.as_bps(), b.as_bps());
    }
}
