//! A simulated access link: time-varying available bandwidth, RTT with
//! jitter, random loss, and optional outage windows (mobility).

use crate::mobility::OutageSchedule;
use msim_core::process::Process;
use msim_core::rng::Prng;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::BitRate;

/// One directional access link (WiFi or LTE attachment).
///
/// The available-bandwidth process is sampled per TCP round; RTT jitter is
/// drawn per round from a log-normal multiplier so that latency spikes are
/// occasionally large but never negative.
pub struct Link {
    /// Human-readable name, e.g. `"wifi"`.
    pub name: String,
    rate_process: Box<dyn Process>,
    base_rtt: SimDuration,
    rtt_jitter_frac: f64,
    random_loss_per_round: f64,
    outages: Option<OutageSchedule>,
    rng: Prng,
}

impl Link {
    /// Assembles a link from its parts. `rate_process` yields Mbit/s.
    pub fn new(
        name: impl Into<String>,
        rate_process: Box<dyn Process>,
        base_rtt: SimDuration,
        rtt_jitter_frac: f64,
        random_loss_per_round: f64,
        rng: Prng,
    ) -> Self {
        Link {
            name: name.into(),
            rate_process,
            base_rtt,
            rtt_jitter_frac,
            random_loss_per_round,
            outages: None,
            rng,
        }
    }

    /// Attaches an outage schedule (mobility: the link is dead inside
    /// outage windows).
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = Some(outages);
        self
    }

    /// Available bandwidth at time `t`; zero while in an outage.
    pub fn rate_at(&mut self, t: SimTime) -> BitRate {
        if let Some(o) = &self.outages {
            if !o.is_up(t) {
                return BitRate::ZERO;
            }
        }
        BitRate::mbps(self.rate_process.value_at(t).max(0.01))
    }

    /// Round-trip time at time `t` (base RTT × log-normal jitter).
    pub fn rtt_at(&mut self, _t: SimTime) -> SimDuration {
        if self.rtt_jitter_frac <= 0.0 {
            return self.base_rtt;
        }
        // Log-normal with sigma chosen so that std/mean ≈ jitter_frac.
        let sigma = self.rtt_jitter_frac;
        let mult = self.rng.lognormal(-0.5 * sigma * sigma, sigma);
        self.base_rtt.mul_f64(mult.max(0.3))
    }

    /// The configured base (unjittered) RTT.
    pub fn base_rtt(&self) -> SimDuration {
        self.base_rtt
    }

    /// Draws whether a random (non-congestion) loss hits this round.
    pub fn random_loss(&mut self) -> bool {
        self.rng.chance(self.random_loss_per_round)
    }

    /// True when the link is usable at `t` (no outage in progress).
    pub fn is_up(&self, t: SimTime) -> bool {
        self.outages.as_ref().is_none_or(|o| o.is_up(t))
    }

    /// Next instant at or after `t` when the link comes back up, if it is
    /// currently down. Returns `None` when already up.
    pub fn next_up_after(&self, t: SimTime) -> Option<SimTime> {
        let o = self.outages.as_ref()?;
        if o.is_up(t) {
            None
        } else {
            Some(o.next_up(t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::process::Constant;

    fn test_link(jitter: f64) -> Link {
        Link::new(
            "test",
            Box::new(Constant(10.0)),
            SimDuration::from_millis(50),
            jitter,
            0.0,
            Prng::new(1),
        )
    }

    #[test]
    fn rate_comes_from_process() {
        let mut l = test_link(0.0);
        assert!((l.rate_at(SimTime::ZERO).as_mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_without_jitter_is_base() {
        let mut l = test_link(0.0);
        assert_eq!(l.rtt_at(SimTime::ZERO), SimDuration::from_millis(50));
    }

    #[test]
    fn rtt_jitter_has_right_scale() {
        let mut l = test_link(0.2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| l.rtt_at(SimTime::ZERO).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.050).abs() < 0.002, "mean rtt {mean}");
        assert!(samples.iter().all(|&s| s > 0.0), "rtt always positive");
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((0.1..0.35).contains(&cv), "cv {cv}");
    }

    #[test]
    fn outage_zeroes_rate() {
        use crate::mobility::OutageSchedule;
        let sched =
            OutageSchedule::from_windows(vec![(SimTime::from_secs(10), SimTime::from_secs(20))]);
        let mut l = test_link(0.0).with_outages(sched);
        assert!(l.rate_at(SimTime::from_secs(5)).as_mbps() > 0.0);
        assert_eq!(l.rate_at(SimTime::from_secs(15)).as_bps(), 0.0);
        assert!(!l.is_up(SimTime::from_secs(15)));
        assert_eq!(
            l.next_up_after(SimTime::from_secs(15)),
            Some(SimTime::from_secs(20))
        );
        assert_eq!(l.next_up_after(SimTime::from_secs(25)), None);
        assert!(l.rate_at(SimTime::from_secs(25)).as_mbps() > 0.0);
    }

    #[test]
    fn random_loss_frequency() {
        let mut l = Link::new(
            "lossy",
            Box::new(Constant(10.0)),
            SimDuration::from_millis(50),
            0.0,
            0.1,
            Prng::new(7),
        );
        let hits = (0..10_000).filter(|_| l.random_loss()).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }
}
