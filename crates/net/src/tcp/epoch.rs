//! The epoch-based transfer engine.
//!
//! The per-RTT model (see [`super::rounds`]) is decomposed into composable
//! phases over explicit **epoch** boundaries:
//!
//! ```text
//!  request ──► request-latency ──► ┌────────── epoch loop ───────────┐
//!  (idle-restart already applied)  │ probe link.stable_window(t)     │
//!                                  │   ├─ None ──► reference round   │
//!                                  │   │           (incl. dead-link  │
//!                                  │   │            wait/abort phase)│
//!                                  │   └─ Some ──► stable phase:     │
//!                                  │        slow-start ramp (exact   │
//!                                  │        geometric solve)         │
//!                                  │        CUBIC growth (polynomial │
//!                                  │        solve, bit-exact replay) │
//!                                  │        pacing cross-over        │
//!                                  │        lean boundary rounds     │
//!                                  │        drain (final partial rtt)│
//!                                  └──────────────────────────────────┘
//! ```
//!
//! An epoch ends when the link profile changes (the stability window
//! expires: Markov/burst state switch, scheduled outage), when a loss
//! *can* fire (jitter or loss probability make rounds consume randomness —
//! then every round steps individually through the reference body), when
//! the rwnd/BDP caps change which term binds, when server pacing engages,
//! or when the transfer completes.
//!
//! # The bit-identity argument
//!
//! Inside a [`StableWindow`](crate::link::StableWindow) the link
//! guarantees that per-round calls (`rtt_at`, `rate_at`, `random_loss`)
//! return constants and consume **no randomness** — so eliding them is
//! unobservable. What remains per round is pure state arithmetic:
//!
//! * `remaining -= delivered` — replayed with the identical subtrahend
//!   (or, in the exact-integer slow-start case, provably equal one-shot
//!   arithmetic);
//! * `total_delivered += delivered as u64` — a constant per-round
//!   truncation, multiplied out;
//! * `t += rtt` — integer microseconds, multiplied out exactly;
//! * the cwnd update — slow-start additions replayed verbatim, or
//!   congestion-avoidance solved by
//!   [`Cubic::advance_closed_form`](crate::cubic::Cubic::advance_closed_form)
//!   (whose elapsed-time accumulator advances stepwise precisely so that
//!   fp addition order matches the reference loop).
//!
//! Closed-form **solves** only choose how many rounds are skipped; every
//! skipped round's branch outcome (no overflow, not the last round, same
//! slow-start/CA arm) is *guaranteed* by conservative bounds plus an end
//! verification with a relative guard much larger than the few-ulp wiggle
//! correctly-rounded fp can introduce, and anything unproven falls back to
//! lean single rounds using the same arithmetic. Differential tests pin
//! the whole construction against the reference loop.

use super::{TcpConnection, TransferOutcome, TransferResult, TransferStats};
use crate::link::{Link, StableWindow};
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::{BitRate, ByteSize};

/// Minimum rounds a closed-form solve must cover to beat lean stepping.
const MIN_BULK: u64 = 4;
/// Lean rounds to run after a declined solve before attempting another —
/// a failed attempt costs real math (divisions, a cube root), so it is
/// amortized over a handful of cheap rounds. A loss resets the budget:
/// it restarts the CUBIC epoch and re-opens a long solvable stretch.
const LEAN_BUDGET: u32 = 8;
/// Relative guard for fp threshold comparisons in skip proofs — orders of
/// magnitude above the ulp-level wiggle of correctly rounded arithmetic,
/// orders of magnitude below any model-relevant margin.
const GUARD: f64 = 1e-9;
/// Sanity ceiling on one solve (keeps `n as u32` and replay loops tame).
const MAX_BULK: u64 = 1 << 30;

/// Runs one request through the epoch engine. The idle-restart phase has
/// already been applied by [`TcpConnection::request`].
pub(super) fn run(
    conn: &mut TcpConnection,
    link: &mut Link,
    now: SimTime,
    size: ByteSize,
) -> TransferResult {
    let mut x = Xfer {
        conn,
        link,
        now,
        size,
        t: now,
        remaining: size.as_u64() as f64,
        rounds: 0,
        losses: 0,
        dead_for: SimDuration::ZERO,
        first_byte_at: now,
        stats: TransferStats::default(),
    };
    x.run()
}

/// One in-flight transfer: the mutable state every phase operates on.
struct Xfer<'a> {
    conn: &'a mut TcpConnection,
    link: &'a mut Link,
    now: SimTime,
    size: ByteSize,
    t: SimTime,
    remaining: f64,
    rounds: u32,
    losses: u32,
    dead_for: SimDuration,
    first_byte_at: SimTime,
    stats: TransferStats,
}

/// Constants of one stable epoch, hoisted out of the round arithmetic.
/// Two instances exist when server pacing may engage mid-epoch (unpaced /
/// paced variants); every value is computed with exactly the expression
/// the reference loop evaluates per round.
struct Consts {
    mss: f64,
    rtt: SimDuration,
    rtt_secs: f64,
    rwnd_f: f64,
    rwnd_pkts: f64,
    deliverable: f64,
    /// `bdp + queue`: the congestion-overflow threshold on `offered`.
    ovf: f64,
    /// Per-round delivery in the cap-limited regime:
    /// `min(rwnd, deliverable)`.
    d_cap: f64,
    /// The per-round `delivered as u64` truncation of `d_cap`.
    d_cap_u64: u64,
    /// Whether `d_cap` is an exactly representable integer (enables the
    /// one-shot delivery commit).
    d_cap_exact: bool,
    /// `fl(rwnd_pkts · mss)`: an exact upper bound on any clamped
    /// `cwnd · mss`; when it is ≤ `ovf`, overflow can never fire.
    rwnd_clamp_bytes: f64,
}

impl Consts {
    fn new(rate: BitRate, rtt: SimDuration, cfg: &super::TcpConfig) -> Consts {
        let mss = cfg.mss as f64;
        let bdp = rate.bytes_per_sec() * rtt.as_secs_f64();
        let queue = bdp * cfg.queue_bdp_factor;
        let rwnd_f = cfg.rwnd_bytes as f64;
        let rwnd_pkts = rwnd_f / mss;
        let deliverable = bdp.max(mss);
        let d_cap = rwnd_f.min(deliverable);
        Consts {
            mss,
            rtt,
            rtt_secs: rtt.as_secs_f64(),
            rwnd_f,
            rwnd_pkts,
            deliverable,
            ovf: bdp + queue,
            d_cap,
            d_cap_u64: d_cap as u64,
            d_cap_exact: exact_int(d_cap),
            rwnd_clamp_bytes: rwnd_pkts * mss,
        }
    }

    /// True when the overflow check can never trip: `offered ≤ cwnd·mss ≤
    /// fl(rwnd_pkts·mss)` holds exactly (single correctly-rounded
    /// multiplications are weakly monotone), so `rwnd_clamp_bytes ≤ ovf`
    /// proves `offered ≤ ovf` with no fp slack needed.
    fn overflow_impossible(&self) -> bool {
        self.rwnd_clamp_bytes <= self.ovf && self.rwnd_f <= self.ovf
    }
}

enum RoundOutcome {
    /// Keep transferring.
    Continue,
    /// The transfer ended inside the round (dead-link abort).
    Aborted(TransferResult),
}

impl Xfer<'_> {
    fn run(&mut self) -> TransferResult {
        // Phase: request latency — the request packet travels one RTT
        // before data flows (may consume jitter randomness, identically
        // to the reference loop).
        let req_rtt = self.link.rtt_at(self.t);
        self.t += req_rtt;
        self.first_byte_at = self.t;

        while self.remaining > 0.0 {
            match self.link.stable_window(self.t) {
                Some(w) => {
                    if let Some(res) = self.stable_phase(w) {
                        return res;
                    }
                }
                None => {
                    // Unstable epoch (jitter / loss probability / outage /
                    // stochastic rate): one reference round, dead-link
                    // phase included.
                    if let RoundOutcome::Aborted(res) = self.reference_round() {
                        return res;
                    }
                }
            }
        }

        self.conn.finish(
            self.now,
            self.first_byte_at,
            self.t,
            self.size.as_u64() as f64,
            self.rounds,
            self.losses,
            TransferOutcome::Complete,
            self.stats,
        )
    }

    // ------------------------------------------------------------------
    // Unstable fallback: the reference round, verbatim.
    // ------------------------------------------------------------------

    /// One round exactly as [`super::rounds`] executes it, including the
    /// dead-link wait/abort phase. Used whenever the link cannot prove a
    /// stability window.
    fn reference_round(&mut self) -> RoundOutcome {
        self.rounds += 1;
        let rtt = self.link.rtt_at(self.t);
        let rate = self.conn.effective_rate(self.link, self.t);

        if rate.as_bps() <= 0.0 {
            return self.dead_link_phase();
        }
        self.dead_for = SimDuration::ZERO;

        let mss = self.conn.cfg.mss as f64;
        let bdp_bytes = rate.bytes_per_sec() * rtt.as_secs_f64();
        let queue_bytes = bdp_bytes * self.conn.cfg.queue_bdp_factor;
        let cwnd_bytes = self.conn.cwnd_pkts * mss;

        let offered = cwnd_bytes
            .min(self.conn.cfg.rwnd_bytes as f64)
            .min(self.remaining.max(mss));
        let deliverable = bdp_bytes.max(mss);
        let sent = offered.min(self.remaining);
        let delivered = sent.min(deliverable);

        let overflow = offered > bdp_bytes + queue_bytes;
        let random_loss = self.link.random_loss();

        let round_time = if delivered >= self.remaining {
            let frac = (self.remaining / deliverable).min(1.0);
            rtt.mul_f64(frac.max(0.05))
        } else {
            rtt
        };

        self.remaining -= delivered;
        self.conn.total_delivered += delivered as u64;
        self.t += round_time;

        if self.remaining <= 0.0 {
            return RoundOutcome::Continue;
        }

        if overflow || random_loss {
            self.losses += 1;
            self.conn.cwnd_pkts = self.conn.cubic.on_loss(self.conn.cwnd_pkts);
            self.conn.ssthresh_pkts = self.conn.cwnd_pkts;
        } else if self.conn.cwnd_pkts < self.conn.ssthresh_pkts {
            self.conn.cwnd_pkts += delivered / mss;
            if self.conn.cwnd_pkts >= self.conn.ssthresh_pkts {
                self.conn.cwnd_pkts = self.conn.ssthresh_pkts;
            }
        } else {
            self.conn.cwnd_pkts =
                self.conn
                    .cubic
                    .advance(rtt.as_secs_f64(), rtt.as_secs_f64(), self.conn.cwnd_pkts);
        }
        let rwnd_pkts = self.conn.cfg.rwnd_bytes as f64 / mss;
        self.conn.cwnd_pkts = self.conn.cwnd_pkts.min(rwnd_pkts).max(2.0);
        RoundOutcome::Continue
    }

    /// Phase: dead link. TCP retransmits silently; the application aborts
    /// after `dead_link_timeout`. Mirrors the reference loop's arm.
    fn dead_link_phase(&mut self) -> RoundOutcome {
        if let Some(up_at) = self.link.next_up_after(self.t) {
            let wait = up_at.saturating_since(self.t);
            self.dead_for += wait;
            if self.dead_for >= self.conn.cfg.dead_link_timeout {
                let abort_at = self.t
                    + self
                        .conn
                        .cfg
                        .dead_link_timeout
                        .saturating_sub(self.dead_for.saturating_sub(wait));
                return RoundOutcome::Aborted(self.abort(abort_at));
            }
            self.t = up_at;
            // Loss of a full window during the outage.
            self.conn.cwnd_pkts = self.conn.cubic.on_loss(self.conn.cwnd_pkts);
            self.conn.ssthresh_pkts = self.conn.cwnd_pkts;
            self.losses += 1;
            return RoundOutcome::Continue;
        }
        // No scheduled recovery: abort at the timeout.
        let abort_at = self.t + self.conn.cfg.dead_link_timeout;
        RoundOutcome::Aborted(self.abort(abort_at))
    }

    fn abort(&mut self, abort_at: SimTime) -> TransferResult {
        self.conn.finish(
            self.now,
            self.first_byte_at,
            abort_at,
            self.size.as_u64() as f64 - self.remaining,
            self.rounds,
            self.losses,
            TransferOutcome::TimedOut,
            self.stats,
        )
    }

    // ------------------------------------------------------------------
    // Stable epoch: the fast path.
    // ------------------------------------------------------------------

    /// Phase: a stable epoch. Runs rounds with every link interaction
    /// elided (provably a no-op inside `w`), bulk-solving uniform
    /// stretches and stepping lean rounds at regime boundaries, until the
    /// window expires or the transfer completes. Returns `Some` when the
    /// transfer aborts inside the epoch (a zero effective pacing rate is
    /// the reference loop's dead-link arm).
    fn stable_phase(&mut self, w: StableWindow) -> Option<TransferResult> {
        self.stats.epochs = self.stats.epochs.saturating_add(1);
        let unpaced = Consts::new(w.rate, w.rtt, &self.conn.cfg);
        // Paced variant, built lazily if/when the pacing burst is crossed
        // (the rate expression matches `effective_rate` exactly).
        let mut paced: Option<Consts> = None;

        // Lean rounds left before the next solve attempt (attempts cost
        // real math; see `LEAN_BUDGET`).
        let mut lean_budget: u32 = 0;
        while self.remaining > 0.0 && self.t < w.until {
            let pace = self.conn.pace;
            let c: &Consts = match pace {
                Some((burst, pace_rate)) if self.conn.total_delivered >= burst => {
                    // A zero pacing rate zeroes the *effective* rate even
                    // though the link itself is up: that is the reference
                    // loop's dead-link arm (wait for an outage end that
                    // never comes, then abort), not a stable epoch — step
                    // reference rounds so the abort path stays
                    // bit-identical.
                    if w.rate.as_bps().min(pace_rate.as_bps()) <= 0.0 {
                        match self.reference_round() {
                            RoundOutcome::Aborted(res) => return Some(res),
                            RoundOutcome::Continue => continue,
                        }
                    }
                    if paced.is_none() {
                        let rate = BitRate::bps(w.rate.as_bps().min(pace_rate.as_bps()));
                        paced = Some(Consts::new(rate, w.rtt, &self.conn.cfg));
                    }
                    paced.as_ref().expect("just built")
                }
                _ => &unpaced,
            };

            if lean_budget == 0 {
                // How many further rounds this epoch can possibly cover
                // uniformly, before the solvers refine it.
                let cap = self.uniform_cap(c, w.until, pace);
                let cwnd_b = self.conn.cwnd_pkts * c.mss;
                let solved = if cwnd_b >= c.d_cap * (1.0 + GUARD) {
                    // Cap-limited delivery: every round moves exactly d_cap.
                    if self.conn.cwnd_pkts < self.conn.ssthresh_pkts {
                        self.solve_slow_start_capped(c, cap)
                    } else {
                        self.solve_cubic_growth(c, cap) || self.solve_ssthresh_oscillation(c, cap)
                    }
                } else if self.conn.cwnd_pkts < self.conn.ssthresh_pkts {
                    // Window-limited slow start: exact geometric doubling.
                    self.solve_slow_start_doubling(c, cap, pace)
                } else {
                    false
                };
                if solved {
                    continue;
                }
                lean_budget = LEAN_BUDGET;
            }
            let losses_before = self.losses;
            self.lean_round(c);
            lean_budget -= 1;
            if self.losses != losses_before {
                lean_budget = 0;
            }
        }
        None
    }

    /// Upper bound on uniformly skippable rounds, from the epoch-agnostic
    /// constraints: transfer length (stay strictly before the drain
    /// round), window horizon (every skipped round must start inside the
    /// stability window), and the server-pacing burst (the rate variant
    /// must not flip mid-solve).
    fn uniform_cap(&self, c: &Consts, until: SimTime, pace: Option<(u64, BitRate)>) -> u64 {
        // Length: after n rounds of d_cap, remaining must still exceed
        // d_cap (slack 2 keeps the drain round well clear of the solve).
        let n_rem = if c.d_cap > 0.0 {
            ((self.remaining / c.d_cap) as u64).saturating_sub(2)
        } else {
            0
        };
        // Horizon: round j runs at t + (j−1)·rtt, which must be < until.
        let n_win = {
            let span = until.as_micros().saturating_sub(self.t.as_micros());
            if span == 0 {
                0
            } else {
                // A zero-RTT round cannot bound the horizon.
                (span - 1)
                    .checked_div(c.rtt.as_micros())
                    .map_or(u64::MAX, |q| q + 1)
            }
        };
        // Pacing: rounds must all start on the current side of the burst.
        let n_pace = match pace {
            Some((burst, _)) if self.conn.total_delivered < burst => {
                let d = c.d_cap_u64.max(1);
                (burst - self.conn.total_delivered) / d
            }
            _ => u64::MAX,
        };
        n_rem.min(n_win).min(n_pace).min(MAX_BULK)
    }

    /// Commits `n` uniform cap-limited rounds: the delivery/time/counter
    /// side shared by the slow-start-capped and CUBIC solves. The
    /// subtraction is replayed per round (fp addition order is the
    /// contract); time and truncated byte counters multiply out exactly.
    fn commit_capped(&mut self, c: &Consts, n: u64) {
        if c.d_cap_exact && exact_int(self.remaining) {
            // All-integer case: every per-round subtraction is exact, so
            // one subtraction of the exact product is bit-identical.
            self.remaining -= (c.d_cap_u64 * n) as f64;
        } else {
            for _ in 0..n {
                self.remaining -= c.d_cap;
            }
        }
        self.conn.total_delivered += c.d_cap_u64 * n;
        self.t += c.rtt * n;
        self.rounds += n as u32;
        self.dead_for = SimDuration::ZERO;
        self.stats.fast_rounds = self.stats.fast_rounds.saturating_add(n as u32);
        self.stats.solved_rounds = self.stats.solved_rounds.saturating_add(n as u32);
    }

    /// Closed-form slow-start ramp while the BDP/rwnd cap binds: cwnd
    /// climbs linearly (`+ d_cap/mss` per round) while each round delivers
    /// `d_cap`. Solves the round count against the ssthresh and overflow
    /// ceilings, then replays the exact per-round arithmetic.
    fn solve_slow_start_capped(&mut self, c: &Consts, cap: u64) -> bool {
        let inc = c.d_cap / c.mss;
        if inc <= 0.0 {
            return false;
        }
        let mut n = cap;
        // Stay strictly in slow start: the round where the ssthresh clamp
        // fires runs lean.
        let ss_room = (self.conn.ssthresh_pkts - self.conn.cwnd_pkts) / inc;
        if ss_room.is_finite() {
            if ss_room < 1.0 {
                return false;
            }
            n = n.min((ss_room as u64).saturating_sub(2));
        }
        if !c.overflow_impossible() {
            let ovf_room = (c.ovf / c.mss * (1.0 - GUARD) - self.conn.cwnd_pkts) / inc;
            if ovf_room.is_nan() || ovf_room < 1.0 {
                return false;
            }
            n = n.min((ovf_room as u64).saturating_sub(2));
        }
        if n < MIN_BULK {
            return false;
        }
        // Exact replay of the n rounds' window arithmetic (growth is
        // monotone, so proving the end state proves every middle).
        let mut cwnd = self.conn.cwnd_pkts;
        for _ in 0..n {
            cwnd = (cwnd + inc).min(c.rwnd_pkts).max(2.0);
        }
        if cwnd >= self.conn.ssthresh_pkts {
            return false;
        }
        if !c.overflow_impossible() && cwnd * c.mss * (1.0 + GUARD) > c.ovf {
            return false;
        }
        self.conn.cwnd_pkts = cwnd;
        self.commit_capped(c, n);
        true
    }

    /// Closed-form CUBIC growth while the BDP/rwnd cap binds: each round
    /// delivers `d_cap` and the window follows the cubic polynomial —
    /// whose value never feeds delivery until it crosses the overflow
    /// threshold. Solves the crossing via
    /// [`Cubic::steps_below`](crate::cubic::Cubic::steps_below), verifies
    /// the end window with a guard, and advances the controller once.
    fn solve_cubic_growth(&mut self, c: &Consts, cap: u64) -> bool {
        let dt = c.rtt_secs;
        let e0 = self.conn.cubic.epoch_elapsed();
        let cwnd = self.conn.cwnd_pkts;
        // The skipped rounds must all take the congestion-avoidance arm:
        // right after a loss the polynomial can sit within ulps of (or
        // dip below) ssthresh, so prove the first skipped step clears it
        // with the guard (growth is monotone; middles inherit the proof).
        // Checked before the crossing solve: it is the cheap common
        // reject in the post-loss oscillation regime.
        let w1 = self.conn.cubic.projected_window(e0 + dt, dt, cwnd);
        if w1.min(c.rwnd_pkts) < self.conn.ssthresh_pkts * (1.0 + GUARD) {
            return false;
        }
        let mut n = cap;
        if !c.overflow_impossible() {
            let target = c.ovf / c.mss * (1.0 - GUARD);
            n = n.min(self.conn.cubic.steps_below(target, dt, dt, cwnd));
        }
        if n < MIN_BULK {
            return false;
        }
        // Verify the end state analytically (GUARD dwarfs the drift
        // between the analytic elapsed and the committed stepwise one),
        // halving the candidate until it proves safe.
        loop {
            let w_end = self
                .conn
                .cubic
                .projected_window(e0 + n as f64 * dt, dt, cwnd);
            let end_bytes = w_end.min(c.rwnd_pkts).max(2.0) * c.mss;
            let ovf_ok = c.overflow_impossible() || end_bytes * (1.0 + GUARD) <= c.ovf;
            let cap_ok = end_bytes >= c.d_cap * (1.0 + GUARD);
            if ovf_ok && cap_ok {
                break;
            }
            n /= 2;
            if n < MIN_BULK {
                return false;
            }
        }
        // Commit: one bit-exact stepped advance (the only non-analytic
        // evaluation), then the shared delivery side.
        let w_exact = self.conn.cubic.advance_closed_form(n, dt, dt, cwnd);
        self.conn.cwnd_pkts = w_exact.min(c.rwnd_pkts).max(2.0);
        self.commit_capped(c, n);
        true
    }

    /// Closed-form solve for the post-loss **ssthresh oscillation**: after
    /// a fast-convergence loss the CUBIC polynomial can dip below the new
    /// ssthresh, so rounds deterministically alternate — a CA round sets
    /// `cwnd = w̃(e) < ssthresh` (advancing the polynomial one step), and
    /// the next round takes the slow-start arm whose `+d/mss` increment
    /// clamps `cwnd` straight back to ssthresh (touching the polynomial
    /// not at all). `k` pairs therefore advance the polynomial exactly
    /// `k` steps, deliver `2k·d_cap`, and end with `cwnd` pinned at the
    /// bit-exact ssthresh — solvable with the same machinery as plain
    /// CUBIC growth.
    fn solve_ssthresh_oscillation(&mut self, c: &Consts, cap: u64) -> bool {
        let ss = self.conn.ssthresh_pkts;
        if !ss.is_finite() {
            return false;
        }
        let dt = c.rtt_secs;
        let e0 = self.conn.cubic.epoch_elapsed();
        let cwnd = self.conn.cwnd_pkts;
        let inc = c.d_cap / c.mss;
        // Both phases' windows stay ≤ max(cwnd, ssthresh): no overflow.
        if !c.overflow_impossible() && cwnd.max(ss) * c.mss * (1.0 + GUARD) > c.ovf {
            return false;
        }
        let w1 = self.conn.cubic.projected_window(e0 + dt, dt, cwnd);
        // The pattern requires: CA rounds dip safely below ssthresh…
        if w1 > ss * (1.0 - GUARD) {
            return false;
        }
        // …the following slow-start round clamps straight back up…
        if w1 + inc < ss * (1.0 + GUARD) {
            return false;
        }
        // …and the dipped window is still cap-limited (middles inherit
        // all three proofs by monotone growth).
        if w1 * c.mss < c.d_cap * (1.0 + GUARD) {
            return false;
        }
        // Pairs until the polynomial itself clears ssthresh.
        let mut k = (cap / 2).min(
            self.conn
                .cubic
                .steps_below(ss * (1.0 - GUARD), dt, dt, cwnd),
        );
        if k < MIN_BULK {
            return false;
        }
        // Analytic end-verify (same drift argument as the CUBIC solve).
        while self
            .conn
            .cubic
            .projected_window(e0 + k as f64 * dt, dt, cwnd)
            > ss * (1.0 - GUARD)
        {
            k /= 2;
            if k < MIN_BULK {
                return false;
            }
        }
        // Commit: the polynomial advances k bit-exact steps; the window
        // ends the pair pattern pinned at ssthresh exactly.
        let _ = self.conn.cubic.advance_closed_form(k, dt, dt, cwnd);
        self.conn.cwnd_pkts = ss;
        self.commit_capped(c, 2 * k);
        true
    }

    /// Closed-form slow-start ramp while the *window* is the binding cap:
    /// deliveries double every round (the geometric sum of §2's ramp).
    /// Engages only when every involved quantity is an exactly
    /// representable integer, which makes the one-shot arithmetic provably
    /// bit-identical to the per-round subtractions.
    fn solve_slow_start_doubling(
        &mut self,
        c: &Consts,
        cap: u64,
        pace: Option<(u64, BitRate)>,
    ) -> bool {
        let w0 = self.conn.cwnd_pkts;
        if !exact_int(w0) || !exact_int(self.remaining) || !exact_int(c.mss) {
            return false;
        }
        let burst_room = match pace {
            Some((burst, _)) if self.conn.total_delivered < burst => {
                burst - self.conn.total_delivered
            }
            Some(_) => 0, // already paced: the variant can't flip, no bound
            None => u64::MAX,
        };
        let burst_room = if burst_room == 0 {
            u64::MAX
        } else {
            burst_room
        };

        // Scan the doubling progression: round j offers w0·2^(j−1)·mss and
        // must stay window-limited, non-overflowing, non-final, and out of
        // the ssthresh/rwnd clamps. At most ~60 iterations of integer-
        // exact f64 arithmetic.
        let mut n: u64 = 0;
        let mut w = w0;
        let mut cum: u64 = 0; // delivered bytes over the skipped rounds
        while n < cap {
            let wb = w * c.mss;
            if wb > 9.0e15 || !exact_int(w) {
                break;
            }
            let rem = self.remaining - cum as f64;
            let fits = wb < c.d_cap // window-limited: below rwnd AND deliverable
                && wb <= c.ovf // no congestion overflow
                && wb < rem // strictly not the drain round
                && 2.0 * w < self.conn.ssthresh_pkts // no ssthresh clamp after growth
                && 2.0 * w <= c.rwnd_pkts // no rwnd clamp after growth
                && cum + (wb as u64) <= burst_room; // pacing variant holds
            if !fits {
                break;
            }
            cum += wb as u64;
            w *= 2.0;
            n += 1;
        }
        if n < 4 {
            return false;
        }
        // Commit: with exact integers every per-round op is exact, so the
        // geometric-sum shortcut equals the replay bit-for-bit.
        self.remaining -= cum as f64;
        self.conn.total_delivered += cum;
        self.conn.cwnd_pkts = w;
        self.t += c.rtt * n;
        self.rounds += n as u32;
        self.dead_for = SimDuration::ZERO;
        self.stats.fast_rounds = self.stats.fast_rounds.saturating_add(n as u32);
        self.stats.solved_rounds = self.stats.solved_rounds.saturating_add(n as u32);
        true
    }

    /// One round inside a stable epoch with the link interactions elided
    /// and the per-round constants hoisted — the fallback that handles
    /// every regime boundary (overflow losses, clamp crossings, the final
    /// drain round) with the reference loop's exact arithmetic.
    fn lean_round(&mut self, c: &Consts) {
        self.rounds += 1;
        self.dead_for = SimDuration::ZERO;
        self.stats.fast_rounds = self.stats.fast_rounds.saturating_add(1);

        let cwnd_bytes = self.conn.cwnd_pkts * c.mss;
        let offered = cwnd_bytes.min(c.rwnd_f).min(self.remaining.max(c.mss));
        let sent = offered.min(self.remaining);
        let delivered = sent.min(c.deliverable);
        let overflow = offered > c.ovf;

        let round_time = if delivered >= self.remaining {
            let frac = (self.remaining / c.deliverable).min(1.0);
            c.rtt.mul_f64(frac.max(0.05))
        } else {
            c.rtt
        };

        self.remaining -= delivered;
        self.conn.total_delivered += delivered as u64;
        self.t += round_time;

        if self.remaining <= 0.0 {
            return;
        }

        if overflow {
            self.losses += 1;
            self.conn.cwnd_pkts = self.conn.cubic.on_loss(self.conn.cwnd_pkts);
            self.conn.ssthresh_pkts = self.conn.cwnd_pkts;
        } else if self.conn.cwnd_pkts < self.conn.ssthresh_pkts {
            self.conn.cwnd_pkts += delivered / c.mss;
            if self.conn.cwnd_pkts >= self.conn.ssthresh_pkts {
                self.conn.cwnd_pkts = self.conn.ssthresh_pkts;
            }
        } else {
            self.conn.cwnd_pkts =
                self.conn
                    .cubic
                    .advance(c.rtt_secs, c.rtt_secs, self.conn.cwnd_pkts);
        }
        self.conn.cwnd_pkts = self.conn.cwnd_pkts.min(c.rwnd_pkts).max(2.0);
    }
}

/// True when `x` is a non-negative integer exactly representable in `f64`
/// with headroom for products against another such integer staying under
/// 2⁵³ (the exact-arithmetic precondition of the geometric solve).
fn exact_int(x: f64) -> bool {
    (0.0..=9.0e15).contains(&x) && x.fract() == 0.0
}
