//! The reference per-RTT round loop.
//!
//! This is the historical `TcpConnection::request` body, preserved verbatim
//! as the differential baseline for the epoch engine (the same role
//! `event::fourary::FourAryQueue` plays for the calendar event queue): one
//! loop iteration per TCP round, every link interaction performed
//! explicitly. `crates/net/tests/transfer_engines.rs` pins the epoch engine
//! against this loop bit-for-bit — model result fields, RNG stream
//! positions, and warm-connection state — across randomized link profiles,
//! mobility handoffs, idle-restart gaps, and loss regimes.
//!
//! Select it per connection with
//! [`TransferEngine::RoundLoop`](super::TransferEngine::RoundLoop); it is
//! also the engine of choice when single-stepping a transfer under a
//! debugger.

use super::{TcpConnection, TransferOutcome, TransferResult, TransferStats};
use crate::link::Link;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::ByteSize;

/// Runs one request through the per-RTT loop. The idle-restart phase has
/// already been applied by [`TcpConnection::request`].
pub(super) fn run(
    conn: &mut TcpConnection,
    link: &mut Link,
    now: SimTime,
    size: ByteSize,
) -> TransferResult {
    let mss = conn.cfg.mss as f64;
    let mut t = now;
    let mut remaining = size.as_u64() as f64;
    let mut rounds: u32 = 0;
    let mut losses: u32 = 0;
    let mut first_byte_at: Option<SimTime> = None;
    let mut dead_for = SimDuration::ZERO;

    // The request packet travels for one RTT before data flows.
    let req_rtt = link.rtt_at(t);
    t += req_rtt;
    first_byte_at.get_or_insert(t);

    while remaining > 0.0 {
        rounds += 1;
        let rtt = link.rtt_at(t);
        let rate = conn.effective_rate(link, t);

        if rate.as_bps() <= 0.0 {
            // Link dead: TCP retransmits silently; the application aborts
            // after `dead_link_timeout`.
            if let Some(up_at) = link.next_up_after(t) {
                let wait = up_at.saturating_since(t);
                dead_for += wait;
                if dead_for >= conn.cfg.dead_link_timeout {
                    let abort_at = t + conn
                        .cfg
                        .dead_link_timeout
                        .saturating_sub(dead_for.saturating_sub(wait));
                    return conn.finish(
                        now,
                        first_byte_at.unwrap_or(abort_at),
                        abort_at,
                        size.as_u64() as f64 - remaining,
                        rounds,
                        losses,
                        TransferOutcome::TimedOut,
                        TransferStats::default(),
                    );
                }
                t = up_at;
                // Loss of a full window during the outage.
                conn.cwnd_pkts = conn.cubic.on_loss(conn.cwnd_pkts);
                conn.ssthresh_pkts = conn.cwnd_pkts;
                losses += 1;
                continue;
            }
            // No scheduled recovery: abort at the timeout.
            let abort_at = t + conn.cfg.dead_link_timeout;
            return conn.finish(
                now,
                first_byte_at.unwrap_or(abort_at),
                abort_at,
                size.as_u64() as f64 - remaining,
                rounds,
                losses,
                TransferOutcome::TimedOut,
                TransferStats::default(),
            );
        }
        dead_for = SimDuration::ZERO;

        let bdp_bytes = rate.bytes_per_sec() * rtt.as_secs_f64();
        let queue_bytes = bdp_bytes * conn.cfg.queue_bdp_factor;
        let cwnd_bytes = conn.cwnd_pkts * mss;

        // Bytes the sender puts on the wire this round.
        let offered = cwnd_bytes
            .min(conn.cfg.rwnd_bytes as f64)
            .min(remaining.max(mss));
        // Bytes that fit through the bottleneck in one RTT.
        let deliverable = bdp_bytes.max(mss);
        let sent = offered.min(remaining);
        let delivered = sent.min(deliverable);

        // Congestion: window exceeded path capacity + queue.
        let overflow = offered > bdp_bytes + queue_bytes;
        let random_loss = link.random_loss();

        // Time for this round: a full RTT, or the fraction needed to
        // finish the remaining bytes at the deliverable rate.
        let round_time = if delivered >= remaining {
            // Last round: time to drain `remaining` at the line rate,
            // at most one RTT.
            let frac = (remaining / deliverable).min(1.0);
            rtt.mul_f64(frac.max(0.05))
        } else {
            rtt
        };

        remaining -= delivered;
        conn.total_delivered += delivered as u64;
        t += round_time;

        if remaining <= 0.0 {
            break;
        }

        // Window evolution for the next round.
        if overflow || random_loss {
            losses += 1;
            conn.cwnd_pkts = conn.cubic.on_loss(conn.cwnd_pkts);
            conn.ssthresh_pkts = conn.cwnd_pkts;
        } else if conn.cwnd_pkts < conn.ssthresh_pkts {
            // Slow start: cwnd grows by one MSS per ACKed segment.
            conn.cwnd_pkts += delivered / mss;
            if conn.cwnd_pkts >= conn.ssthresh_pkts {
                conn.cwnd_pkts = conn.ssthresh_pkts;
            }
        } else {
            conn.cwnd_pkts =
                conn.cubic
                    .advance(rtt.as_secs_f64(), rtt.as_secs_f64(), conn.cwnd_pkts);
        }
        // The window never usefully exceeds what the receiver offers.
        let rwnd_pkts = conn.cfg.rwnd_bytes as f64 / mss;
        conn.cwnd_pkts = conn.cwnd_pkts.min(rwnd_pkts).max(2.0);
    }

    conn.finish(
        now,
        first_byte_at.expect("first byte recorded"),
        t,
        size.as_u64() as f64,
        rounds,
        losses,
        TransferOutcome::Complete,
        TransferStats::default(),
    )
}
