//! Flow-level (fluid) transfer approximations built on the epoch engine's
//! closed forms.
//!
//! The epoch engine ([`super::epoch`]) solves whole runs of TCP rounds in
//! closed form — the geometric slow-start doubling, the CUBIC window
//! polynomial — but still executes every *chunk* of a session. A fleet
//! simulation coupling 100k+ concurrent sessions cannot afford even that:
//! it models each session as a *fluid* that downloads at the min of its
//! access rate and its fair share of a server's service rate, and only
//! needs TCP for the one place the fluid picture is wrong — connection
//! startup, where slow start keeps the flow below its steady rate for a
//! few RTTs.
//!
//! [`startup_ramp`] reuses the doubling progression that the epoch
//! engine's `solve_slow_start_doubling` commits round by round: doubling
//! round `j` offers `iw · 2^(j-1)` packets, so after
//! `r = ⌈log2(target / iw)⌉` rounds the window covers the
//! bandwidth-delay product and the flow runs at rate. The helper returns
//! that ramp's latency and byte deficit in closed form, which a fluid
//! session charges once as startup overhead instead of simulating rounds.

use msim_core::time::SimDuration;
use msim_core::units::{BitRate, ByteSize};

use super::TcpConfig;

/// Closed-form startup cost of a fresh flow that will stream at `rate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidRamp {
    /// Handshake + request + slow-start rounds until the window covers the
    /// bandwidth-delay product: the delay before the flow behaves like a
    /// fluid running at `rate`.
    pub latency: SimDuration,
    /// Bytes delivered *during* the doubling rounds — the flow is not idle
    /// while ramping, so callers credit these against the first transfer.
    pub ramp_bytes: ByteSize,
    /// Number of doubling rounds the ramp spans.
    pub rounds: u32,
}

/// How long a fresh connection needs before it streams at `rate`, and how
/// many bytes arrive while it gets there.
///
/// The model is the epoch engine's slow-start geometry: the window starts
/// at `initial_cwnd_pkts · mss` bytes and doubles once per RTT until it
/// covers `min(BDP, rwnd)`; the handshake and the request each cost one
/// more RTT. Doubling round `j` delivers `iw · 2^(j-1)` bytes, so the
/// whole ramp delivers `iw · (2^r − 1)` — the same geometric sum
/// `solve_slow_start_doubling` replays round by round.
pub fn startup_ramp(cfg: &TcpConfig, rtt: SimDuration, rate: BitRate) -> FluidRamp {
    let mss = f64::from(cfg.mss);
    let iw_bytes = (cfg.initial_cwnd_pkts * mss).max(mss);
    let bdp_bytes = (rate.bytes_per_sec() * rtt.as_secs_f64()).max(0.0);
    // The window never needs to exceed the receive window: a flow capped
    // by rwnd tops out below `rate` and the ramp is over when it gets there.
    let target = bdp_bytes.min(cfg.rwnd_bytes as f64);
    let mut rounds = 0u32;
    let mut window = iw_bytes;
    while window < target && rounds < 32 {
        window *= 2.0;
        rounds += 1;
    }
    let ramp_bytes = iw_bytes * (((1u64 << rounds) - 1) as f64);
    FluidRamp {
        latency: rtt.mul_f64(2.0 + f64::from(rounds)),
        ramp_bytes: ByteSize::bytes(ramp_bytes as u64),
        rounds,
    }
}

/// Fluid estimate of one transfer's duration: the startup ramp, then the
/// remaining bytes at `rate`. Transfers that finish inside the ramp are
/// charged whole doubling rounds (the round that delivers the last byte
/// still costs a full RTT).
pub fn transfer_time(
    cfg: &TcpConfig,
    rtt: SimDuration,
    rate: BitRate,
    size: ByteSize,
) -> SimDuration {
    if rate.as_bps() <= 0.0 {
        return SimDuration::MAX;
    }
    let ramp = startup_ramp(cfg, rtt, rate);
    let size_f = size.as_f64();
    if size_f <= ramp.ramp_bytes.as_f64() {
        let mss = f64::from(cfg.mss);
        let iw_bytes = (cfg.initial_cwnd_pkts * mss).max(mss);
        // Smallest j with iw·(2^j − 1) ≥ size: the doubling round whose
        // cumulative geometric sum covers the request.
        let mut j = 0u32;
        while iw_bytes * (((1u64 << j) - 1) as f64) < size_f && j < 32 {
            j += 1;
        }
        return rtt.mul_f64(2.0 + f64::from(j));
    }
    let steady = (size_f - ramp.ramp_bytes.as_f64()) / rate.bytes_per_sec();
    ramp.latency + SimDuration::from_secs_f64(steady)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    #[test]
    fn no_doubling_when_bdp_fits_the_initial_window() {
        // 1 Mbps × 20 ms = 2.5 KB BDP, well under IW10 ≈ 14.5 KB.
        let ramp = startup_ramp(&cfg(), SimDuration::from_millis(20), BitRate::mbps(1.0));
        assert_eq!(ramp.rounds, 0);
        assert_eq!(ramp.ramp_bytes, ByteSize::ZERO);
        assert_eq!(ramp.latency, SimDuration::from_millis(40), "2 RTTs");
    }

    #[test]
    fn rounds_grow_logarithmically_with_rate() {
        let rtt = SimDuration::from_millis(50);
        let slow = startup_ramp(&cfg(), rtt, BitRate::mbps(10.0));
        let fast = startup_ramp(&cfg(), rtt, BitRate::mbps(40.0));
        assert_eq!(fast.rounds, slow.rounds + 2, "4x the rate = 2 doublings");
        assert!(fast.latency > slow.latency);
    }

    #[test]
    fn ramp_bytes_follow_the_geometric_sum() {
        let rtt = SimDuration::from_millis(50);
        let ramp = startup_ramp(&cfg(), rtt, BitRate::mbps(20.0));
        let iw = cfg().initial_cwnd_pkts * f64::from(cfg().mss);
        let expect = iw * (((1u64 << ramp.rounds) - 1) as f64);
        assert_eq!(ramp.ramp_bytes.as_u64(), expect as u64);
    }

    #[test]
    fn rwnd_caps_the_ramp() {
        let mut c = cfg();
        c.rwnd_bytes = 64 * 1024;
        let rtt = SimDuration::from_millis(100);
        let capped = startup_ramp(&c, rtt, BitRate::mbps(100.0));
        let free = startup_ramp(&cfg(), rtt, BitRate::mbps(100.0));
        assert!(capped.rounds < free.rounds);
    }

    #[test]
    fn transfer_time_bounds() {
        let rtt = SimDuration::from_millis(50);
        let rate = BitRate::mbps(5.0);
        let size = ByteSize::mb(1);
        let t = transfer_time(&cfg(), rtt, rate, size);
        let ideal = size.as_f64() / rate.bytes_per_sec();
        assert!(t.as_secs_f64() > ideal, "startup costs something");
        assert!(
            t.as_secs_f64() < ideal + 1.0,
            "but only RTT-scale overhead: {t}"
        );
        // Tiny transfer: finishes inside the ramp, RTT-dominated.
        let tiny = transfer_time(&cfg(), rtt, rate, ByteSize::kb(4));
        assert_eq!(tiny, rtt.mul_f64(3.0), "one doubling round past setup");
    }

    #[test]
    fn dead_rate_never_finishes() {
        let t = transfer_time(
            &cfg(),
            SimDuration::from_millis(50),
            BitRate::bps(0.0),
            ByteSize::kb(64),
        );
        assert_eq!(t, SimDuration::MAX);
    }
}
