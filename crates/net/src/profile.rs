//! Calibrated path profiles.
//!
//! Four profiles reproduce the two experimental environments of the paper:
//!
//! * `wifi_testbed` / `lte_testbed` — §5's emulated testbed: servers in two
//!   UMass subnets, client on home WiFi + commercial LTE. Calibrated so that
//!   a 40-second 720p pre-buffer (≈12.5 MB) downloads in ≈11 s median over
//!   WiFi alone, matching Fig. 2's single-path medians.
//! * `wifi_youtube` / `lte_youtube` — §6's production YouTube paths: similar
//!   rates but larger control-plane latency to the real CDN and heavier LTE
//!   tails; LTE RTT is 2–3× the WiFi RTT as measured in the paper ("the RTTs
//!   of the LTE network are two to three times larger", §6).
//!
//! Each profile is a recipe; [`PathProfile::build`] instantiates a fresh
//! [`Link`] with independent RNG streams, so Monte-Carlo repetitions differ
//! only by seed.

use crate::link::Link;
use msim_core::process::{Bursts, MarkovModulator, Modulated, Ou};
use msim_core::rng::{DeviateMode, Prng};
use msim_core::time::SimDuration;
use msim_core::units::BitRate;

/// Parameters of the heavy-tailed burst overlay.
#[derive(Clone, Copy, Debug)]
pub struct BurstParams {
    /// Mean seconds between burst events.
    pub mean_interarrival_secs: f64,
    /// Mean burst duration in seconds.
    pub mean_duration_secs: f64,
    /// Pareto tail exponent of the burst magnitude.
    pub shape: f64,
    /// Up-burst magnitude cap.
    pub cap: f64,
    /// Dip magnitude cap (rate floors at `1/down_cap` of the base).
    pub down_cap: f64,
    /// Probability a burst is an up-spike (vs a dip).
    pub up_prob: f64,
}

/// Parameters of the two-state congestion modulator.
#[derive(Clone, Copy, Debug)]
pub struct MarkovParams {
    /// Rate multiplier in the bad (congested) state.
    pub bad_mult: f64,
    /// Mean sojourn in the good state, seconds.
    pub mean_good_secs: f64,
    /// Mean sojourn in the bad state, seconds.
    pub mean_bad_secs: f64,
}

/// A reusable recipe for building stochastic links.
#[derive(Clone, Debug)]
pub struct PathProfile {
    /// Profile name (used in reports).
    pub name: &'static str,
    /// Long-run mean available bandwidth.
    pub mean_rate: BitRate,
    /// Stationary std of the OU bandwidth process, as a fraction of mean.
    pub rate_std_frac: f64,
    /// OU mean-reversion time constant, seconds.
    pub rate_tau_secs: f64,
    /// Optional Pareto burst overlay.
    pub bursts: Option<BurstParams>,
    /// Optional Markov congestion modulator.
    pub markov: Option<MarkovParams>,
    /// Base round-trip time.
    pub base_rtt: SimDuration,
    /// RTT jitter (log-normal sigma ≈ std/mean).
    pub rtt_jitter_frac: f64,
    /// Per-round random loss probability.
    pub random_loss_per_round: f64,
    /// Bandwidth clamp, as fractions of the mean.
    pub min_rate_frac: f64,
    /// Upper clamp as a fraction of the mean.
    pub max_rate_frac: f64,
    /// Bottleneck queue depth in BDP multiples (LTE eNodeB buffers are
    /// notoriously deep — "bufferbloat" — so losses there are rarer).
    pub queue_bdp_factor: f64,
    /// How the link's stochastic streams generate deviates: block-filled
    /// draw tables (production) or the scalar-reference comparator path.
    /// Both are bit-identical; see [`msim_core::rng::DeviateMode`].
    pub deviate_mode: DeviateMode,
}

impl PathProfile {
    /// Home WiFi attachment of the §5 emulated testbed.
    pub fn wifi_testbed() -> Self {
        PathProfile {
            name: "wifi-testbed",
            mean_rate: BitRate::mbps(10.5),
            rate_std_frac: 0.05,
            rate_tau_secs: 8.0,
            bursts: Some(BurstParams {
                mean_interarrival_secs: 4.0,
                mean_duration_secs: 0.25,
                shape: 1.2,
                cap: 6.0,
                down_cap: 2.0,
                up_prob: 0.8,
            }),
            markov: Some(MarkovParams {
                bad_mult: 0.80,
                mean_good_secs: 20.0,
                mean_bad_secs: 4.0,
            }),
            base_rtt: SimDuration::from_millis(25),
            rtt_jitter_frac: 0.12,
            random_loss_per_round: 0.004,
            min_rate_frac: 0.10,
            max_rate_frac: 2.2,
            queue_bdp_factor: 1.0,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// Commercial LTE attachment of the §5 emulated testbed: slightly lower
    /// mean, 2–3× RTT, much burstier.
    pub fn lte_testbed() -> Self {
        PathProfile {
            name: "lte-testbed",
            mean_rate: BitRate::mbps(8.2),
            rate_std_frac: 0.07,
            rate_tau_secs: 8.0,
            bursts: Some(BurstParams {
                mean_interarrival_secs: 2.5,
                mean_duration_secs: 0.25,
                shape: 1.2,
                cap: 8.0,
                down_cap: 2.5,
                up_prob: 0.8,
            }),
            markov: Some(MarkovParams {
                bad_mult: 0.70,
                mean_good_secs: 16.0,
                mean_bad_secs: 3.0,
            }),
            base_rtt: SimDuration::from_millis(65),
            rtt_jitter_frac: 0.22,
            random_loss_per_round: 0.005,
            min_rate_frac: 0.15,
            max_rate_frac: 2.5,
            queue_bdp_factor: 3.0,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// WiFi path to the production YouTube CDN (§6): similar access link,
    /// a bit more cross-traffic variance en route to the CDN edge.
    pub fn wifi_youtube() -> Self {
        PathProfile {
            name: "wifi-youtube",
            mean_rate: BitRate::mbps(8.5),
            rate_std_frac: 0.06,
            rate_tau_secs: 8.0,
            bursts: Some(BurstParams {
                mean_interarrival_secs: 4.0,
                mean_duration_secs: 0.3,
                shape: 1.2,
                cap: 6.0,
                down_cap: 2.2,
                up_prob: 0.75,
            }),
            markov: Some(MarkovParams {
                bad_mult: 0.70,
                mean_good_secs: 22.0,
                mean_bad_secs: 3.5,
            }),
            base_rtt: SimDuration::from_millis(35),
            rtt_jitter_frac: 0.15,
            random_loss_per_round: 0.005,
            min_rate_frac: 0.08,
            max_rate_frac: 2.5,
            queue_bdp_factor: 1.0,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// LTE path to the production YouTube CDN (§6). RTT ≈ 2.5× WiFi.
    pub fn lte_youtube() -> Self {
        PathProfile {
            name: "lte-youtube",
            mean_rate: BitRate::mbps(6.0),
            rate_std_frac: 0.08,
            rate_tau_secs: 8.0,
            bursts: Some(BurstParams {
                mean_interarrival_secs: 2.5,
                mean_duration_secs: 0.3,
                shape: 1.2,
                cap: 8.0,
                down_cap: 2.5,
                up_prob: 0.75,
            }),
            markov: Some(MarkovParams {
                bad_mult: 0.65,
                mean_good_secs: 18.0,
                mean_bad_secs: 4.0,
            }),
            base_rtt: SimDuration::from_millis(100),
            rtt_jitter_frac: 0.25,
            random_loss_per_round: 0.006,
            min_rate_frac: 0.12,
            max_rate_frac: 2.8,
            queue_bdp_factor: 3.0,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// Wired campus ethernet attachment (the third path of the N-path
    /// scenarios): lower RTT and variance than either wireless path, a
    /// modest mean rate (shared access switch), shallow buffers.
    pub fn ethernet_testbed() -> Self {
        PathProfile {
            name: "eth-testbed",
            mean_rate: BitRate::mbps(9.4),
            rate_std_frac: 0.03,
            rate_tau_secs: 10.0,
            bursts: Some(BurstParams {
                mean_interarrival_secs: 6.0,
                mean_duration_secs: 0.2,
                shape: 1.3,
                cap: 4.0,
                down_cap: 1.8,
                up_prob: 0.85,
            }),
            markov: Some(MarkovParams {
                bad_mult: 0.90,
                mean_good_secs: 30.0,
                mean_bad_secs: 2.0,
            }),
            base_rtt: SimDuration::from_millis(12),
            rtt_jitter_frac: 0.06,
            random_loss_per_round: 0.001,
            min_rate_frac: 0.25,
            max_rate_frac: 1.8,
            queue_bdp_factor: 0.8,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// A deliberately stable link, useful in unit tests and the quickstart.
    pub fn stable(mean_mbps: f64, rtt_ms: u64) -> Self {
        PathProfile {
            name: "stable",
            mean_rate: BitRate::mbps(mean_mbps),
            rate_std_frac: 0.0,
            rate_tau_secs: 1.0,
            bursts: None,
            markov: None,
            base_rtt: SimDuration::from_millis(rtt_ms),
            rtt_jitter_frac: 0.0,
            random_loss_per_round: 0.0,
            min_rate_frac: 0.9,
            max_rate_frac: 1.1,
            queue_bdp_factor: 1.0,
            deviate_mode: DeviateMode::Block,
        }
    }

    /// Returns a copy scaled to a different mean rate (keeps variability
    /// fractions); handy for parameter sweeps.
    pub fn scaled_to(mut self, rate: BitRate) -> Self {
        self.mean_rate = rate;
        self
    }

    /// Returns a copy using the given deviate-generation mode for every
    /// stochastic stream the built link owns. The frozen-fingerprint corpus
    /// uses this to replay whole sessions on the scalar-reference path.
    pub fn with_deviate_mode(mut self, mode: DeviateMode) -> Self {
        self.deviate_mode = mode;
        self
    }

    /// The TCP configuration matched to this path (queue depth).
    pub fn tcp_config(&self) -> crate::tcp::TcpConfig {
        crate::tcp::TcpConfig {
            queue_bdp_factor: self.queue_bdp_factor,
            ..crate::tcp::TcpConfig::default()
        }
    }

    /// Instantiates a [`Link`]; all stochastic components get independent
    /// streams forked from `rng`. Components are composed through
    /// [`msim_core::process::ProcessKind`] — enum dispatch on the
    /// per-round sampling hot path, no per-component vtable.
    pub fn build(&self, rng: &mut Prng) -> Link {
        let mode = self.deviate_mode;
        let mean = self.mean_rate.as_mbps();
        let base: msim_core::process::ProcessKind = if self.rate_std_frac > 0.0 {
            Ou::with_mode(
                mean,
                mean * self.rate_std_frac,
                self.rate_tau_secs,
                rng.fork(),
                mode,
            )
            .into()
        } else {
            msim_core::process::Constant(mean).into()
        };
        let mut modulated =
            Modulated::new(base, mean * self.min_rate_frac, mean * self.max_rate_frac);
        if let Some(b) = self.bursts {
            modulated = modulated.with(Bursts::with_mode(
                b.mean_interarrival_secs,
                b.mean_duration_secs,
                b.shape,
                b.cap,
                b.down_cap,
                b.up_prob,
                rng.fork(),
                mode,
            ));
        }
        if let Some(m) = self.markov {
            modulated = modulated.with(MarkovModulator::with_mode(
                1.0,
                m.bad_mult,
                m.mean_good_secs,
                m.mean_bad_secs,
                rng.fork(),
                mode,
            ));
        }
        Link::with_mode(
            self.name,
            modulated,
            self.base_rtt,
            self.rtt_jitter_frac,
            self.random_loss_per_round,
            rng.fork(),
            mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msim_core::time::SimTime;

    #[test]
    fn rtt_ratio_matches_paper_measurements() {
        // §6: LTE RTT is 2–3× the WiFi RTT.
        let theta_testbed = PathProfile::lte_testbed().base_rtt.as_secs_f64()
            / PathProfile::wifi_testbed().base_rtt.as_secs_f64();
        let theta_youtube = PathProfile::lte_youtube().base_rtt.as_secs_f64()
            / PathProfile::wifi_youtube().base_rtt.as_secs_f64();
        assert!(
            (2.0..=3.0).contains(&theta_testbed),
            "testbed θ {theta_testbed}"
        );
        assert!(
            (2.0..=3.0).contains(&theta_youtube),
            "youtube θ {theta_youtube}"
        );
    }

    #[test]
    fn built_links_hover_around_mean() {
        for profile in [
            PathProfile::wifi_testbed(),
            PathProfile::lte_testbed(),
            PathProfile::wifi_youtube(),
            PathProfile::lte_youtube(),
        ] {
            let mut agg = 0.0;
            let runs = 8;
            for seed in 0..runs {
                let mut rng = Prng::new(seed);
                let mut link = profile.build(&mut rng);
                let mut sum = 0.0;
                let n = 600;
                for i in 0..n {
                    sum += link.rate_at(SimTime::from_millis(100 * i as u64)).as_mbps();
                }
                agg += sum / n as f64;
            }
            let avg = agg / runs as f64;
            let mean = profile.mean_rate.as_mbps();
            assert!(
                (avg - mean).abs() / mean < 0.35,
                "{}: avg {avg} vs mean {mean}",
                profile.name
            );
        }
    }

    #[test]
    fn lte_is_burstier_than_wifi() {
        let spread = |profile: &PathProfile| {
            let mut rng = Prng::new(5);
            let mut link = profile.build(&mut rng);
            let samples: Vec<f64> = (0..4000)
                .map(|i| link.rate_at(SimTime::from_millis(50 * i as u64)).as_mbps())
                .collect();
            let m = samples.iter().sum::<f64>() / samples.len() as f64;
            let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64;
            var.sqrt() / m // coefficient of variation
        };
        let wifi_cv = spread(&PathProfile::wifi_testbed());
        let lte_cv = spread(&PathProfile::lte_testbed());
        assert!(lte_cv > wifi_cv, "lte cv {lte_cv} vs wifi cv {wifi_cv}");
    }

    #[test]
    fn stable_profile_is_flat() {
        let mut rng = Prng::new(1);
        let mut link = PathProfile::stable(10.0, 20).build(&mut rng);
        let a = link.rate_at(SimTime::from_secs(1)).as_mbps();
        let b = link.rate_at(SimTime::from_secs(100)).as_mbps();
        assert_eq!(a, b);
        assert_eq!(link.rtt_at(SimTime::ZERO), SimDuration::from_millis(20));
    }

    #[test]
    fn scaled_to_changes_only_rate() {
        let p = PathProfile::wifi_testbed().scaled_to(BitRate::mbps(20.0));
        assert_eq!(p.mean_rate.as_mbps(), 20.0);
        assert_eq!(p.base_rtt, PathProfile::wifi_testbed().base_rtt);
    }
}
