//! Middlebox interference model.
//!
//! §1/§2 of the paper motivate a client-side, legacy-TCP design with the
//! observation that MPTCP "suffers significantly from network middleboxes as
//! they very often strip away unknown options", and that in the authors'
//! measurements *two out of three major US cellular carriers* did not allow
//! MPTCP traffic through the default HTTP port 80. This module models that
//! negotiation so an example/bench can demonstrate the motivation: MPTCP
//! falls back to single-path through such carriers while MSPlayer's plain
//! HTTP range requests are untouched.

/// What a middlebox on the path does to TCP traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Middlebox {
    /// Strips TCP options it does not recognise (kills `MP_CAPABLE`).
    pub strips_unknown_options: bool,
    /// Rewrites sequence numbers (kills `DSS` mappings mid-connection).
    pub rewrites_sequence_numbers: bool,
    /// Drops SYNs carrying unknown options entirely (worst case).
    pub drops_unknown_option_syn: bool,
}

impl Middlebox {
    /// A fully transparent middlebox.
    pub fn transparent() -> Self {
        Middlebox {
            strips_unknown_options: false,
            rewrites_sequence_numbers: false,
            drops_unknown_option_syn: false,
        }
    }

    /// A NAT/proxy that strips unknown TCP options (the common case the
    /// paper measured on cellular port 80).
    pub fn option_stripper() -> Self {
        Middlebox {
            strips_unknown_options: true,
            rewrites_sequence_numbers: false,
            drops_unknown_option_syn: false,
        }
    }

    /// A stateful firewall that drops SYNs with unknown options.
    pub fn syn_dropper() -> Self {
        Middlebox {
            strips_unknown_options: false,
            rewrites_sequence_numbers: false,
            drops_unknown_option_syn: true,
        }
    }
}

/// Result of attempting an MPTCP connection through a chain of middleboxes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MptcpNegotiation {
    /// MP_CAPABLE survived: multipath works end to end.
    MultipathOk,
    /// Options were stripped: the connection silently falls back to
    /// single-path TCP (RFC 6824 fallback).
    FellBackToSinglePath,
    /// SYN was dropped: the connection cannot even establish until the
    /// client retries without options.
    ConnectBlockedThenFallback,
}

/// Simulates RFC 6824 connection establishment through `path`.
pub fn negotiate_mptcp(path: &[Middlebox]) -> MptcpNegotiation {
    if path.iter().any(|m| m.drops_unknown_option_syn) {
        return MptcpNegotiation::ConnectBlockedThenFallback;
    }
    if path
        .iter()
        .any(|m| m.strips_unknown_options || m.rewrites_sequence_numbers)
    {
        return MptcpNegotiation::FellBackToSinglePath;
    }
    MptcpNegotiation::MultipathOk
}

/// Plain HTTP/TCP (what MSPlayer uses) through the same chain: always fine —
/// every hop speaks legacy TCP by construction.
pub fn negotiate_plain_tcp(_path: &[Middlebox]) -> bool {
    true
}

/// The paper's measurement: of the three major US carriers, two interfere
/// with MPTCP on port 80. Returns the per-carrier negotiation outcomes for
/// the demo bench/example.
pub fn us_carrier_survey() -> Vec<(&'static str, MptcpNegotiation)> {
    let carrier_a = [Middlebox::option_stripper()];
    let carrier_b = [Middlebox::syn_dropper()];
    let carrier_c = [Middlebox::transparent()];
    vec![
        ("carrier-A", negotiate_mptcp(&carrier_a)),
        ("carrier-B", negotiate_mptcp(&carrier_b)),
        ("carrier-C", negotiate_mptcp(&carrier_c)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_path_allows_multipath() {
        let path = [Middlebox::transparent(), Middlebox::transparent()];
        assert_eq!(negotiate_mptcp(&path), MptcpNegotiation::MultipathOk);
    }

    #[test]
    fn one_stripper_forces_fallback() {
        let path = [Middlebox::transparent(), Middlebox::option_stripper()];
        assert_eq!(
            negotiate_mptcp(&path),
            MptcpNegotiation::FellBackToSinglePath
        );
    }

    #[test]
    fn syn_dropper_dominates() {
        let path = [Middlebox::option_stripper(), Middlebox::syn_dropper()];
        assert_eq!(
            negotiate_mptcp(&path),
            MptcpNegotiation::ConnectBlockedThenFallback
        );
    }

    #[test]
    fn plain_tcp_always_passes() {
        let path = [
            Middlebox::option_stripper(),
            Middlebox::syn_dropper(),
            Middlebox::transparent(),
        ];
        assert!(negotiate_plain_tcp(&path));
    }

    #[test]
    fn survey_matches_paper_two_of_three() {
        let survey = us_carrier_survey();
        let broken = survey
            .iter()
            .filter(|(_, r)| *r != MptcpNegotiation::MultipathOk)
            .count();
        assert_eq!(broken, 2, "two of three carriers break MPTCP (§2)");
    }
}
