//! Differential tests: the epoch transfer engine vs the reference round
//! loop.
//!
//! The contract (ISSUE 4 / README "The transfer engine"): wherever the
//! fast path engages, and everywhere else too, the epoch engine is
//! **bit-identical** to `tcp::rounds` — same `TransferResult` model fields
//! (including `rounds` and `losses`), same RNG stream positions on the
//! link, and same warm-connection state (`cwnd`, `ssthresh`, CUBIC state,
//! pacing byte count, `last_activity`) so keep-alive chains cannot
//! silently diverge on the *next* chunk. These tests randomize link
//! profiles, mobility handoffs, idle-restart gaps, loss regimes, receiver
//! windows, and server pacing, and compare chunk chains end to end.

use msim_core::process::{Bursts, Constant, MarkovModulator, Modulated, Ou, ProcessKind};
use msim_core::rng::Prng;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::{BitRate, ByteSize};
use msim_net::mobility::OutageSchedule;
use msim_net::profile::PathProfile;
use msim_net::tcp::{TcpConfig, TcpConnection, TransferEngine, TransferResult};
use msim_net::Link;
use proptest::prelude::*;

/// A randomized transfer scenario: one link recipe, one TCP config, one
/// keep-alive chunk chain with idle gaps.
struct Scenario {
    link_seed: u64,
    rate_mbps: f64,
    rtt: SimDuration,
    jitter: f64,
    loss: f64,
    kind: u8,
    outages: Option<Vec<(SimTime, SimTime)>>,
    cfg: TcpConfig,
    pace: Option<(ByteSize, BitRate)>,
    chunks: Vec<(ByteSize, SimDuration)>, // (size, idle gap before request)
}

impl Scenario {
    /// Derives a scenario from a seed (both engines get identical copies).
    fn derive(seed: u64) -> Scenario {
        let mut g = Prng::new(seed ^ 0xD1FF_EE7E);
        let rate_mbps = g.uniform(1.5, 45.0);
        let rtt = SimDuration::from_millis(g.range(5, 150));
        // Mix of regimes: stable links (fast path), jittered, lossy, and
        // stochastic-rate links (per-round fallback).
        let jitter = if g.chance(0.4) {
            g.uniform(0.05, 0.3)
        } else {
            0.0
        };
        let loss = if g.chance(0.35) {
            g.uniform(0.001, 0.05)
        } else {
            0.0
        };
        let kind = (g.below(5)) as u8; // 0 const, 1 ou, 2 markov, 3 bursts, 4 markov+bursts
        let outages = if g.chance(0.3) {
            let start = g.range(50, 3_000);
            let len = g.range(20, 8_000);
            let second = start + len + g.range(500, 4_000);
            Some(vec![
                (
                    SimTime::from_millis(start),
                    SimTime::from_millis(start + len),
                ),
                (
                    SimTime::from_millis(second),
                    SimTime::from_millis(second + g.range(20, 2_000)),
                ),
            ])
        } else {
            None
        };
        let mut cfg = TcpConfig {
            queue_bdp_factor: *g.choose(&[0.5, 1.0, 3.0]),
            ..TcpConfig::default()
        };
        if g.chance(0.25) {
            // Small receiver window: exercises the rwnd-capped regime.
            cfg.rwnd_bytes = g.range(32, 256) * 1024;
        }
        if g.chance(0.2) {
            cfg.idle_restart = None;
        }
        let pace = if g.chance(0.3) {
            // Occasionally a *zero* pacing rate: past the burst this
            // zeroes the effective rate on an otherwise-healthy link and
            // must take the reference dead-link abort on both engines.
            let rate = if g.chance(0.15) {
                BitRate::ZERO
            } else {
                BitRate::mbps(g.uniform(1.0, 6.0))
            };
            Some((ByteSize::kb(g.range(128, 4096)), rate))
        } else {
            None
        };
        let n_chunks = g.range(2, 7) as usize;
        let chunks = (0..n_chunks)
            .map(|_| {
                let size = ByteSize::bytes(g.range(8 * 1024, 6 * 1024 * 1024));
                let gap_ms = *g.choose(&[0u64, 10, 120, 900, 1_500, 5_000]);
                (size, SimDuration::from_millis(gap_ms))
            })
            .collect();
        Scenario {
            link_seed: seed,
            rate_mbps,
            rtt,
            jitter,
            loss,
            kind,
            outages,
            cfg,
            pace,
            chunks,
        }
    }

    /// Builds one link instance; called once per engine so both see
    /// identical RNG streams.
    fn build_link(&self) -> Link {
        let mut rng = Prng::new(self.link_seed);
        let mean = self.rate_mbps;
        let base: ProcessKind = match self.kind {
            1 => Ou::new(mean, mean * 0.08, 6.0, rng.fork()).into(),
            _ => Constant(mean).into(),
        };
        let mut process = Modulated::new(base, mean * 0.1, mean * 2.5);
        if self.kind == 2 || self.kind == 4 {
            process = process.with(MarkovModulator::new(1.0, 0.6, 8.0, 2.0, rng.fork()));
        }
        if self.kind == 3 || self.kind == 4 {
            process = process.with(Bursts::new(3.0, 0.3, 1.2, 6.0, 2.0, 0.8, rng.fork()));
        }
        let mut link = Link::new(
            "diff",
            process,
            self.rtt,
            self.jitter,
            self.loss,
            rng.fork(),
        );
        if let Some(w) = &self.outages {
            link = link.with_outages(OutageSchedule::from_windows(w.clone()));
        }
        link
    }

    fn build_conn(&self, engine: TransferEngine) -> TcpConnection {
        let cfg = TcpConfig {
            engine,
            ..self.cfg.clone()
        };
        let conn = TcpConnection::new(cfg);
        match self.pace {
            Some((burst, rate)) => conn.with_server_pacing(burst, rate),
            None => conn,
        }
    }

    /// Runs the chunk chain on one engine, returning every transfer
    /// record, the warm-state snapshots after each chunk, and the RNG
    /// probes taken at the end.
    fn run(&self, engine: TransferEngine) -> (Vec<TransferResult>, Vec<String>, [u64; 2], f64) {
        let mut link = self.build_link();
        let mut conn = self.build_conn(engine);
        let mut t = conn.connect(&mut link, SimTime::ZERO);
        let mut results = Vec::new();
        let mut snapshots = Vec::new();
        for &(size, gap) in &self.chunks {
            t += gap;
            let res = conn.request(&mut link, t, size);
            t = res.completed_at;
            results.push(res);
            snapshots.push(format!("{:?}", conn.snapshot()));
        }
        // Stream-position probes: the link's own RNG, and the rate
        // process advanced well past the chain (any skipped/extra draw
        // shows up in one of these).
        let probe_t = t + SimDuration::from_secs(3);
        let rate_probe = link.rate_at(probe_t).as_bps();
        let probes = [link.rng_probe(), link.rng_probe()];
        (results, snapshots, probes, rate_probe)
    }
}

/// Asserts bit-identity of the model fields of two transfer records.
fn assert_results_equal(seed: u64, i: usize, a: &TransferResult, b: &TransferResult) {
    assert_eq!(
        a.requested_at, b.requested_at,
        "seed {seed} chunk {i}: requested_at"
    );
    assert_eq!(
        a.first_byte_at, b.first_byte_at,
        "seed {seed} chunk {i}: first_byte_at"
    );
    assert_eq!(
        a.completed_at, b.completed_at,
        "seed {seed} chunk {i}: completed_at"
    );
    assert_eq!(a.delivered, b.delivered, "seed {seed} chunk {i}: delivered");
    assert_eq!(a.rounds, b.rounds, "seed {seed} chunk {i}: rounds");
    assert_eq!(a.losses, b.losses, "seed {seed} chunk {i}: losses");
    assert_eq!(a.outcome, b.outcome, "seed {seed} chunk {i}: outcome");
}

fn check_scenario(seed: u64) {
    let scenario = Scenario::derive(seed);
    let (epoch, epoch_snaps, epoch_probes, epoch_rate) = scenario.run(TransferEngine::Epoch);
    let (rl, rl_snaps, rl_probes, rl_rate) = scenario.run(TransferEngine::RoundLoop);
    assert_eq!(epoch.len(), rl.len());
    for (i, (a, b)) in epoch.iter().zip(&rl).enumerate() {
        assert_results_equal(seed, i, a, b);
        // Warm-connection state after every chunk: a keep-alive chain
        // can never silently diverge on the next chunk.
        assert_eq!(
            epoch_snaps[i], rl_snaps[i],
            "seed {seed} chunk {i}: warm-connection state diverged"
        );
    }
    assert_eq!(
        epoch_probes, rl_probes,
        "seed {seed}: link RNG stream position diverged"
    );
    assert_eq!(
        epoch_rate.to_bits(),
        rl_rate.to_bits(),
        "seed {seed}: rate-process stream diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    /// The headline differential property: across randomized link
    /// profiles (stable/OU/Markov/burst rates), jitter and loss regimes,
    /// outage handoffs, idle-restart gaps, small receiver windows, and
    /// server pacing, the epoch engine is bit-identical to the reference
    /// round loop — results, RNG positions, warm state.
    #[test]
    fn epoch_engine_matches_round_loop(seed in 0u64..1_000_000) {
        check_scenario(seed);
    }
}

/// A hand-picked spread of scenario seeds that is guaranteed to run in CI
/// even if the property-test case count is tuned down.
#[test]
fn epoch_engine_matches_round_loop_pinned_seeds() {
    for seed in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 610, 987, 46_368] {
        check_scenario(seed);
    }
}

/// The fast path must actually engage on stable links — otherwise the
/// differential suite would be vacuously comparing two round loops.
#[test]
fn fast_path_engages_on_stable_links() {
    let mut rng = Prng::new(7);
    let mut link = PathProfile::stable(10.0, 20).build(&mut rng);
    let mut conn = TcpConnection::new(TcpConfig::default());
    let ready = conn.connect(&mut link, SimTime::ZERO);
    let res = conn.request(&mut link, ready, ByteSize::mb(4));
    assert!(
        res.stats.epochs >= 1,
        "no stable epoch engaged: {:?}",
        res.stats
    );
    assert!(
        res.stats.fast_rounds == res.rounds,
        "every round of a stable-link transfer should be fast-path: {} of {}",
        res.stats.fast_rounds,
        res.rounds
    );
    assert!(res.rounds > 20, "sanity: a 4 MB chunk takes many rounds");

    // And the reference loop reports no fast-path activity.
    let mut rng = Prng::new(7);
    let mut link = PathProfile::stable(10.0, 20).build(&mut rng);
    let cfg = TcpConfig {
        engine: TransferEngine::RoundLoop,
        ..TcpConfig::default()
    };
    let mut conn = TcpConnection::new(cfg);
    let ready = conn.connect(&mut link, SimTime::ZERO);
    let res_rl = conn.request(&mut link, ready, ByteSize::mb(4));
    assert_eq!(res_rl.stats, Default::default());
    assert_eq!(res.rounds, res_rl.rounds);
    assert_eq!(res.completed_at, res_rl.completed_at);
}

/// The realistic paper profiles are jittered and lossy: the engine must
/// fall back to per-round stepping (bit-identical trivially and by test),
/// and report no fast-path rounds.
#[test]
fn jittered_profiles_fall_back_to_rounds() {
    let mut rng = Prng::new(11);
    let mut link = PathProfile::wifi_testbed().build(&mut rng);
    let mut conn = TcpConnection::new(TcpConfig::default());
    let ready = conn.connect(&mut link, SimTime::ZERO);
    let res = conn.request(&mut link, ready, ByteSize::mb(2));
    assert_eq!(res.stats.fast_rounds, 0, "jittered links cannot fast-path");
    assert_eq!(res.stats.epochs, 0);
}

/// Regression (found in review): a zero server-pacing rate zeroes the
/// *effective* rate on a perfectly stable link once the burst is spent.
/// The reference loop takes its dead-link arm and aborts with `TimedOut`;
/// the epoch engine must do exactly the same instead of grinding out a
/// "stable" epoch at rate zero.
#[test]
fn zero_pacing_rate_takes_the_dead_link_abort_on_both_engines() {
    let run = |engine: TransferEngine| {
        let mut rng = Prng::new(5);
        let mut link = PathProfile::stable(12.0, 25).build(&mut rng);
        let cfg = TcpConfig {
            engine,
            ..TcpConfig::default()
        };
        let mut conn = TcpConnection::new(cfg).with_server_pacing(ByteSize::kb(64), BitRate::ZERO);
        let ready = conn.connect(&mut link, SimTime::ZERO);
        let res = conn.request(&mut link, ready, ByteSize::mb(2));
        (
            res.outcome,
            res.completed_at,
            res.delivered,
            res.rounds,
            res.losses,
            format!("{:?}", conn.snapshot()),
        )
    };
    let epoch = run(TransferEngine::Epoch);
    let rl = run(TransferEngine::RoundLoop);
    assert_eq!(epoch, rl);
    assert_eq!(
        epoch.0,
        msim_net::tcp::TransferOutcome::TimedOut,
        "zero pacing rate must abort, not complete"
    );
}

/// Keep-alive warm-state equivalence on the chunk pattern the player
/// actually produces: consecutive chunks on a stable link, where the fast
/// path serves chunk N and the state feeds chunk N+1.
#[test]
fn warm_chain_on_stable_link_is_identical() {
    let run = |engine: TransferEngine| {
        let mut rng = Prng::new(3);
        let mut link = PathProfile::stable(16.0, 35).build(&mut rng);
        let cfg = TcpConfig {
            engine,
            ..TcpConfig::default()
        };
        let mut conn =
            TcpConnection::new(cfg).with_server_pacing(ByteSize::kb(512), BitRate::mbps(4.0));
        let mut t = conn.connect(&mut link, SimTime::ZERO);
        let mut out = Vec::new();
        for (i, gap_ms) in [0u64, 0, 40, 1_400, 0, 2_500, 0, 0].iter().enumerate() {
            t += SimDuration::from_millis(*gap_ms);
            let res = conn.request(&mut link, t, ByteSize::kb(256 << (i % 4)));
            t = res.completed_at;
            out.push((
                res.completed_at,
                res.rounds,
                res.losses,
                format!("{:?}", conn.snapshot()),
            ));
        }
        out
    };
    assert_eq!(run(TransferEngine::Epoch), run(TransferEngine::RoundLoop));
}
