//! Minimal, zero-dependency stand-in for the `criterion` bench harness.
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. This crate implements the subset its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until the measurement budget is spent, and reports the best
//! (minimum) and median per-iteration time in nanoseconds. Budgets can be
//! tightened for CI smoke runs with `CRITERION_MEASURE_MS` /
//! `CRITERION_WARMUP_MS`.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (kept for API compatibility; the
/// shim sizes batches by time, not by this hint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

fn env_ms(key: &str, default_ms: u64) -> Duration {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            measure: env_ms("CRITERION_MEASURE_MS", 400),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to the benchmark closure; records timing samples.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Nanoseconds per iteration, one entry per timed batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup and batch-size calibration.
        let mut iters_per_batch = 1u64;
        let warmup_end = Instant::now() + self.warmup;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warmup_end {
                if dt < Duration::from_micros(200) && iters_per_batch < (1 << 30) {
                    iters_per_batch *= 2;
                    continue;
                }
                break;
            }
            if dt < Duration::from_micros(200) && iters_per_batch < (1 << 30) {
                iters_per_batch *= 2;
            }
        }
        // Measurement.
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples
                .push(dt.as_nanos() as f64 / iters_per_batch as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup_end = Instant::now() + self.warmup;
        while Instant::now() < warmup_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt.as_nanos() as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let best = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{id:<44} best {:>12} median {:>12} ({} batches)",
            fmt_ns(best),
            fmt_ns(median),
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
