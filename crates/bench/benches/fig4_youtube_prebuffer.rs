//! Fig. 4 — pre-buffering 20/40/60 s of video over the YouTube service
//! profile: single-path WiFi, single-path LTE (commercial players, one
//! large range request) vs MSPlayer (Harmonic, 256 KB initial chunks).
//!
//! Paper: MSPlayer reduces start-up delay by 12 %, 21 %, 28 % for 20, 40,
//! 60 s pre-buffering vs the best single-path technology; the reduction
//! *grows* with the pre-buffer amount because fixed control-plane latency
//! amortises while bandwidth aggregation keeps paying.

use msim_core::report::{figures_dir, BoxPanel, Table};
use msim_core::stats::median;
use msplayer_bench::*;
use msplayer_core::config::SchedulerKind;

fn main() {
    println!(
        "Fig. 4 — pre-buffering over the YouTube service profile ({} runs)\n",
        runs()
    );
    let mut table = Table::new(&[
        "prebuffer (s)",
        "player",
        "median (s)",
        "q1",
        "q3",
        "reduction vs best single",
    ]);

    for pb in [20.0, 40.0, 60.0] {
        let wifi = prebuffer_times(Env::Youtube, Competitor::WifiOnly, commercial(256), pb);
        let lte = prebuffer_times(Env::Youtube, Competitor::LteOnly, commercial(256), pb);
        let ms = prebuffer_times(
            Env::Youtube,
            Competitor::MsPlayer,
            msplayer(SchedulerKind::Harmonic, 256),
            pb,
        );

        let mut panel = BoxPanel::new(
            &format!("{pb:.0} s pre-buffering"),
            "Download Time (sec)",
            56,
        );
        panel.add("WiFi", boxstats(&wifi));
        panel.add("LTE", boxstats(&lte));
        panel.add("MSPlayer", boxstats(&ms));
        println!("{}", panel.render());

        let best = median(&wifi).min(median(&lte));
        for (label, sample) in [("WiFi", &wifi), ("LTE", &lte), ("MSPlayer", &ms)] {
            let b = boxstats(sample);
            let reduction = if label == "MSPlayer" {
                format!("{:.0} %", 100.0 * (1.0 - b.median / best))
            } else {
                "-".to_string()
            };
            table.row(&[
                &format!("{pb:.0}"),
                label,
                &format!("{:.2}", b.median),
                &format!("{:.2}", b.q1),
                &format!("{:.2}", b.q3),
                &reduction,
            ]);
        }
    }
    println!("{}", table.render());
    println!("\n(paper reductions: 12 % / 21 % / 28 % for 20 / 40 / 60 s)");

    let csv_path = figures_dir().join("fig4_youtube_prebuffer.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
