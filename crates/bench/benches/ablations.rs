//! Ablations — the design choices DESIGN.md calls out, each swept in
//! isolation on the emulated testbed (40 s pre-buffer, Harmonic/256 KB
//! unless the ablation says otherwise):
//!
//! 1. out-of-order chunk cap (§2: "at most one out-of-order chunk");
//! 2. throughput variation parameter δ (Alg. 1; paper uses 5 %);
//! 3. EWMA weight α (Eq. 1; paper uses 0.9);
//! 4. full-history incremental harmonic mean (Eq. 2) vs sliding window;
//! 5. fast-path head start on/off (§3.2);
//! 6. γ rounding: exact proportional vs Alg. 1's literal ⌈·⌉;
//! 7. source diversity: two real paths vs one fat path of the same total
//!    capacity;
//! 8. server failover on/off under an injected server failure.

use msim_core::report::{figures_dir, Table};
use msim_core::stats::{mean, median};
use msim_core::time::SimTime;
use msim_core::units::BitRate;
use msim_net::profile::PathProfile;
use msim_youtube::dns::Network;
use msplayer_bench::*;
use msplayer_core::config::{GammaRounding, PlayerConfig, SchedulerKind};
use msplayer_core::sim::{run_session, Scenario, ServerFailure, StopCondition};

fn sweep(label: &str, table: &mut Table, make: impl Fn(u64) -> Scenario) {
    let times: Vec<f64> = (0..runs())
        .map(|run| {
            let seed = BASE_SEED ^ 0xAB1A ^ (run.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            run_session(&make(seed))
                .prebuffer_time()
                .expect("prebuffer completes")
                .as_secs_f64()
        })
        .collect();
    table.row(&[
        label,
        &format!("{:.2}", median(&times)),
        &format!("{:.2}", mean(&times)),
        &format!("{:.2}", boxstats(&times).iqr()),
    ]);
}

fn base_player() -> PlayerConfig {
    msplayer(SchedulerKind::Harmonic, 256)
}

fn main() {
    println!(
        "Ablations — emulated testbed, 40 s pre-buffer ({} runs each)\n",
        runs()
    );

    // 1. Out-of-order cap.
    let mut t = Table::new(&["ooo cap", "median (s)", "mean", "iqr"]);
    for cap in [0usize, 1, 2, 4, 16] {
        sweep(&format!("{cap}"), &mut t, |seed| {
            let mut p = base_player();
            p.ooo_cap = cap;
            Scenario::testbed_msplayer(seed, p)
        });
    }
    println!(
        "1) out-of-order chunk cap (paper design: 1)\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_ooo_cap.csv"))
        .unwrap();

    // 2. δ sweep.
    let mut t = Table::new(&["delta", "median (s)", "mean", "iqr"]);
    for delta in [0.01, 0.05, 0.10, 0.20] {
        sweep(&format!("{:.0} %", delta * 100.0), &mut t, |seed| {
            let mut p = base_player();
            p.delta = delta;
            Scenario::testbed_msplayer(seed, p)
        });
    }
    println!(
        "2) throughput variation parameter δ (paper: 5 %)\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_delta.csv"))
        .unwrap();

    // 3. α sweep (EWMA scheduler).
    let mut t = Table::new(&["alpha", "median (s)", "mean", "iqr"]);
    for alpha in [0.5, 0.7, 0.9, 0.99] {
        sweep(&format!("{alpha}"), &mut t, |seed| {
            let mut p = msplayer(SchedulerKind::Ewma, 256);
            p.alpha = alpha;
            Scenario::testbed_msplayer(seed, p)
        });
    }
    println!("3) EWMA weight α (paper: 0.9)\n{}", t.render());
    t.write_csv(&figures_dir().join("ablation_alpha.csv"))
        .unwrap();

    // 4. Harmonic estimator form.
    let mut t = Table::new(&["estimator", "median (s)", "mean", "iqr"]);
    for kind in [SchedulerKind::Harmonic, SchedulerKind::HarmonicWindowed] {
        sweep(kind.name(), &mut t, |seed| {
            Scenario::testbed_msplayer(seed, msplayer(kind, 256))
        });
    }
    println!(
        "4) full-history (Eq. 2) vs sliding-window harmonic mean\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_harmonic_form.csv"))
        .unwrap();

    // 5. Head start.
    let mut t = Table::new(&["head start", "median (s)", "mean", "iqr"]);
    for (label, on) in [("on (paper)", true), ("off", false)] {
        sweep(label, &mut t, |seed| {
            let mut p = base_player();
            p.head_start = on;
            Scenario::testbed_msplayer(seed, p)
        });
    }
    println!(
        "5) fast path starts before the slow path finishes bootstrap (§3.2)\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_head_start.csv"))
        .unwrap();

    // 6. γ rounding.
    let mut t = Table::new(&["gamma", "median (s)", "mean", "iqr"]);
    for (label, mode) in [
        ("exact (default)", GammaRounding::Exact),
        ("ceil (Alg. 1 literal)", GammaRounding::Ceil),
    ] {
        sweep(label, &mut t, |seed| {
            let mut p = base_player();
            p.gamma_rounding = mode;
            Scenario::testbed_msplayer(seed, p)
        });
    }
    println!(
        "6) fast-path γ rounding (see DESIGN.md deviation note)\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_gamma.csv"))
        .unwrap();

    // 7. Source/path diversity: two real paths vs one fat pipe.
    let mut t = Table::new(&["topology", "median (s)", "mean", "iqr"]);
    sweep("two paths (MSPlayer)", &mut t, |seed| {
        Scenario::testbed_msplayer(seed, base_player())
    });
    let total = PathProfile::wifi_testbed().mean_rate.as_mbps()
        + PathProfile::lte_testbed().mean_rate.as_mbps();
    sweep("one fat path, same capacity", &mut t, |seed| {
        Scenario::testbed_single_path(
            seed,
            PathProfile::wifi_testbed().scaled_to(BitRate::mbps(total)),
            Network::Wifi,
            commercial(1024),
        )
    });
    println!(
        "7) two paths vs a single path of equal total capacity\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_diversity.csv"))
        .unwrap();

    // 8. Failover under an injected failure of WiFi's primary server.
    let mut t = Table::new(&["failover", "median (s)", "mean", "iqr"]);
    for (label, enabled) in [("on (paper)", true), ("off", false)] {
        sweep(label, &mut t, |seed| {
            let mut p = base_player();
            p.failures_before_switch = if enabled { 1 } else { u32::MAX };
            let mut s = Scenario::testbed_msplayer(seed, p);
            s.server_failure = Some(ServerFailure {
                path: 0,
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(120),
            });
            s.stop = StopCondition::PrebufferDone;
            s
        });
    }
    println!(
        "8) server failover when WiFi's primary server fails at t=1 s\n{}",
        t.render()
    );
    t.write_csv(&figures_dir().join("ablation_failover.csv"))
        .unwrap();

    println!("[csv] written under {}", figures_dir().display());
}
