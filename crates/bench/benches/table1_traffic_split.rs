//! Table 1 — fraction of traffic carried over WiFi (mean ± std), for the
//! pre-buffering and re-buffering phases, with initial chunk size 256 KB on
//! the YouTube service profile.
//!
//! Paper values: pre-buffering 64.1±9.3 / 60.1±15.0 / 63.7±12.6 % and
//! re-buffering 61.8±7.1 / 61.7±11.5 / 56.5±11.6 % for 20/40/60 s. The WiFi
//! path carries >50 % because (a) it bootstraps first (the π head start)
//! and (b) it pays less per-request RTT overhead.

use msim_core::report::{figures_dir, Table};
use msim_core::stats::Running;
use msplayer_bench::*;
use msplayer_core::config::SchedulerKind;

fn main() {
    println!(
        "Table 1 — fraction of traffic over WiFi, initial chunk 256 KB ({} runs)\n",
        runs()
    );
    let mut table = Table::new(&["", "Pre-buffering", "Re-buffering"]);
    for pb in [20.0, 40.0, 60.0] {
        let (pre, re) = wifi_fractions(pb, msplayer(SchedulerKind::Harmonic, 256), 2);
        let mut pre_stats = Running::new();
        for v in &pre {
            pre_stats.push(*v);
        }
        let mut re_stats = Running::new();
        for v in &re {
            re_stats.push(*v);
        }
        table.row(&[
            &format!("{pb:.0} sec"),
            &format!("{} %", pre_stats.mean_pm_std()),
            &format!("{} %", re_stats.mean_pm_std()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\n(paper: pre 64.1±9.3 / 60.1±15.0 / 63.7±12.6; re 61.8±7.1 / 61.7±11.5 / 56.5±11.6)"
    );

    let csv_path = figures_dir().join("table1_traffic_split.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
