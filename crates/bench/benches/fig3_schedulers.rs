//! Fig. 3 — download times of the three schedulers
//! (Harmonic / EWMA / Ratio) for pre-buffering periods of 20/40/60 s and
//! initial unit chunk sizes of 16 KB / 64 KB / 256 KB / 1 MB, on the
//! emulated testbed. δ = 5 %, α = 0.9, 20 randomised runs per cell (§5.2).
//!
//! Shape to reproduce: download time decreases as the initial chunk size
//! grows; the Ratio baseline is worst (dramatically so at 16 KB) with high
//! variability; the dynamic schedulers adapt, with Harmonic best overall —
//! and Harmonic(256 KB) ≈ Harmonic(1 MB), which is why the paper adopts
//! 256 KB as the default.

use msim_core::report::{figures_dir, BoxPanel, Table};
use msplayer_bench::*;
use msplayer_core::config::SchedulerKind;

fn main() {
    let schedulers = [
        SchedulerKind::Harmonic,
        SchedulerKind::Ewma,
        SchedulerKind::Ratio,
    ];
    let chunk_sizes_kb = [16u64, 64, 256, 1024];
    let prebuffers = [20.0, 40.0, 60.0];

    println!(
        "Fig. 3 — scheduler × initial-chunk × pre-buffer sweep, emulated testbed ({} runs/cell)\n",
        runs()
    );

    let mut table = Table::new(&[
        "prebuffer (s)",
        "chunk",
        "scheduler",
        "median (s)",
        "q1",
        "q3",
        "whisker hi",
    ]);

    for &pb in &prebuffers {
        let mut panel = BoxPanel::new(
            &format!("{pb:.0} s pre-buffering"),
            "Download Time (sec)",
            56,
        );
        for &kb in chunk_sizes_kb.iter().rev() {
            for kind in schedulers {
                let times =
                    prebuffer_times(Env::Testbed, Competitor::MsPlayer, msplayer(kind, kb), pb);
                let b = boxstats(&times);
                let size_label = if kb >= 1024 {
                    format!("{}MB", kb / 1024)
                } else {
                    format!("{kb}KB")
                };
                panel.add(&format!("{size_label:>5} {:<8}", kind.name()), b);
                table.row(&[
                    &format!("{pb:.0}"),
                    &size_label,
                    kind.name(),
                    &format!("{:.2}", b.median),
                    &format!("{:.2}", b.q1),
                    &format!("{:.2}", b.q3),
                    &format!("{:.2}", b.whisker_hi),
                ]);
            }
        }
        println!("{}", panel.render());
    }
    println!("{}", table.render());

    let csv_path = figures_dir().join("fig3_schedulers.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
