//! Fig. 1 — HTTPS connection timeline to the YouTube web proxy server.
//!
//! Regenerates the phase timeline (3WHS, ClientHello … JSON, FIN) and the
//! derived quantities η, ψ, π of §3.2, including the fast-path head start
//! `π₂ − π₁ ≈ 10(θ−1)R₁` as a function of the RTT ratio θ.

use msim_core::report::{figures_dir, Table};
use msim_core::time::{SimDuration, SimTime};
use msim_http::tls::TlsTimingModel;

fn main() {
    let model = TlsTimingModel::default();

    // --- Phase timeline for the two testbed paths --------------------------
    println!(
        "Fig. 1 — HTTPS exchange phases (Δ1 = {}, Δ2 = {})\n",
        model.delta1, model.delta2
    );
    let mut table = Table::new(&["phase", "WiFi (R=25 ms)", "LTE (R=65 ms)"]);
    let wifi = model.timeline(SimTime::ZERO, SimDuration::from_millis(25));
    let lte = model.timeline(SimTime::ZERO, SimDuration::from_millis(65));
    for ((t_wifi, phase), (t_lte, _)) in wifi.iter().zip(lte.iter()) {
        table.row(&[
            &format!("{phase:?}"),
            &format!("{:.1} ms", t_wifi.as_secs_f64() * 1e3),
            &format!("{:.1} ms", t_lte.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", table.render());

    // --- η, ψ, π ------------------------------------------------------------
    let mut derived = Table::new(&["quantity", "formula", "WiFi", "LTE"]);
    let r1 = SimDuration::from_millis(25);
    let r2 = SimDuration::from_millis(65);
    derived.row(&[
        "eta (secure conn ready)",
        "4R + D1 + D2",
        &format!("{}", model.eta(r1)),
        &format!("{}", model.eta(r2)),
    ]);
    derived.row(&[
        "psi (JSON complete)",
        "6R + D1 + D2",
        &format!("{}", model.psi(r1)),
        &format!("{}", model.psi(r2)),
    ]);
    derived.row(&[
        "pi (first video packet)",
        "psi + eta",
        &format!("{}", model.pi(r1)),
        &format!("{}", model.pi(r2)),
    ]);
    println!("{}", derived.render());

    // --- Head start vs θ ----------------------------------------------------
    println!("Fast-path head start pi2 - pi1 = 10(theta-1)R1   (R1 = 25 ms)\n");
    let mut hs = Table::new(&["theta = R2/R1", "head start (model)", "10(theta-1)R1"]);
    for theta10 in [10u64, 15, 20, 25, 30] {
        let r2 = SimDuration::from_micros(r1.as_micros() * theta10 / 10);
        let measured = model.head_start(r1, r2);
        let formula = SimDuration::from_micros(r1.as_micros() * (theta10 - 10));
        hs.row(&[
            &format!("{:.1}", theta10 as f64 / 10.0),
            &format!("{measured}"),
            &format!("{formula}"),
        ]);
    }
    println!("{}", hs.render());

    let csv_path = figures_dir().join("fig1_handshake.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
