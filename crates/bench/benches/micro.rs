//! Criterion micro-benchmarks: performance guardrails on the hot paths of
//! the library (estimator updates, scheduler decisions, event queue,
//! JSON, HTTP codec, TCP transfer model, full sessions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use msim_core::event::fourary::FourAryQueue;
use msim_core::event::EventQueue;
use msim_core::rng::Prng;
use msim_core::time::{SimDuration, SimTime};
use msim_core::units::ByteSize;
use msplayer_core::config::{PlayerConfig, SchedulerKind};
use msplayer_core::estimator::{BandwidthEstimator, Ewma, HarmonicInc};
use msplayer_core::scheduler::{build_scheduler, SchedulerImpl};
use msplayer_core::sim::{run_session, Scenario};

fn bench_estimators(c: &mut Criterion) {
    c.bench_function("estimator/harmonic_inc_update", |b| {
        let mut est = HarmonicInc::new();
        let mut x = 1.0e6;
        b.iter(|| {
            x = x * 1.000001 + 13.0;
            est.update(black_box(x));
            black_box(est.estimate_bps())
        });
    });
    c.bench_function("estimator/ewma_update", |b| {
        let mut est = Ewma::new(0.9);
        let mut x = 1.0e6;
        b.iter(|| {
            x = x * 1.000001 + 13.0;
            est.update(black_box(x));
            black_box(est.estimate_bps())
        });
    });
}

fn bench_scheduler(c: &mut Criterion) {
    // Enum dispatch (what the player uses): on_sample + chunk_size are
    // direct, inlinable calls.
    c.bench_function("scheduler/dcsa_harmonic_on_sample", |b| {
        let cfg = PlayerConfig::default();
        let mut s = SchedulerImpl::from_config(&cfg);
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            s.on_sample(i & 1, black_box(8.0e6 + (i % 100) as f64 * 1e4));
            black_box(s.chunk_size(i & 1))
        });
    });
    // Boxed trait-object dispatch, kept as the before/after comparator for
    // the enum refactor.
    c.bench_function("scheduler/dcsa_harmonic_on_sample_boxed", |b| {
        let cfg = PlayerConfig::default();
        let mut s = build_scheduler(&cfg);
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            s.on_sample(i & 1, black_box(8.0e6 + (i % 100) as f64 * 1e4));
            black_box(s.chunk_size(i & 1))
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..1000u32 {
                    q.push(
                        SimTime::from_micros(((i * 7919) % 10_000) as u64 + 10_000),
                        i,
                    );
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        );
    });
    // Cancellation-heavy schedule: the simulator cancels timers (ticks,
    // timeouts) constantly; this is the path the slab queue makes O(1).
    c.bench_function("event_queue/push_cancel_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                let mut ids = Vec::with_capacity(1000);
                for i in 0..1000u32 {
                    ids.push(q.push(
                        SimTime::from_micros(((i * 7919) % 10_000) as u64 + 10_000),
                        i,
                    ));
                }
                // Cancel two of every three events, newest first.
                for (k, id) in ids.into_iter().enumerate().rev() {
                    if k % 3 != 0 {
                        black_box(q.cancel(id));
                    }
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        );
    });
    // Steady-state interleave: the simulator's actual access pattern is a
    // rolling horizon of pushes/pops, not bulk fill-drain.
    c.bench_function("event_queue/interleaved_steady_state", |b| {
        let mut q = EventQueue::<u32>::new();
        for i in 0..64u32 {
            q.push(SimTime::from_micros(i as u64 * 13 + 1_000_000), i);
        }
        let mut i = 64u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let (t, e) = q.pop().expect("queue never drains");
            q.push(
                t + SimDuration::from_micros(((e as u64 * 7919) % 997) + 1),
                i,
            );
            black_box(t)
        });
    });
    // The near-horizon timer pattern at scale: thousands of pending timers
    // (many multiplexed sessions), every reschedule within the rolling
    // horizon. This is the pattern the calendar ring exists for — pops stay
    // O(1) where a heap pays a full log-depth sift per pop. The `_fourary`
    // twin runs the identical schedule on the previous single-level 4-ary
    // heap (the before/after comparator, same precedent as the boxed
    // scheduler bench).
    c.bench_function("event_queue/near_horizon_steady_state_4k", |b| {
        let mut q = EventQueue::<u32>::new();
        for i in 0..4096u32 {
            q.push(SimTime::from_micros(i as u64 * 211 + 1_000_000), i);
        }
        let mut i = 4096u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let (t, e) = q.pop().expect("queue never drains");
            q.push(
                t + SimDuration::from_micros(((e as u64 * 7919) % 863_557) + 1),
                i,
            );
            black_box(t)
        });
    });
    c.bench_function("event_queue/near_horizon_steady_state_4k_fourary", |b| {
        let mut q = FourAryQueue::<u32>::new();
        for i in 0..4096u32 {
            q.push(SimTime::from_micros(i as u64 * 211 + 1_000_000), i);
        }
        let mut i = 4096u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let (t, e) = q.pop().expect("queue never drains");
            q.push(
                t + SimDuration::from_micros(((e as u64 * 7919) % 863_557) + 1),
                i,
            );
            black_box(t)
        });
    });
}

fn bench_json(c: &mut Criterion) {
    let doc = {
        let mut v = msim_json::Value::object();
        for i in 0..50u64 {
            v = v.with(
                &format!("key{i:02}"),
                msim_json::Value::object()
                    .with("itag", i)
                    .with("quality", "720p")
                    .with("size", i * 1_000_003),
            );
        }
        msim_json::to_string(&v)
    };
    c.bench_function("json/parse_5kB_doc", |b| {
        b.iter(|| black_box(msim_json::from_str(black_box(&doc)).unwrap()));
    });
}

fn bench_http_codec(c: &mut Criterion) {
    let resp = msim_http::Response::partial_content(
        vec![7u8; 256 * 1024],
        msim_http::ByteRange::from_offset_len(0, 256 * 1024),
        10_000_000,
    );
    let wire = msim_http::encode_response(&resp);
    c.bench_function("http/decode_256kB_response", |b| {
        b.iter(
            || match msim_http::decode_response(black_box(&wire)).unwrap() {
                msim_http::Decoded::Complete { message, .. } => black_box(message.body.len()),
                msim_http::Decoded::NeedMore => unreachable!(),
            },
        );
    });
}

fn bench_tcp_model(c: &mut Criterion) {
    c.bench_function("tcp/1MB_transfer_simulation", |b| {
        b.iter(|| {
            let mut link = msim_net::Link::new(
                "bench",
                msim_core::process::Constant(10.0),
                SimDuration::from_millis(30),
                0.1,
                0.001,
                Prng::new(7),
            );
            let mut conn = msim_net::TcpConnection::new(msim_net::TcpConfig::default());
            let ready = conn.connect(&mut link, SimTime::ZERO);
            black_box(conn.request(&mut link, ready, ByteSize::mb(1)))
        });
    });
    // The epoch engine's fast path vs the reference round loop on a stable
    // (jitter-free, loss-free) link — the pattern the closed-form solves
    // target. Results are bit-identical; only wall time differs.
    for engine in [
        msim_net::TransferEngine::Epoch,
        msim_net::TransferEngine::RoundLoop,
    ] {
        let name = match engine {
            msim_net::TransferEngine::Epoch => "tcp/stable_4MB_transfer_epoch",
            msim_net::TransferEngine::RoundLoop => "tcp/stable_4MB_transfer_roundloop",
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut link = msim_net::Link::new(
                    "bench",
                    msim_core::process::Constant(10.0),
                    SimDuration::from_millis(20),
                    0.0,
                    0.0,
                    Prng::new(7),
                );
                let cfg = msim_net::TcpConfig {
                    engine,
                    ..msim_net::TcpConfig::default()
                };
                let mut conn = msim_net::TcpConnection::new(cfg);
                let ready = conn.connect(&mut link, SimTime::ZERO);
                black_box(conn.request(&mut link, ready, ByteSize::mb(4)))
            });
        });
    }
}

fn bench_full_session(c: &mut Criterion) {
    c.bench_function("session/testbed_prebuffer_10s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let cfg = PlayerConfig::msplayer()
                .with_scheduler(SchedulerKind::Harmonic)
                .with_prebuffer_secs(10.0);
            black_box(run_session(&Scenario::testbed_msplayer(seed, cfg)))
        });
    });
}

criterion_group!(
    benches,
    bench_estimators,
    bench_scheduler,
    bench_event_queue,
    bench_json,
    bench_http_codec,
    bench_tcp_model,
    bench_full_session,
);
criterion_main!(benches);
