//! Fig. 5 — re-buffering 20/40/60 s of video with HTTP byte ranges of
//! 64 KB (Adobe Flash) and 256 KB (HTML5) over single-path WiFi and LTE,
//! vs MSPlayer, on the YouTube service profile.
//!
//! Shape to reproduce: all single-path players refill faster with larger
//! chunks (fewer range requests → less per-request RTT overhead); MSPlayer
//! estimates bandwidth, adapts chunk sizes and aggregates both paths, so it
//! refills fastest at every refill amount.

use msim_core::report::{figures_dir, BoxPanel, Table};
use msplayer_bench::*;
use msplayer_core::config::SchedulerKind;

/// Refill cycles measured per session.
const CYCLES: usize = 2;

fn main() {
    println!(
        "Fig. 5 — re-buffering over the YouTube service profile ({} runs × {CYCLES} cycles)\n",
        runs()
    );
    let mut table = Table::new(&["refill (s)", "player", "chunk", "median (s)", "q1", "q3"]);

    for refill in [20.0, 40.0, 60.0] {
        let mut panel = BoxPanel::new(
            &format!("{refill:.0} s re-buffering"),
            "Download Time (sec)",
            56,
        );
        let configs: Vec<(
            String,
            Competitor,
            msplayer_core::config::PlayerConfig,
            &str,
        )> = vec![
            (
                "WiFi 64 KB".into(),
                Competitor::WifiOnly,
                commercial(64),
                "64 KB",
            ),
            (
                "WiFi 256 KB".into(),
                Competitor::WifiOnly,
                commercial(256),
                "256 KB",
            ),
            (
                "LTE 64 KB".into(),
                Competitor::LteOnly,
                commercial(64),
                "64 KB",
            ),
            (
                "LTE 256 KB".into(),
                Competitor::LteOnly,
                commercial(256),
                "256 KB",
            ),
            (
                "MSPlayer".into(),
                Competitor::MsPlayer,
                msplayer(SchedulerKind::Harmonic, 256),
                "adaptive",
            ),
        ];
        for (label, who, cfg, chunk) in configs {
            let times = rebuffer_times(Env::Youtube, who, cfg, refill, CYCLES);
            let b = boxstats(&times);
            panel.add(&label, b);
            table.row(&[
                &format!("{refill:.0}"),
                &label,
                chunk,
                &format!("{:.2}", b.median),
                &format!("{:.2}", b.q1),
                &format!("{:.2}", b.q3),
            ]);
        }
        println!("{}", panel.render());
    }
    println!("{}", table.render());

    let csv_path = figures_dir().join("fig5_rebuffer.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
