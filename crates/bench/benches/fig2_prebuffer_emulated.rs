//! Fig. 2 — initial 40 s pre-buffering download time on the emulated
//! testbed: single-path WiFi vs single-path LTE vs MSPlayer.
//!
//! Paper: MSPlayer median 6.9 s vs best single path (WiFi) 10.9 s — a 37 %
//! start-up delay reduction. MSPlayer here runs the Ratio scheduler with a
//! 1 MB initial chunk, exactly the configuration the paper used for this
//! figure ("the MSPlayer results in Fig. 2 are based on the Ratio scheduler
//! with initial chunk size 1 MB").

use msim_core::report::{figures_dir, BoxPanel, Table};
use msplayer_bench::*;
use msplayer_core::config::SchedulerKind;

fn main() {
    let prebuffer = 40.0;
    println!(
        "Fig. 2 — {prebuffer:.0} s pre-buffer download time, emulated testbed ({} runs)\n",
        runs()
    );

    let ms = prebuffer_times(
        Env::Testbed,
        Competitor::MsPlayer,
        msplayer(SchedulerKind::Ratio, 1024),
        prebuffer,
    );
    let wifi = prebuffer_times(
        Env::Testbed,
        Competitor::WifiOnly,
        commercial(1024),
        prebuffer,
    );
    let lte = prebuffer_times(
        Env::Testbed,
        Competitor::LteOnly,
        commercial(1024),
        prebuffer,
    );

    let mut panel = BoxPanel::new("Download time distribution", "Download Time (sec)", 56);
    panel.add("WiFi", boxstats(&wifi));
    panel.add("LTE", boxstats(&lte));
    panel.add("MSPlayer", boxstats(&ms));
    println!("{}", panel.render());

    let mut table = Table::new(&["player", "median (s)", "q1", "q3", "mean", "n"]);
    let mut csv_rows: Vec<(&str, &Vec<f64>)> =
        vec![("WiFi", &wifi), ("LTE", &lte), ("MSPlayer", &ms)];
    for (label, sample) in csv_rows.drain(..) {
        let b = boxstats(sample);
        table.row(&[
            label,
            &format!("{:.2}", b.median),
            &format!("{:.2}", b.q1),
            &format!("{:.2}", b.q3),
            &format!("{:.2}", msim_core::stats::mean(sample)),
            &format!("{}", b.n),
        ]);
    }
    println!("{}", table.render());

    let best_single = msim_core::stats::median(&wifi).min(msim_core::stats::median(&lte));
    let reduction = 100.0 * (1.0 - msim_core::stats::median(&ms) / best_single);
    println!(
        "\nMSPlayer start-up delay reduction vs best single path: {reduction:.0} %  (paper: 37 %)"
    );

    let csv_path = figures_dir().join("fig2_prebuffer_emulated.csv");
    table.write_csv(&csv_path).expect("write CSV");
    println!("[csv] {}", csv_path.display());
}
