//! Telemetry non-perturbation pin.
//!
//! The observability layer's core contract: enabling metrics, spans, and
//! the trace sink must not change a single simulated bit. This replays
//! every row of the frozen sampling corpus
//! (`tests/sampling_corpus/fingerprints.json`) with telemetry and the
//! trace buffer fully enabled and asserts the digests are identical to
//! the committed values — the same values `sampling_corpus.rs` pins with
//! telemetry disabled. Any RNG draw, event reorder, or float perturbation
//! introduced by instrumentation fails the exact same assertion that
//! guards the streams themselves.

use msim_core::rng::DeviateMode;
use msim_core::telemetry;
use msplayer_bench::chaos::scheduler_by_name;
use msplayer_bench::sampling::{corpus_points, load_corpus};
use msplayer_bench::workload::WorkloadRegistry;

/// Replays all committed fingerprints with counters, spans, AND the
/// trace sink live, then checks the run actually exercised the registry
/// (a silently disabled build would make the bit-identity claim vacuous).
#[test]
fn corpus_replays_bit_identically_with_telemetry_enabled() {
    telemetry::set_enabled(true);
    telemetry::set_trace_enabled(true);
    let reg = WorkloadRegistry::builtin(msplayer_bench::sampling::SEEDS_PER_WORKLOAD);
    let corpus = load_corpus().expect("committed corpus loads");
    assert_eq!(
        corpus.len(),
        corpus_points(&reg).len(),
        "corpus rows != registry grid points"
    );
    for fp in &corpus {
        let scheduler = scheduler_by_name(&fp.scheduler).expect("known scheduler");
        let got = msplayer_bench::sampling::digest_point(
            &reg,
            &fp.workload,
            scheduler,
            fp.chunk_kb,
            fp.seed,
            DeviateMode::Block,
        );
        assert_eq!(
            got, fp.digest,
            "telemetry perturbed the simulation: {}/{} chunk={} seed={:#x} \
             digests {:#018x}, corpus pins {:#018x}",
            fp.workload, fp.scheduler, fp.chunk_kb, fp.seed, got, fp.digest
        );
    }
    // Prove the instrumentation was live, not compiled out or runtime-off.
    // Exact counts are not asserted — the registry is process-global and
    // other tests in this binary may run concurrently — but a full corpus
    // replay must have recorded at least one session per row and produced
    // trace events.
    if telemetry::COMPILED {
        let counters = telemetry::counter_values();
        let sessions = counters.get("msp_sessions_total").copied().unwrap_or(0);
        assert!(
            sessions >= corpus.len() as u64,
            "expected >= {} sessions counted, saw {sessions}",
            corpus.len()
        );
        assert!(
            telemetry::trace_len() > 0 || telemetry::trace_dropped() > 0,
            "trace sink was enabled but recorded nothing"
        );
        // Drain the buffer so this test leaves no multi-megabyte residue
        // for siblings.
        let events = telemetry::take_trace();
        assert!(events.iter().any(|e| e.kind == "session.start"));
    }
    telemetry::set_trace_enabled(false);
}

/// The exposition endpoint renders the post-replay registry into text
/// that round-trips through the minimal line parser: every non-comment
/// line yields a sample whose key matches `metric_key` reconstruction.
#[test]
fn post_replay_exposition_roundtrips_through_line_parser() {
    if !telemetry::COMPILED {
        return;
    }
    telemetry::set_enabled(true);
    // Make sure at least something is registered even if this test runs
    // first in the binary.
    telemetry::count("msp_sessions_total", 0);
    telemetry::count_with("msp_transfer_requests_total", &[("engine", "block")], 0);
    let text = telemetry::render_prometheus();
    let mut samples = 0usize;
    for line in text.lines() {
        let parsed = telemetry::parse_exposition_line(line)
            .unwrap_or_else(|e| panic!("rendered line {line:?} must parse: {e}"));
        if let Some(sample) = parsed {
            samples += 1;
            assert!(!sample.name.is_empty());
            assert!(sample.value.is_finite() || sample.value.is_nan());
        }
    }
    assert!(samples > 0, "exposition rendered no samples");
}
