//! Tier-1 pin of the sampling-stream redefinition (stream epoch 2).
//!
//! Three claims, each load-bearing for the vectorized sampling engine:
//!
//! 1. the committed fingerprints replay bit-for-bit on the production
//!    (block-fill) path — the streams are frozen from this PR on;
//! 2. the scalar-reference fill path produces the *same* sessions — the
//!    blocked transcendental math is exact, not approximate;
//! 3. warm-host batching is invisible — `run_batch` over a shared host
//!    digests identically to a fresh host per session.
//!
//! Regenerate after an (explicitly sanctioned) stream change with:
//!
//! ```sh
//! cargo test -p msplayer-bench --test sampling_corpus -- --ignored
//! ```

use msim_core::rng::DeviateMode;
use msplayer_bench::chaos::scheduler_by_name;
use msplayer_bench::cluster::merge::digest_metrics;
use msplayer_bench::sampling::{
    compute_fingerprints, corpus_points, digest_point, load_corpus, save_corpus,
};
use msplayer_bench::workload::WorkloadRegistry;
use msplayer_core::sim::SessionHost;

fn registry() -> WorkloadRegistry {
    WorkloadRegistry::builtin(msplayer_bench::sampling::SEEDS_PER_WORKLOAD)
}

/// Claim 1: the committed corpus replays bit-identically on the block
/// path, and covers every builtin workload (a workload registered without
/// a fingerprint is a coverage hole, not a pass).
#[test]
fn committed_fingerprints_replay_on_block_path() {
    let reg = registry();
    let corpus = load_corpus().expect("committed corpus loads");
    let expected = corpus_points(&reg);
    assert_eq!(
        corpus.len(),
        expected.len(),
        "corpus rows != registry grid points — a workload was added or \
         removed without regenerating the corpus"
    );
    for fp in &corpus {
        let scheduler = scheduler_by_name(&fp.scheduler)
            .unwrap_or_else(|| panic!("unknown scheduler {:?}", fp.scheduler));
        let got = digest_point(
            &reg,
            &fp.workload,
            scheduler,
            fp.chunk_kb,
            fp.seed,
            DeviateMode::Block,
        );
        assert_eq!(
            got, fp.digest,
            "stream drift: {}/{} chunk={} seed={:#x} digests {:#018x}, \
             corpus pins {:#018x}",
            fp.workload, fp.scheduler, fp.chunk_kb, fp.seed, got, fp.digest
        );
    }
}

/// Claim 2: the scalar-reference path reproduces every committed digest.
/// Combined with claim 1 this proves Block == ScalarRef over whole
/// sessions of every builtin workload, not just over raw deviate arrays.
#[test]
fn scalar_reference_path_matches_committed_fingerprints() {
    let reg = registry();
    for fp in load_corpus().expect("committed corpus loads") {
        let scheduler = scheduler_by_name(&fp.scheduler).expect("known scheduler");
        let got = digest_point(
            &reg,
            &fp.workload,
            scheduler,
            fp.chunk_kb,
            fp.seed,
            DeviateMode::ScalarRef,
        );
        assert_eq!(
            got, fp.digest,
            "block/scalar divergence on {}/{} seed={:#x}",
            fp.workload, fp.scheduler, fp.seed
        );
    }
}

/// Claim 3: one warm host running all of a workload's pinned seeds through
/// `run_batch` digests identically to the fresh-host-per-session corpus.
/// This is the bit-identity contract the cache-friendly batching (shared
/// event-queue storage, bootstrap cache, scratch arenas) must uphold.
#[test]
fn warm_host_batches_match_committed_fingerprints() {
    let reg = registry();
    let corpus = load_corpus().expect("committed corpus loads");
    for w in reg.specs() {
        let rows: Vec<_> = corpus.iter().filter(|fp| fp.workload == w.name).collect();
        assert!(!rows.is_empty(), "no corpus rows for {}", w.name);
        let scheduler = scheduler_by_name(&rows[0].scheduler).expect("known scheduler");
        let spec = w.session_spec(scheduler, rows[0].chunk_kb, rows[0].seed);
        let seeds: Vec<u64> = rows.iter().map(|fp| fp.seed).collect();
        let mut host = SessionHost::new(w.service.clone());
        let metrics = host
            .run_batch(&seeds, &spec)
            .expect("registered workloads validate");
        for (fp, m) in rows.iter().zip(&metrics) {
            assert_eq!(
                digest_metrics(m),
                fp.digest,
                "warm-host batch diverged on {} seed={:#x}",
                w.name,
                fp.seed
            );
        }
    }
}

/// Regenerator: recomputes every fingerprint on the block path and
/// rewrites the committed JSON. Ignored by default — running it is the
/// explicit act of re-freezing the streams after a sanctioned change.
#[test]
#[ignore = "rewrites the committed corpus; run explicitly after a sanctioned stream change"]
fn regenerate_committed_fingerprints() {
    let reg = registry();
    let fps = compute_fingerprints(&reg, DeviateMode::Block);
    let path = save_corpus(&fps).expect("corpus written");
    println!("wrote {} fingerprints to {}", fps.len(), path.display());
}
