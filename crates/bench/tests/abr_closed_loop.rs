//! Closed-loop ABR differential guardrails.
//!
//! The contract the whole subsystem rides on: the closed-loop machinery is
//! *inert* until a switch actually fires. On a one-rung ladder no policy
//! can ever switch, so a closed-loop session must be **bit-identical** to
//! the fixed-itag player — every chunk record, f64 goodput, refill, and
//! stall (the fields that encode the links' RNG stream positions) must
//! match exactly. And on a stable link where the policy holds its rung,
//! shadow mode and closed-loop mode must take the same decisions.

use msim_net::profile::PathProfile;
use msim_youtube::dns::Network;
use msplayer_bench::workload::WorkloadRegistry;
use msplayer_core::abr::AbrPolicyKind;
use msplayer_core::config::{AbrLadderConfig, PlayerConfig};
use msplayer_core::metrics::SessionMetrics;
use msplayer_core::sim::{Scenario, SessionHost, StopCondition};

/// Strips the fields closed-loop sessions grow by design — the ABR traces
/// and the event count (decision ticks are extra simulator events) — so
/// what remains is exactly the simulated streaming behaviour.
fn behavioural(m: &SessionMetrics) -> SessionMetrics {
    let mut m = m.clone();
    m.abr_switches.clear();
    m.abr_decisions.clear();
    m.abr_qoe = None;
    m.events = 0;
    m
}

const POLICIES: [AbrPolicyKind; 3] = [
    AbrPolicyKind::DampedRate,
    AbrPolicyKind::BufferOccupancy,
    AbrPolicyKind::Hybrid,
];

/// Closed-loop ABR on a one-rung ladder is bit-identical to the
/// fixed-itag player, for every builtin workload shape, every policy, and
/// several randomized seeds. Chunk goodputs and completion times are pure
/// functions of the links' RNG streams, so equality here pins the RNG
/// stream positions too.
#[test]
fn one_rung_closed_loop_is_bit_identical_to_the_fixed_player() {
    let registry = WorkloadRegistry::builtin(1);
    let mut covered = 0;
    for w in registry.specs() {
        if w.abr.is_some() {
            // ABR workloads diverge from the fixed player by design.
            continue;
        }
        let mut host = SessionHost::new(w.service.clone());
        for run in 0..2u64 {
            let seed = w.seed(run);
            let spec = w.session_spec(w.schedulers[0], w.chunk_kb[0], seed);
            let fixed = host.run(&spec).expect("builtin specs validate");
            for policy in POLICIES {
                let mut abr_spec = spec.clone();
                abr_spec.player.abr_ladder = Some(
                    AbrLadderConfig::closed_loop()
                        .with_policy(policy)
                        .with_ladder(vec![w.service.itag]),
                );
                let closed = host.run(&abr_spec).expect("one-rung ladder validates");
                let qoe = closed.abr_qoe.expect("closed-loop sessions carry QoE");
                assert_eq!(qoe.switches, 0, "{}: one rung cannot switch", w.name);
                assert_eq!(
                    qoe.time_weighted_bitrate_bps,
                    msim_youtube::by_itag(w.service.itag)
                        .unwrap()
                        .bitrate
                        .as_bps(),
                    "{}: one-rung TWA is the fixed bitrate",
                    w.name
                );
                assert_eq!(
                    behavioural(&closed),
                    behavioural(&fixed),
                    "{} seed {seed:#x} {policy:?}: closed loop diverged from the fixed player",
                    w.name
                );
            }
        }
        covered += 1;
    }
    assert!(covered >= 11, "covered only {covered} workloads");
}

/// On a stable link whose budget exactly sustains the starting rung, no
/// switch fires — and shadow mode must take the same decisions as closed
/// loop (same rungs, same reasons, same inputs).
#[test]
fn shadow_equals_closed_loop_when_no_switch_fires() {
    // One stable 3.5 Mb/s path: budget 0.8 × 3.5 = 2.8 Mb/s affords
    // itag 22 (2.5 Mb/s) but not 37 (4.3 Mb/s) — the damped policy holds.
    // The ladder floor is the starting rung: the policy's very first
    // decision fires before any path has a warmed-up sample (estimate 0 →
    // floor), so a lower rung in the ladder would legitimately switch.
    let ladder = vec![22, 37];
    let run = |abr: AbrLadderConfig| {
        let cfg = PlayerConfig::msplayer()
            .with_prebuffer_secs(10.0)
            .with_abr_ladder(abr);
        let mut scenario =
            Scenario::testbed_single_path(11, PathProfile::stable(3.5, 30), Network::Wifi, cfg);
        scenario.stop = StopCondition::AfterRefills(2);
        msplayer_core::sim::run_session(&scenario)
    };
    let closed = run(AbrLadderConfig::closed_loop().with_ladder(ladder.clone()));
    let shadow = run(AbrLadderConfig::default().with_ladder(ladder));

    let qoe = closed.abr_qoe.expect("closed loop carries QoE");
    assert_eq!(qoe.switches, 0, "stable link must not switch: {qoe:?}");
    assert!(
        !closed.abr_decisions.is_empty(),
        "decisions were taken on the stable link"
    );
    // Decision-for-decision equality (shadow never sets `switched`; with
    // no switch fired the closed-loop flags are all false too).
    assert_eq!(closed.abr_decisions, shadow.abr_decisions);
    assert_eq!(closed.abr_switches, shadow.abr_switches);
    // And the streams themselves are identical.
    assert_eq!(behavioural(&closed), behavioural(&shadow));
}

/// The acceptance scenario: a sweep over `abr/closed-loop` contains
/// sessions whose streamed itag changes mid-session, with the
/// time-weighted bitrate strictly between the ladder endpoints.
#[test]
fn closed_loop_sweep_switches_between_ladder_endpoints() {
    let w = std::sync::Arc::new(msplayer_bench::workload::WorkloadSpec::abr_closed_loop_grid(2));
    let cells = msplayer_bench::sweep::expand_workload(&w);
    let results = msplayer_bench::sweep::run_serial(&cells);
    let bottom = msim_youtube::by_itag(17).unwrap().bitrate.as_bps();
    let top = msim_youtube::by_itag(37).unwrap().bitrate.as_bps();
    let mut switched = 0;
    for r in &results {
        let qoe = r
            .expect_metrics()
            .abr_qoe
            .expect("closed-loop cells carry QoE");
        if qoe.switches > 0 {
            switched += 1;
            assert!(
                qoe.time_weighted_bitrate_bps > bottom && qoe.time_weighted_bitrate_bps < top,
                "{:?}: twa {} outside ({bottom}, {top})",
                r.cell,
                qoe.time_weighted_bitrate_bps
            );
            assert!(
                r.expect_metrics().abr_decisions.iter().any(|d| d.switched),
                "switch count without a switched decision"
            );
        }
    }
    assert!(switched > 0, "no session of the sweep ever switched");
}
