//! Batch-API equivalence and N-path determinism.
//!
//! The contract the whole sweep engine rides on: running sessions over a
//! warmed [`SessionHost`] — one at a time, in a batch, or interleaved — is
//! bit-identical to running each session through the single-shot
//! [`run_session`] shim. Host reuse amortizes bootstrap, never behaviour.

use msplayer_bench::sweep::{expand_workload, run_parallel, run_serial};
use msplayer_bench::workload::{PlayerKind, WorkloadRegistry, WorkloadSpec};
use msplayer_core::sim::{run_session, Scenario, SessionHost};
use proptest::prelude::*;
use std::sync::Arc;

/// Rebuilds the single-shot `Scenario` equivalent of one workload cell.
/// Only expressible when the workload carries at most one server failure
/// (the `Scenario` compatibility type predates failure storms).
fn scenario_of(w: &WorkloadSpec, seed: u64) -> Option<Scenario> {
    if w.server_failures.len() > 1 {
        return None;
    }
    let spec = w.session_spec(w.schedulers[0], w.chunk_kb[0], seed);
    Some(Scenario {
        seed,
        paths: spec.paths,
        service: w.service.service.clone(),
        video_secs: w.service.video_secs,
        copyrighted: w.service.copyrighted,
        itag: w.service.itag,
        player: spec.player,
        stop: spec.stop,
        server_failure: spec.server_failures.first().copied(),
    })
}

/// `run_batch` over N seeds is bit-identical to N independent
/// `run_session` calls, for **every** built-in workload (both
/// environments, all competitor shapes, the storms, the 3/4-path grids,
/// and the same-network dual-WiFi scenario). Workloads a `Scenario`
/// cannot express (several failures) compare against fresh one-shot
/// hosts instead.
#[test]
fn batch_equals_run_session_loop_for_every_builtin_workload() {
    let registry = WorkloadRegistry::builtin(1);
    let mut covered = 0;
    for w in registry.specs() {
        let spec = w.session_spec(w.schedulers[0], w.chunk_kb[0], 0);
        let seeds: Vec<u64> = (0..3).map(|r| w.seed(r)).collect();
        let mut host = SessionHost::new(w.service.clone());
        let batch = host
            .run_batch(&seeds, &spec)
            .expect("builtin specs validate");
        assert_eq!(batch.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            if let Some(scenario) = scenario_of(w, seed) {
                let single = run_session(&scenario);
                assert_eq!(batch[i], single, "{}: seed {seed:#x} diverged", w.name);
            } else {
                // Failure storms exceed `Scenario`'s one-failure shape:
                // compare against a fresh one-shot host instead.
                let mut fresh = SessionHost::new(w.service.clone());
                let single = fresh
                    .run(&spec.clone().with_seed(seed))
                    .expect("builtin specs validate");
                assert_eq!(batch[i], single, "{}: seed {seed:#x} diverged", w.name);
            }
        }
        covered += 1;
    }
    assert!(
        covered >= 15,
        "expected every builtin workload (incl. abr/closed-loop, abr/mobility-handoff, \
         and mobility/mixed-trace), got {covered}"
    );
}

/// Interleaving different session shapes on one host leaves each session
/// unchanged: host state never leaks across runs.
#[test]
fn interleaved_sessions_do_not_leak_host_state() {
    let storm = WorkloadSpec::server_failure_storm(1);
    let plain = WorkloadSpec::from_env_competitor(
        msplayer_bench::Env::Testbed,
        msplayer_bench::Competitor::MsPlayer,
        vec![msplayer_core::config::SchedulerKind::Harmonic],
        vec![256],
        10.0,
        1,
    );
    assert_eq!(storm.service.service.servers_per_network, 2);
    let storm_spec = storm.session_spec(storm.schedulers[0], 256, storm.seed(0));
    let plain_spec = plain.session_spec(plain.schedulers[0], 256, plain.seed(0));

    let mut fresh = SessionHost::new(plain.service.clone());
    let plain_alone = fresh.run(&plain_spec).expect("valid");
    let mut fresh = SessionHost::new(storm.service.clone());
    let storm_alone = fresh.run(&storm_spec).expect("valid");

    // Same service profile → one shared host, alternating shapes.
    let mut shared = SessionHost::new(plain.service.clone());
    let storm_first = shared.run(&storm_spec).expect("valid");
    let plain_after_storm = shared.run(&plain_spec).expect("valid");
    let storm_again = shared.run(&storm_spec).expect("valid");

    assert_eq!(storm_first, storm_alone, "storm diverged on shared host");
    assert_eq!(
        plain_after_storm, plain_alone,
        "failure plan leaked into the next session"
    );
    assert_eq!(storm_again, storm_alone, "host drifted after reuse");
}

/// A 3-path scenario runs end-to-end through `SessionHost` and the
/// parallel sweep with bit-identical serial/parallel output.
#[test]
fn three_path_workload_runs_through_the_sweep_engine() {
    let w = Arc::new(WorkloadSpec::three_path_testbed(2));
    assert_eq!(w.paths.len(), 3);
    assert_eq!(w.player, PlayerKind::MsPlayer);
    let cells = expand_workload(&w);
    // 2 schedulers × 1 chunk × 2 seeds.
    assert_eq!(cells.len(), 4);
    let serial = run_serial(&cells);
    for r in &serial {
        assert!(
            r.expect_metrics().prebuffer_done_at.is_some(),
            "{:?}",
            r.cell
        );
        assert_eq!(r.expect_metrics().num_paths(), 3);
        assert!(
            (0..3).all(|p| r.expect_metrics().chunk_count(p) > 0),
            "all three paths carried traffic: {:?}",
            r.cell
        );
    }
    for threads in [2, 3, 8] {
        let parallel = run_parallel(&cells, threads);
        assert_eq!(
            serial, parallel,
            "3-path sweep diverged at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// 3-path determinism property: whatever the seed count and thread
    /// count, the parallel sweep over the 3-path workload is bit-identical
    /// to the serial one.
    #[test]
    fn three_path_sweep_is_schedule_independent(
        runs in 1u64..3,
        threads in 2usize..6,
    ) {
        let w = Arc::new(WorkloadSpec::three_path_testbed(runs));
        let cells = expand_workload(&w);
        prop_assert!(!cells.is_empty());
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, threads);
        prop_assert_eq!(&serial, &parallel);
    }
}
