//! End-to-end distributed sweep service tests: a real coordinator, real
//! worker processes, real kills — and a bit-identical merge anyway.
//!
//! These are the tier-1 pins for the cluster's headline invariant: the
//! merged `BENCH` artifact equals the serial in-process reference
//! byte-for-byte regardless of worker count, kill schedule, or resume
//! boundary.

use msplayer_bench::cluster::{
    run_cluster, serial_artifact, ClusterConfig, SweepManifest, Transport, WorkerChaos,
};
use std::path::PathBuf;
use std::time::Duration;

fn sweepd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_msplayer-sweepd"))
}

/// A sweep small enough that every test here stays in the sub-minute
/// range: one 2-path workload, 2 seeded runs per cell.
fn small_manifest(name: &str) -> SweepManifest {
    SweepManifest {
        name: name.into(),
        workloads: vec!["testbed/MSPlayer".into()],
        runs: 2,
        shard_cells: 3,
    }
}

/// Fast fault-handling clocks so crash/expiry paths fire in milliseconds.
fn fast_config(manifest: SweepManifest) -> ClusterConfig {
    let mut config = ClusterConfig::new(manifest, sweepd());
    config.lease_timeout = Duration::from_millis(800);
    config.backoff_base = Duration::from_millis(10);
    config.backoff_cap = Duration::from_millis(100);
    config
}

fn pretty(v: &msim_json::Value) -> String {
    msim_json::to_string_pretty(v)
}

#[test]
fn killed_worker_still_merges_bit_identically() {
    let manifest = small_manifest("cluster_kill_test");
    let mut config = fast_config(manifest.clone());
    config.workers = 2;
    // Worker slot 0 self-destructs (exit 101) one cell into its first
    // lease — a real process death, observed as a closed stream.
    config.worker_chaos = vec![Some(
        WorkerChaos::parse("0:crash-after-cells=1").expect("directive parses"),
    )];

    let outcome = run_cluster(&config).expect("coordinator survives the kill");
    assert!(outcome.completed, "sweep must finish despite the crash");
    assert!(
        outcome.violations.is_empty(),
        "no determinism violations: {:?}",
        outcome.violations
    );
    let stats = &outcome.stats;
    assert!(
        stats.reassignments + stats.respawns > 0,
        "the kill must actually have been observed and handled: {stats:?}"
    );

    let merged = pretty(outcome.artifact.as_ref().expect("completed => artifact"));
    let serial = pretty(&serial_artifact(&manifest).expect("serial reference"));
    assert_eq!(merged, serial, "crash-identical merge violated");
}

#[test]
fn duplicate_completions_are_deduplicated_not_merged_twice() {
    let manifest = small_manifest("cluster_dup_test");
    let mut config = fast_config(manifest.clone());
    config.workers = 2;
    config.worker_chaos = vec![Some(
        WorkerChaos::parse("0:duplicate-done").expect("directive parses"),
    )];

    let outcome = run_cluster(&config).expect("coordinator runs");
    assert!(outcome.completed);
    assert!(
        outcome.stats.duplicates > 0,
        "the duplicated Done frame must have been seen: {:?}",
        outcome.stats
    );
    assert!(
        outcome.violations.is_empty(),
        "identical duplicates are benign: {:?}",
        outcome.violations
    );
    let merged = pretty(outcome.artifact.as_ref().expect("artifact"));
    let serial = pretty(&serial_artifact(&manifest).expect("serial reference"));
    assert_eq!(merged, serial, "duplicates leaked into the merge");
}

#[test]
fn checkpoint_resume_is_bit_identical() {
    // One-cell shards: 4 shards total, so the simulated crash after 2
    // completions leaves real work for the resumed coordinator.
    let mut manifest = small_manifest("cluster_resume_test");
    manifest.shard_cells = 1;
    let scratch = std::env::temp_dir().join(format!("msp-cluster-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut config = fast_config(manifest.clone());
    config.workers = 2;
    config.checkpoint = Some(scratch.join("journal.ndjson"));
    // Simulated coordinator crash after two shard completions.
    config.stop_after_shards = Some(2);

    let first = run_cluster(&config).expect("first (aborted) run");
    assert!(!first.completed, "stop_after_shards must abort the run");
    assert!(first.artifact.is_none(), "no artifact from a partial run");

    // Second coordinator process (same config object, fresh state):
    // resumes from the journal instead of re-running finished shards.
    config.stop_after_shards = None;
    let second = run_cluster(&config).expect("resumed run");
    assert!(second.completed);
    assert!(
        second.stats.resumed_shards >= 2,
        "journaled shards must be restored, not re-run: {:?}",
        second.stats
    );
    let merged = pretty(second.artifact.as_ref().expect("artifact"));
    let serial = pretty(&serial_artifact(&manifest).expect("serial reference"));
    assert_eq!(merged, serial, "resume boundary leaked into the artifact");

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn tcp_workers_complete_the_sweep() {
    // Reserve an ephemeral port, then hand it to the coordinator.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        listener.local_addr().expect("local addr").to_string()
    };
    let manifest = small_manifest("cluster_tcp_test");
    let mut config = fast_config(manifest.clone());
    config.workers = 2;
    // Generous lease so the inline starvation fallback doesn't steal the
    // shards before the TCP workers have connected.
    config.lease_timeout = Duration::from_secs(5);
    config.transport = Transport::Tcp { addr: addr.clone() };

    let coordinator = std::thread::spawn(move || run_cluster(&config));
    std::thread::sleep(Duration::from_millis(150));
    let mut workers: Vec<std::process::Child> = (0..2)
        .map(|_| {
            std::process::Command::new(sweepd())
                .args(["worker", "--connect", &addr])
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn TCP worker")
        })
        .collect();

    let outcome = coordinator
        .join()
        .expect("coordinator thread")
        .expect("coordinator result");
    assert!(outcome.completed);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    let merged = pretty(outcome.artifact.as_ref().expect("artifact"));
    let serial = pretty(&serial_artifact(&manifest).expect("serial reference"));
    assert_eq!(merged, serial, "TCP transport changed the artifact");

    // Workers exit on the coordinator's Shutdown frame; don't leak them
    // if that ever regresses.
    for w in &mut workers {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match w.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = w.kill();
                    let _ = w.wait();
                    break;
                }
            }
        }
    }
}
