//! Tier-1 corpus regression: every committed chaos case replays green,
//! and the recording machinery itself round-trips a violation.

use msplayer_bench::chaos::{
    corpus_dir, load_corpus, record_case, run_case, run_case_with_oracle, ChaosCase,
};
use msplayer_bench::workload::WorkloadRegistry;
use msplayer_core::chaos::Violation;

/// Every `(seed, plan, workload)` case committed under
/// `tests/chaos_corpus/` must replay with zero invariant violations —
/// the corpus is the repo's accumulated chaos regression suite, so a
/// red case here means a previously-fixed failure mode is back.
#[test]
fn committed_corpus_replays_green() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus readable");
    assert!(
        !corpus.is_empty(),
        "the committed corpus must not be empty (looked in {})",
        corpus_dir().display()
    );
    let registry = WorkloadRegistry::builtin(1);
    for (path, case) in &corpus {
        let outcome = run_case(case, &registry);
        assert!(
            outcome.ok(),
            "{} regressed: {:?}\nreproduce with:\n  cargo run -p msplayer-bench --bin sweep -- --case {}",
            path.display(),
            outcome.violations,
            path.display()
        );
        // The stored filename must match the case's deterministic name,
        // so re-recording an identical case overwrites rather than
        // duplicating.
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(case.file_name().as_str()),
            "corpus file renamed out from under its case"
        );
    }
}

/// A violating case must survive the full loop: detect → record as JSON
/// → load → replay with the same verdict. A deliberately impossible
/// oracle manufactures the violation; the standard oracle then clears
/// the very same case, proving the violation lives in the oracle, not
/// in the recording.
#[test]
fn synthetic_violation_round_trips_through_recording_and_replay() {
    let registry = WorkloadRegistry::builtin(1);
    let case = ChaosCase {
        workload: "testbed/MSPlayer".into(),
        scheduler: "Harmonic".into(),
        chunk_kb: 256,
        seed: 4242,
        plan: "clock-skew".into(),
        recorded_violations: Vec::new(),
    };
    let impossible = |m: &msplayer_core::metrics::SessionMetrics| {
        vec![Violation {
            invariant: "synthetic-chunk-quota",
            detail: format!(
                "session fetched {} chunks, demanded 1000000",
                m.chunks.len()
            ),
        }]
    };

    // Detect.
    let found = run_case_with_oracle(&case, &registry, impossible);
    assert!(!found.ok(), "the impossible oracle must flag the session");

    // Record into a scratch corpus.
    let dir = std::env::temp_dir().join(format!("chaos_corpus_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut recorded = case.clone();
    recorded.recorded_violations = found.violations.clone();
    let path = record_case(&recorded, &dir).expect("record case");

    // Load + replay.
    let loaded = load_corpus(&dir).expect("scratch corpus readable");
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0].0, path);
    assert_eq!(loaded[0].1, recorded);
    let replay = run_case_with_oracle(&loaded[0].1, &registry, impossible);
    assert_eq!(
        replay.violations, found.violations,
        "replay must reproduce the recorded verdict exactly"
    );
    // Same case, standard oracle: green — the fault was synthetic.
    assert!(run_case(&loaded[0].1, &registry).ok());

    let _ = std::fs::remove_dir_all(&dir);
}
