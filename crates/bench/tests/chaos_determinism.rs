//! Determinism under chaos, across the whole builtin registry: layering
//! a `ChaosPlan` must not break (a) serial-vs-parallel sweep
//! equivalence, (b) batch-vs-loop bit-equivalence, or (c) invariant
//! health — on any registered workload.

use msplayer_bench::sweep::{run_parallel, run_serial};
use msplayer_bench::workload::{WorkloadRegistry, WorkloadSpec};
use msplayer_core::chaos::{check_invariants, ChaosPlan};
use msplayer_core::sim::SessionHost;
use std::sync::Arc;

/// A plan that validates on every builtin workload (all injectors target
/// path 0, which every workload has).
fn universal_plan() -> ChaosPlan {
    ChaosPlan::parse(
        "skew:+250ms;token-expiry:3s;outage:path=0,dir=down,from=2s,until=4s;\
         overload:path=0,from=1s,until=6s;jitter:200ms",
    )
    .expect("plan parses")
}

/// The builtin registry with the universal plan layered onto every
/// workload (fresh names via the `+chaos[..]` suffix, so registration
/// never collides with the clean specs).
fn chaotic_registry() -> WorkloadRegistry {
    let plan = universal_plan();
    let mut chaotic = WorkloadRegistry::new();
    for spec in WorkloadRegistry::builtin(1).specs() {
        chaotic.register(WorkloadSpec::clone(spec).with_chaos(plan.clone()));
    }
    chaotic
}

#[test]
fn chaotic_plan_validates_against_every_builtin_workload() {
    let plan = universal_plan();
    for spec in WorkloadRegistry::builtin(1).specs() {
        assert!(
            plan.validate(spec.paths.len()).is_ok(),
            "plan must apply to {}",
            spec.name
        );
    }
}

#[test]
fn serial_vs_parallel_sweep_is_bit_identical_under_chaos() {
    let cells = chaotic_registry().cells();
    assert!(
        cells.len() >= 15,
        "every builtin workload contributes cells"
    );
    let serial = run_serial(&cells);
    let parallel = run_parallel(&cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "cell {} diverged under threads", s.cell.kind());
    }
    // And every chaotic session still holds the invariant oracle.
    for r in &serial {
        let violations = check_invariants(r.expect_metrics());
        assert!(
            violations.is_empty(),
            "{} seed {}: {violations:?}",
            r.cell.kind(),
            r.cell.seed
        );
    }
}

#[test]
fn batch_vs_loop_is_bit_identical_under_chaos_for_every_workload() {
    let seeds = [5u64, 77, 4096];
    for spec in chaotic_registry().specs() {
        let scheduler = spec.schedulers[0];
        let chunk_kb = spec.chunk_kb[0];
        let session = spec.session_spec(scheduler, chunk_kb, seeds[0]);
        let mut warmed = SessionHost::new(spec.service.clone());
        let batch = warmed
            .run_batch(&seeds, &session)
            .expect("registered workloads validate");
        for (&seed, batched) in seeds.iter().zip(&batch) {
            let fresh = SessionHost::new(spec.service.clone())
                .run(&spec.session_spec(scheduler, chunk_kb, seed))
                .expect("registered workloads validate");
            assert_eq!(
                &fresh, batched,
                "{} seed {seed}: batch diverged from loop under chaos",
                spec.name
            );
        }
    }
}

#[test]
fn chaos_layering_leaves_the_clean_workload_untouched() {
    let clean = WorkloadRegistry::builtin(1);
    let spec = Arc::clone(clean.by_name("testbed/MSPlayer").expect("builtin"));
    let chaotic = WorkloadSpec::clone(&spec).with_chaos(universal_plan());
    // The clean spec still has no chaos and its original name.
    assert!(spec.chaos.is_none());
    assert_eq!(spec.name, "testbed/MSPlayer");
    assert!(chaotic.chaos.is_some());
    assert_ne!(chaotic.name, spec.name);
    // And the chaotic run differs from the clean run on the same seed.
    let scheduler = spec.schedulers[0];
    let clean_m = SessionHost::new(spec.service.clone())
        .run(&spec.session_spec(scheduler, 256, 33))
        .expect("valid");
    let chaos_m = SessionHost::new(chaotic.service.clone())
        .run(&chaotic.session_spec(scheduler, 256, 33))
        .expect("valid");
    assert_ne!(
        clean_m, chaos_m,
        "the plan must actually perturb the session"
    );
}
