//! Determinism at scale: the parallel sweep engine must be an exact
//! drop-in for the serial runner, and the simulator itself must replay
//! bit-identically from a seed.

use msplayer_bench::sweep::{run_parallel, run_serial, Cell, SweepSpec};
use msplayer_bench::{scenario_for, Competitor, Env};
use msplayer_core::config::SchedulerKind;
use msplayer_core::sim::run_session;
use proptest::prelude::*;

/// Every (env, competitor, scheduler) cell — both environments, all three
/// competitors, all paper schedulers — produces bit-identical per-cell
/// metrics whether run serially or across the thread pool.
#[test]
fn parallel_sweep_matches_serial_for_every_cell_kind() {
    let spec = SweepSpec {
        envs: vec![Env::Testbed, Env::Youtube],
        competitors: vec![
            Competitor::MsPlayer,
            Competitor::WifiOnly,
            Competitor::LteOnly,
        ],
        schedulers: vec![
            SchedulerKind::Harmonic,
            SchedulerKind::Ewma,
            SchedulerKind::Ratio,
        ],
        chunk_kb: vec![256],
        prebuffer_secs: 10.0,
        runs: 2,
    };
    let cells = spec.cells();
    // (2 env) × (MsPlayer × 3 sched + 2 single-path × 1) × 1 chunk × 2 seeds
    assert_eq!(cells.len(), 2 * (3 + 2) * 2);
    let serial = run_serial(&cells);
    for threads in [2, 3, 8] {
        let parallel = run_parallel(&cells, threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p, "cell diverged with {threads} threads: {:?}", s.cell);
        }
    }
}

/// `run_session` with equal seeds is bit-identical across 3 runs —
/// including chunk-level f64 goodputs and the event count.
#[test]
fn run_session_is_bit_identical_across_three_runs() {
    for (env, who) in [
        (Env::Testbed, Competitor::MsPlayer),
        (Env::Youtube, Competitor::MsPlayer),
        (Env::Testbed, Competitor::WifiOnly),
    ] {
        let make = || {
            let player =
                msplayer_bench::msplayer(SchedulerKind::Harmonic, 256).with_prebuffer_secs(10.0);
            run_session(&scenario_for(env, who, 0xD5EED, player))
        };
        let a = make();
        let b = make();
        let c = make();
        assert_eq!(a, b, "{env:?}/{who:?} run 2 diverged");
        assert_eq!(b, c, "{env:?}/{who:?} run 3 diverged");
        assert!(a.events > 0, "event count recorded");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random sweep shapes (dims, seeds, thread counts) keep the
    /// parallel == serial invariant.
    #[test]
    fn random_sweeps_are_schedule_independent(
        runs in 1u64..3,
        chunk_kb in prop::sample::select(vec![64u64, 256]),
        threads in 2usize..6,
        sched in prop::sample::select(vec![
            SchedulerKind::Harmonic,
            SchedulerKind::Ratio,
        ]),
    ) {
        let spec = SweepSpec {
            envs: vec![Env::Testbed],
            competitors: vec![Competitor::MsPlayer, Competitor::LteOnly],
            schedulers: vec![sched],
            chunk_kb: vec![chunk_kb],
            prebuffer_secs: 8.0,
            runs,
        };
        let cells = spec.cells();
        prop_assert!(!cells.is_empty());
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, threads);
        prop_assert_eq!(&serial, &parallel);
    }
}

/// The engine handles degenerate inputs: empty cell lists and more threads
/// than cells.
#[test]
fn degenerate_sweeps() {
    let empty: Vec<Cell> = Vec::new();
    assert!(run_parallel(&empty, 8).is_empty());
    let spec = SweepSpec {
        envs: vec![Env::Testbed],
        competitors: vec![Competitor::MsPlayer],
        schedulers: vec![SchedulerKind::Harmonic],
        chunk_kb: vec![256],
        prebuffer_secs: 8.0,
        runs: 1,
    };
    let cells = spec.cells();
    assert_eq!(run_parallel(&cells, 64), run_serial(&cells));
}
