//! Property test for the crash-identical merge: the merged artifact is a
//! pure function of the row *set* — invariant under permutation,
//! partitioning, and injected duplicates — and always byte-identical to
//! the serial sweep's merge.
//!
//! This is the algebra the whole cluster leans on: whatever order shards
//! complete in, however many times a speculative re-execution reports,
//! however the cells were cut into shards, the artifact cannot tell.

use msplayer_bench::cluster::coordinator::serial_rows;
use msplayer_bench::cluster::merge::{hex_u64, sweep_fingerprint};
use msplayer_bench::cluster::{merge_rows, CellRow, SweepManifest};
use std::collections::HashSet;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn test_manifest() -> SweepManifest {
    SweepManifest {
        name: "merge_invariance".into(),
        workloads: vec!["testbed/MSPlayer".into()],
        runs: 1,
        shard_cells: 4,
    }
}

/// The coordinator's dedup discipline: first completion per shard index
/// wins, later arrivals are dropped before the merge.
fn dedup_first_wins(rows: Vec<CellRow>) -> Vec<CellRow> {
    let mut seen = HashSet::new();
    rows.into_iter().filter(|r| seen.insert(r.index)).collect()
}

#[test]
fn merge_is_permutation_and_duplicate_invariant() {
    let manifest = test_manifest();
    let (cells, rows) = serial_rows(&manifest).expect("serial rows");
    let reference = msim_json::to_string_pretty(
        &merge_rows(&manifest.name, manifest.fingerprint(), &cells, &rows)
            .expect("reference merge"),
    );

    let mut state = 0x5EED_CAFE_F00D_D00Du64;
    for trial in 0..16 {
        let mut jumbled = rows.clone();
        // Inject up to four duplicate completions (speculation/chaos).
        for _ in 0..(xorshift(&mut state) % 5) {
            let i = (xorshift(&mut state) as usize) % rows.len();
            jumbled.push(rows[i]);
        }
        // Fisher–Yates shuffle: completions arrive in arbitrary order.
        for i in (1..jumbled.len()).rev() {
            let j = (xorshift(&mut state) as usize) % (i + 1);
            jumbled.swap(i, j);
        }
        let merged = msim_json::to_string_pretty(
            &merge_rows(
                &manifest.name,
                manifest.fingerprint(),
                &cells,
                &dedup_first_wins(jumbled),
            )
            .expect("shuffled merge"),
        );
        assert_eq!(
            merged, reference,
            "trial {trial}: merge saw the arrival order"
        );
    }
}

#[test]
fn merge_is_partition_invariant() {
    let manifest = test_manifest();
    let (cells, rows) = serial_rows(&manifest).expect("serial rows");
    let reference = msim_json::to_string_pretty(
        &merge_rows(&manifest.name, manifest.fingerprint(), &cells, &rows)
            .expect("reference merge"),
    );

    // Cut the same row set into shards of width 1, 2, 5, and 7, complete
    // the shards back-to-front, and merge: identical bytes every time.
    for width in [1usize, 2, 5, 7] {
        let mut reordered: Vec<CellRow> = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(width).rev() {
            reordered.extend_from_slice(chunk);
        }
        let merged = msim_json::to_string_pretty(
            &merge_rows(&manifest.name, manifest.fingerprint(), &cells, &reordered)
                .expect("partitioned merge"),
        );
        assert_eq!(
            merged, reference,
            "shard width {width} leaked into the merge"
        );
    }
}

#[test]
fn artifact_embeds_the_sweep_fingerprint() {
    let manifest = test_manifest();
    let (cells, rows) = serial_rows(&manifest).expect("serial rows");
    let artifact =
        merge_rows(&manifest.name, manifest.fingerprint(), &cells, &rows).expect("merge");
    assert_eq!(
        artifact.get("sweep_fingerprint").and_then(|v| v.as_str()),
        Some(hex_u64(sweep_fingerprint(&rows)).as_str()),
        "artifact fingerprint must be the row-stream fingerprint"
    );
    assert_eq!(
        artifact.get("sessions").and_then(|v| v.as_u64()),
        Some(cells.len() as u64)
    );
}

#[test]
fn merge_rejects_gaps_strays_and_residual_duplicates() {
    let manifest = test_manifest();
    let (cells, rows) = serial_rows(&manifest).expect("serial rows");
    let fp = manifest.fingerprint();

    let mut gap = rows.clone();
    gap.pop();
    assert!(merge_rows(&manifest.name, fp, &cells, &gap).is_err(), "gap");

    let mut stray = rows.clone();
    stray.push(CellRow {
        index: cells.len() as u64 + 10,
        digest: 7,
    });
    assert!(
        merge_rows(&manifest.name, fp, &cells, &stray).is_err(),
        "out-of-range index"
    );

    let mut dup = rows.clone();
    dup.push(rows[0]);
    assert!(
        merge_rows(&manifest.name, fp, &cells, &dup).is_err(),
        "duplicates must be resolved before the merge, never inside it"
    );
}
