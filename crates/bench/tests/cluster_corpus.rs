//! Tier-1 corpus regression for the distributed sweep service: every
//! cluster-chaos case committed under `tests/cluster_corpus/` replays
//! green against a real coordinator and real worker processes.
//!
//! The committed cases pin the interesting fault schedules — a worker
//! kill, a stall across a lease expiry plus a coordinator crash/resume,
//! and a corrupt-framing worker next to a duplicating one — so a red
//! case here means a previously-working fault path regressed.

use msplayer_bench::cluster::{
    cluster_corpus_dir, load_cluster_corpus, record_cluster_case, run_cluster_case,
    ClusterChaosCase,
};
use std::path::PathBuf;

fn sweepd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_msplayer-sweepd"))
}

/// The pinned fault schedules. Committed via
/// `regenerate_committed_corpus` (below) so filenames always match the
/// deterministic naming scheme.
fn pinned_cases() -> Vec<ClusterChaosCase> {
    vec![
        // A worker process that really dies (exit 101) mid-lease.
        ClusterChaosCase {
            seed: 0x0001,
            workers: 2,
            shard_cells: 3,
            directives: vec!["0:crash-after-cells=1".into(), String::new()],
            stop_after: None,
            recorded_violations: Vec::new(),
        },
        // A stall past the lease deadline (speculative re-lease + late
        // duplicate) plus a simulated coordinator crash and resume.
        ClusterChaosCase {
            seed: 0x0002,
            workers: 2,
            shard_cells: 2,
            directives: vec!["0:stall-ms=900".into(), String::new()],
            stop_after: Some(1),
            recorded_violations: Vec::new(),
        },
        // One worker frames garbage, another duplicates its completion.
        ClusterChaosCase {
            seed: 0x0003,
            workers: 3,
            shard_cells: 4,
            directives: vec![
                "0:corrupt-done".into(),
                "1:duplicate-done".into(),
                String::new(),
            ],
            stop_after: None,
            recorded_violations: Vec::new(),
        },
    ]
}

#[test]
fn committed_cluster_corpus_replays_green() {
    let corpus = load_cluster_corpus(&cluster_corpus_dir()).expect("corpus readable");
    assert!(
        !corpus.is_empty(),
        "the committed cluster corpus must not be empty (looked in {})",
        cluster_corpus_dir().display()
    );
    let program = sweepd();
    for (path, case) in &corpus {
        let scratch = std::env::temp_dir().join(format!(
            "msp-cluster-corpus-{}-{:016x}",
            std::process::id(),
            case.seed
        ));
        let outcome = run_cluster_case(case, &program, &scratch);
        assert!(
            outcome.ok(),
            "{} regressed: {:?}",
            path.display(),
            outcome.violations
        );
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(case.file_name().as_str()),
            "corpus file renamed out from under its case"
        );
    }
}

/// Rewrites the committed corpus from `pinned_cases()` under the
/// deterministic filenames. Run after changing the pinned schedules:
///
/// ```sh
/// cargo test -p msplayer-bench --test cluster_corpus -- --ignored
/// ```
#[test]
#[ignore = "regenerates the committed corpus; run explicitly"]
fn regenerate_committed_corpus() {
    for case in pinned_cases() {
        let path = record_cluster_case(&case, &cluster_corpus_dir()).expect("record case");
        eprintln!("wrote {}", path.display());
    }
}
