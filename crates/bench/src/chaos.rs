//! The chaos explorer: sweeps deterministic seed budgets against
//! plan × workload grids, runs every session under the invariant oracle
//! (plus a batch-vs-fresh bit-equivalence check and a panic trap), and
//! records every violating `(seed, plan, workload)` triple as a JSON
//! case under `tests/chaos_corpus/` — replayed forever after by the
//! tier-1 regression test `tests/chaos_corpus.rs`.
//!
//! The sweep is deterministic end to end: the same budget enumerates the
//! same seeds, the same plans resolve to the same injector windows, and
//! the same verdicts come back — so a violation seen once is a violation
//! reproducible from its recorded case alone.

use crate::workload::{WorkloadRegistry, WorkloadSpec};
use msim_json::Value;
use msplayer_core::chaos::{check_invariants, ChaosPlan, Violation};
use msplayer_core::config::SchedulerKind;
use msplayer_core::metrics::SessionMetrics;
use msplayer_core::sim::SessionHost;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Salt mixed into the explorer's seed enumeration (distinct from the
/// sweep engine's, so chaos seeds never shadow benchmark seeds).
pub const CHAOS_EXPLORER_SALT: u64 = 0xC4A0_5EED;

/// The seed of explorer iteration `i` — the same enumeration every run.
pub fn explorer_seed(i: u64) -> u64 {
    explorer_seed_with_window(0, i)
}

/// The seed of explorer iteration `i` inside rotation `window`.
///
/// Window 0 reproduces the historical [`explorer_seed`] enumeration
/// exactly; every other window shifts the whole enumeration onto fresh
/// seeds. Periodic CI runs derive the window from the calendar date, so
/// over time the explorer covers new seed territory instead of
/// re-checking day one's seeds forever — while any given window stays
/// fully reproducible from its number alone.
pub fn explorer_seed_with_window(window: u64, i: u64) -> u64 {
    crate::BASE_SEED
        ^ CHAOS_EXPLORER_SALT
        ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ window.wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// One replayable chaos case: everything needed to reconstruct and
/// re-run a `(seed, plan, workload)` triple.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosCase {
    /// Base workload name in the builtin registry (the *clean* name; the
    /// plan is layered on top at replay time).
    pub workload: String,
    /// Scheduler name (see [`SchedulerKind::name`]).
    pub scheduler: String,
    /// Initial/base chunk size in KB.
    pub chunk_kb: u64,
    /// Session seed.
    pub seed: u64,
    /// Canonical chaos-plan string (see [`ChaosPlan`]'s `Display`).
    pub plan: String,
    /// Violations observed when the case was recorded (documentation;
    /// replay re-derives its own verdict).
    pub recorded_violations: Vec<String>,
}

impl ChaosCase {
    /// Serialises the case to its corpus JSON object.
    pub fn to_json(&self) -> Value {
        let violations: Vec<Value> = self
            .recorded_violations
            .iter()
            .map(|v| Value::String(v.clone()))
            .collect();
        Value::object()
            .with("workload", self.workload.as_str())
            .with("scheduler", self.scheduler.as_str())
            .with("chunk_kb", self.chunk_kb)
            .with("seed", self.seed)
            .with("plan", self.plan.as_str())
            .with("recorded_violations", Value::Array(violations))
    }

    /// Parses a corpus JSON object back into a case.
    pub fn from_json(v: &Value) -> Result<ChaosCase, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
        let text = |k: &str| {
            field(k).and_then(|f| {
                f.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field {k:?} is not a string"))
            })
        };
        let num = |k: &str| {
            field(k).and_then(|f| {
                f.as_u64()
                    .ok_or_else(|| format!("field {k:?} is not an integer"))
            })
        };
        let recorded_violations = match v.get("recorded_violations") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string violation entry".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("recorded_violations is not an array".into()),
            None => Vec::new(),
        };
        Ok(ChaosCase {
            workload: text("workload")?,
            scheduler: text("scheduler")?,
            chunk_kb: num("chunk_kb")?,
            seed: num("seed")?,
            plan: text("plan")?,
            recorded_violations,
        })
    }

    /// Deterministic corpus filename for this case (FNV-1a over the
    /// identifying fields — stable across platforms and runs).
    pub fn file_name(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.workload.as_bytes());
        eat(self.scheduler.as_bytes());
        eat(&self.chunk_kb.to_le_bytes());
        eat(&self.seed.to_le_bytes());
        eat(self.plan.as_bytes());
        format!("case-{h:016x}.json")
    }
}

/// Looks a scheduler up by its [`SchedulerKind::name`] label.
pub fn scheduler_by_name(name: &str) -> Option<SchedulerKind> {
    [
        SchedulerKind::Ratio,
        SchedulerKind::Ewma,
        SchedulerKind::Harmonic,
        SchedulerKind::HarmonicWindowed,
        SchedulerKind::Fixed,
    ]
    .into_iter()
    .find(|k| k.name() == name)
}

/// The verdict of one chaos run.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Oracle violations (empty = the session held every invariant).
    pub violations: Vec<String>,
    /// Small deterministic fingerprint of the session, for
    /// same-seed-same-verdict assertions without hauling full metrics.
    pub fingerprint: Option<Fingerprint>,
}

impl CaseOutcome {
    /// Did the case hold every invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A compact deterministic digest of one session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Simulator events processed.
    pub events: u64,
    /// Chunks fetched.
    pub chunks: u64,
    /// Total video bytes across the chunk ledger.
    pub bytes: u64,
    /// Session end, µs (0 if the session never ended — the oracle flags
    /// that separately).
    pub ended_at_us: u64,
    /// Failovers summed over paths.
    pub failovers: u64,
    /// Stall intervals recorded.
    pub stalls: u64,
}

impl Fingerprint {
    /// Digests a session's metrics.
    pub fn of(m: &SessionMetrics) -> Fingerprint {
        Fingerprint {
            events: m.events,
            chunks: m.chunks.len() as u64,
            bytes: m.chunks.iter().map(|c| c.bytes).sum(),
            ended_at_us: m.ended_at.map(|t| t.as_micros()).unwrap_or(0),
            failovers: m.failovers.iter().map(|&f| f as u64).sum(),
            stalls: m.stalls.len() as u64,
        }
    }
}

/// Runs one case under the standard invariant oracle.
pub fn run_case(case: &ChaosCase, registry: &WorkloadRegistry) -> CaseOutcome {
    run_case_with_oracle(case, registry, check_invariants)
}

/// Runs one case under a caller-supplied oracle (the corpus round-trip
/// test injects a deliberately stricter oracle to manufacture a
/// violation and watch it survive recording + replay).
pub fn run_case_with_oracle(
    case: &ChaosCase,
    registry: &WorkloadRegistry,
    oracle: impl Fn(&SessionMetrics) -> Vec<Violation>,
) -> CaseOutcome {
    let Some(base) = registry.by_name(&case.workload) else {
        return CaseOutcome {
            violations: vec![format!(
                "setup: unknown workload {:?} (registry has: {})",
                case.workload,
                registry.names().join(", ")
            )],
            fingerprint: None,
        };
    };
    let Some(scheduler) = scheduler_by_name(&case.scheduler) else {
        return CaseOutcome {
            violations: vec![format!("setup: unknown scheduler {:?}", case.scheduler)],
            fingerprint: None,
        };
    };
    let plan = match ChaosPlan::preset(&case.plan) {
        Ok(p) => p,
        Err(e) => {
            return CaseOutcome {
                violations: vec![format!("setup: bad plan: {e}")],
                fingerprint: None,
            }
        }
    };
    if let Err(reason) = plan.validate(base.paths.len()) {
        return CaseOutcome {
            violations: vec![format!("setup: plan invalid for workload: {reason}")],
            fingerprint: None,
        };
    }
    let workload: WorkloadSpec = (**base).clone().with_chaos(plan);
    let spec = workload.session_spec(scheduler, case.chunk_kb, case.seed);

    // The whole run sits inside a panic trap: under chaos, "no panics"
    // is itself one of the invariants under test.
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut warmed = SessionHost::new(workload.service.clone());
        let batch = warmed
            .run_batch(&[case.seed], &spec)
            .map_err(|e| format!("setup: {e}"))?;
        let fresh = SessionHost::new(workload.service.clone())
            .run(&spec)
            .map_err(|e| format!("setup: {e}"))?;
        Ok::<(SessionMetrics, SessionMetrics), String>((
            batch.into_iter().next().expect("one seed in, one out"),
            fresh,
        ))
    }));
    match run {
        Ok(Ok((batch, fresh))) => {
            let mut violations: Vec<String> =
                oracle(&fresh).into_iter().map(|v| v.to_string()).collect();
            if batch != fresh {
                violations.push(
                    "batch-equivalence: batch run diverged from a fresh-host run".to_string(),
                );
            }
            CaseOutcome {
                fingerprint: Some(Fingerprint::of(&fresh)),
                violations,
            }
        }
        Ok(Err(setup)) => CaseOutcome {
            violations: vec![setup],
            fingerprint: None,
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            CaseOutcome {
                violations: vec![format!("no-panics: session paniced: {msg}")],
                fingerprint: None,
            }
        }
    }
}

/// Configuration of one explorer sweep.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Seeds per (plan, workload) grid point.
    pub seeds_per_point: u64,
    /// Plans to sweep: preset names or raw plan strings.
    pub plans: Vec<String>,
    /// Base workload names to sweep (must exist in the registry).
    pub workloads: Vec<String>,
    /// Record violating cases into [`corpus_dir`]?
    pub record: bool,
    /// Seed-rotation window (see [`explorer_seed_with_window`]); window 0
    /// is the historical enumeration.
    pub window: u64,
}

impl ExploreConfig {
    /// A small default sweep: every preset × a spread of builtin
    /// workloads, `seeds_per_point` seeds each.
    pub fn smoke(seeds_per_point: u64) -> ExploreConfig {
        ExploreConfig {
            seeds_per_point,
            plans: ChaosPlan::preset_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            workloads: vec![
                "testbed/MSPlayer".into(),
                "youtube/MSPlayer".into(),
                "testbed3/MSPlayer".into(),
                "storm/mobility".into(),
                "abr/closed-loop".into(),
            ],
            record: false,
            window: 0,
        }
    }
}

/// Per-plan tallies of one explorer sweep, derived from the telemetry
/// registry (`msp_chaos_cases_total{plan=...}` /
/// `msp_chaos_violations_total{plan=...}`) rather than hand-rolled
/// counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanTally {
    /// The plan preset (or raw plan string) of the grid column.
    pub plan: String,
    /// Cases executed for this plan.
    pub cases: u64,
    /// Cases that violated an invariant.
    pub violations: u64,
}

/// The result of one explorer sweep.
#[derive(Clone, Debug)]
pub struct ExploreSummary {
    /// Seed-rotation window the sweep ran in.
    pub window: u64,
    /// Grid points skipped because the plan does not validate against
    /// the workload's path set (e.g. `path=1` on a 1-path workload).
    pub skipped_points: u64,
    /// Cases executed.
    pub cases_run: u64,
    /// The violating cases, in discovery order.
    pub violating: Vec<ChaosCase>,
    /// Violating case files written (empty unless recording).
    pub recorded: Vec<PathBuf>,
    /// Per-plan case/violation tallies, read back from the telemetry
    /// registry after the sweep.
    pub per_plan: Vec<PlanTally>,
}

impl ExploreSummary {
    /// Renders the sweep summary as a JSON value (written as
    /// `CHAOS_summary.json` by the explorer binary and the CI smoke job).
    pub fn to_json(&self) -> Value {
        let violating: Vec<Value> = self.violating.iter().map(ChaosCase::to_json).collect();
        let per_plan: Vec<Value> = self
            .per_plan
            .iter()
            .map(|t| {
                Value::object()
                    .with("plan", t.plan.as_str())
                    .with("cases", t.cases)
                    .with("violations", t.violations)
            })
            .collect();
        Value::object()
            .with("seed_window", self.window)
            .with("skipped_points", self.skipped_points)
            .with("cases_run", self.cases_run)
            .with("per_plan", Value::Array(per_plan))
            .with("violations", self.violating.len() as u64)
            .with("violating_cases", Value::Array(violating))
    }
}

/// Sweeps `cfg.seeds_per_point` deterministic seeds against the
/// plan × workload grid, collecting (and optionally recording) every
/// violating triple. Grid order is workloads → plans → seeds, so the
/// case stream — and therefore the verdict stream — is reproducible.
///
/// Stops between cases when a shutdown was requested (see
/// [`msim_testbed::signal`]), returning the partial summary so the
/// caller can still flush its artifacts.
pub fn explore(registry: &WorkloadRegistry, cfg: &ExploreConfig) -> ExploreSummary {
    let mut summary = ExploreSummary {
        window: cfg.window,
        skipped_points: 0,
        cases_run: 0,
        violating: Vec::new(),
        recorded: Vec::new(),
        per_plan: Vec::new(),
    };
    // The per-plan tallies flow through the telemetry registry instead of
    // ad-hoc counters: count during the sweep, read the deltas back at
    // the end. A live /metrics scrape of a long explorer run sees them
    // move.
    use msim_core::telemetry;
    let tel_was = telemetry::enabled();
    telemetry::set_enabled(true);
    let counters_before = telemetry::counter_values();
    let mut iteration: u64 = 0;
    'grid: for workload_name in &cfg.workloads {
        let Some(base) = registry.by_name(workload_name) else {
            summary.skipped_points += cfg.plans.len() as u64;
            continue;
        };
        for plan_text in &cfg.plans {
            let Ok(plan) = ChaosPlan::preset(plan_text) else {
                summary.skipped_points += 1;
                continue;
            };
            if plan.validate(base.paths.len()).is_err() {
                summary.skipped_points += 1;
                continue;
            }
            for i in 0..cfg.seeds_per_point {
                if msim_testbed::shutdown_requested() {
                    break 'grid;
                }
                let case = ChaosCase {
                    workload: workload_name.clone(),
                    scheduler: base.schedulers[0].name().to_string(),
                    chunk_kb: base.chunk_kb[0],
                    seed: explorer_seed_with_window(
                        cfg.window,
                        iteration.wrapping_mul(0x10001).wrapping_add(i),
                    ),
                    plan: plan.to_string(),
                    recorded_violations: Vec::new(),
                };
                let outcome = run_case(&case, registry);
                summary.cases_run += 1;
                telemetry::count_with("msp_chaos_cases_total", &[("plan", plan_text)], 1);
                if !outcome.ok() {
                    telemetry::count_with("msp_chaos_violations_total", &[("plan", plan_text)], 1);
                    let mut found = case;
                    found.recorded_violations = outcome.violations;
                    if cfg.record {
                        if let Ok(path) = record_case(&found, &corpus_dir()) {
                            summary.recorded.push(path);
                        }
                    }
                    summary.violating.push(found);
                }
            }
            iteration += 1;
        }
    }
    summary.per_plan = plan_tallies(&telemetry::counter_deltas(&counters_before), &cfg.plans);
    telemetry::set_enabled(tel_was);
    summary
}

/// Extracts per-plan tallies from registry counter deltas, in `plans`
/// order (plans that never ran get zero rows only if another metric
/// mentioned them — i.e. they are simply absent).
fn plan_tallies(deltas: &[(String, u64)], plans: &[String]) -> Vec<PlanTally> {
    let mut tallies: Vec<PlanTally> = Vec::new();
    for (key, delta) in deltas {
        // Keys are exposition-format sample names; reuse the exposition
        // parser rather than hand-parsing label syntax.
        let Ok(Some(line)) = msim_core::telemetry::parse_exposition_line(&format!("{key} 0"))
        else {
            continue;
        };
        let is_cases = line.name == "msp_chaos_cases_total";
        let is_violations = line.name == "msp_chaos_violations_total";
        if !is_cases && !is_violations {
            continue;
        }
        let Some(plan) = line
            .labels
            .iter()
            .find(|(k, _)| k == "plan")
            .map(|(_, v)| v.clone())
        else {
            continue;
        };
        let tally = match tallies.iter_mut().find(|t| t.plan == plan) {
            Some(t) => t,
            None => {
                tallies.push(PlanTally {
                    plan,
                    ..PlanTally::default()
                });
                tallies.last_mut().expect("just pushed")
            }
        };
        if is_cases {
            tally.cases += delta;
        } else {
            tally.violations += delta;
        }
    }
    // Deterministic order: follow the configured plan list, then any
    // stragglers (raw plan strings) in discovery order.
    tallies.sort_by_key(|t| {
        plans
            .iter()
            .position(|p| p == &t.plan)
            .unwrap_or(usize::MAX)
    });
    tallies
}

/// The committed corpus directory: `tests/chaos_corpus/` at the
/// workspace root.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("chaos_corpus")
}

/// Writes one case into `dir` under its deterministic filename.
pub fn record_case(case: &ChaosCase, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(case.file_name());
    std::fs::write(&path, msim_json::to_string_pretty(&case.to_json()))?;
    Ok(path)
}

/// Loads every `*.json` case in `dir`, sorted by filename (deterministic
/// replay order). A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, ChaosCase)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = msim_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = ChaosCase::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> WorkloadRegistry {
        WorkloadRegistry::builtin(1)
    }

    fn pin_case() -> ChaosCase {
        ChaosCase {
            workload: "testbed/MSPlayer".into(),
            scheduler: "Harmonic".into(),
            chunk_kb: 256,
            seed: 33,
            plan: "kitchen-sink".into(),
            recorded_violations: Vec::new(),
        }
    }

    #[test]
    fn case_json_roundtrip() {
        let mut case = pin_case();
        case.recorded_violations = vec!["finite-metrics: goodput is NaN".into()];
        let back = ChaosCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case);
        // Filenames are deterministic and seed-sensitive.
        assert_eq!(case.file_name(), back.file_name());
        let mut other = case.clone();
        other.seed += 1;
        assert_ne!(case.file_name(), other.file_name());
    }

    #[test]
    fn same_seed_same_verdict() {
        let reg = registry();
        let case = pin_case();
        let a = run_case(&case, &reg);
        let b = run_case(&case, &reg);
        assert!(a.ok(), "pin case must hold invariants: {:?}", a.violations);
        assert_eq!(a.fingerprint, b.fingerprint, "verdicts must be stable");
    }

    #[test]
    fn setup_errors_are_reported_not_panics() {
        let reg = registry();
        let mut unknown = pin_case();
        unknown.workload = "no/such-workload".into();
        assert!(run_case(&unknown, &reg).violations[0].starts_with("setup:"));
        let mut bad_plan = pin_case();
        bad_plan.plan = "warp-drive:11".into();
        assert!(run_case(&bad_plan, &reg).violations[0].starts_with("setup:"));
        let mut bad_path = pin_case();
        bad_path.workload = "testbed/WiFi".into(); // 1 path
        bad_path.scheduler = "Fixed".into();
        bad_path.plan = "outage:path=1,dir=up,from=1s,until=2s".into();
        assert!(run_case(&bad_path, &reg).violations[0].starts_with("setup:"));
    }

    #[test]
    fn explorer_is_deterministic_and_skips_invalid_points() {
        let reg = registry();
        let cfg = ExploreConfig {
            seeds_per_point: 2,
            plans: vec![
                "clock-skew".into(),
                // path=2 is invalid for the 2-path workload → skipped.
                "outage:path=2,dir=up,from=1s,until=2s".into(),
            ],
            workloads: vec!["testbed/MSPlayer".into()],
            record: false,
            window: 0,
        };
        let a = explore(&reg, &cfg);
        let b = explore(&reg, &cfg);
        assert_eq!(a.cases_run, 2);
        assert_eq!(a.skipped_points, 1);
        assert_eq!(a.violating, b.violating);
        assert!(a.violating.is_empty(), "{:?}", a.violating);
        // Per-plan tallies come back out of the telemetry registry. ≥
        // rather than ==: the registry is process-global and sibling
        // tests may run explorer sweeps concurrently.
        let clock = a
            .per_plan
            .iter()
            .find(|t| t.plan == "clock-skew")
            .expect("registry tally for the ran plan");
        assert!(clock.cases >= 2, "{clock:?}");
        assert!(
            a.per_plan.iter().all(|t| t.violations <= t.cases),
            "{:?}",
            a.per_plan
        );
    }

    #[test]
    fn seed_windows_rotate_without_breaking_window_zero() {
        // Window 0 is the historical enumeration, bit for bit.
        for i in [0u64, 1, 7, 1000] {
            assert_eq!(explorer_seed(i), explorer_seed_with_window(0, i));
        }
        // Distinct windows enumerate disjoint seeds for the same index,
        // and each window is internally deterministic.
        assert_ne!(
            explorer_seed_with_window(1, 0),
            explorer_seed_with_window(2, 0)
        );
        assert_ne!(explorer_seed_with_window(20_000, 3), explorer_seed(3));
        assert_eq!(
            explorer_seed_with_window(20_000, 3),
            explorer_seed_with_window(20_000, 3)
        );
    }

    #[test]
    fn unknown_workload_errors_name_the_registry() {
        let reg = registry();
        let mut unknown = pin_case();
        unknown.workload = "no/such-workload".into();
        let msg = &run_case(&unknown, &reg).violations[0];
        assert!(msg.starts_with("setup:"), "{msg}");
        assert!(
            msg.contains("testbed/MSPlayer"),
            "error must list registry names: {msg}"
        );
    }
}
