//! Deterministic parallel sweep engine.
//!
//! Every figure in the paper is a sweep over (environment × competitor ×
//! scheduler × seed) cells, each cell one [`run_session`] call. The seed
//! harness ran them strictly serially; this module fans the cells across a
//! **work-stealing thread pool** (std threads only — no external deps) and
//! merges results **in cell order**, so the output is bit-for-bit identical
//! to the serial runner no matter how the OS schedules the workers
//! (asserted by `tests/sweep_determinism.rs`).
//!
//! * Thread count: `MSP_THREADS` env var, else
//!   [`std::thread::available_parallelism`].
//! * Each run can emit a machine-readable `BENCH_<name>.json` (wall time,
//!   sessions/sec, events/sec) via [`write_bench_json`], giving the repo a
//!   recorded perf trajectory.

use crate::{commercial, msplayer, scenario_for, Competitor, Env};
use msplayer_core::config::SchedulerKind;
use msplayer_core::metrics::SessionMetrics;
use msplayer_core::sim::{run_session, StopCondition};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One sweep cell: a fully determined session to run.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Environment (testbed / YouTube profile).
    pub env: Env,
    /// Who streams.
    pub competitor: Competitor,
    /// Scheduler under test (meaningful for MSPlayer; single-path
    /// competitors use their commercial profile).
    pub scheduler: SchedulerKind,
    /// Initial/base chunk size in KB.
    pub chunk_kb: u64,
    /// Pre-buffering target in seconds.
    pub prebuffer_secs: f64,
    /// Session seed.
    pub seed: u64,
}

impl Cell {
    /// Runs this cell's session to completion.
    pub fn run(&self) -> CellResult {
        let player = match self.competitor {
            Competitor::MsPlayer => msplayer(self.scheduler, self.chunk_kb),
            _ => commercial(self.chunk_kb),
        }
        .with_prebuffer_secs(self.prebuffer_secs);
        let mut scenario = scenario_for(self.env, self.competitor, self.seed, player);
        scenario.stop = StopCondition::PrebufferDone;
        CellResult {
            cell: self.clone(),
            metrics: run_session(&scenario),
        }
    }
}

/// A cell together with its complete session metrics.
///
/// `PartialEq` compares *everything* (chunk records, f64 goodputs, event
/// counts), which is what lets the determinism tests assert bit-identical
/// parallel/serial output.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: Cell,
    /// Full session metrics.
    pub metrics: SessionMetrics,
}

/// A sweep specification, expanded to cells in a fixed nested order
/// (env → competitor → scheduler → seed).
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Environments to sweep.
    pub envs: Vec<Env>,
    /// Competitors to sweep.
    pub competitors: Vec<Competitor>,
    /// Schedulers to sweep (applied to MSPlayer cells only; single-path
    /// competitors get one cell per (env, chunk) regardless).
    pub schedulers: Vec<SchedulerKind>,
    /// Initial chunk sizes (KB) to sweep.
    pub chunk_kb: Vec<u64>,
    /// Pre-buffering target.
    pub prebuffer_secs: f64,
    /// Seeded repetitions per configuration.
    pub runs: u64,
}

impl SweepSpec {
    /// The Fig. 3-style sweep: MSPlayer on the emulated testbed across the
    /// three schedulers and four initial chunk sizes, `runs` seeds per
    /// cell.
    pub fn fig3(runs: u64) -> SweepSpec {
        SweepSpec {
            envs: vec![Env::Testbed],
            competitors: vec![Competitor::MsPlayer],
            schedulers: vec![
                SchedulerKind::Harmonic,
                SchedulerKind::Ewma,
                SchedulerKind::Ratio,
            ],
            chunk_kb: vec![16, 64, 256, 1024],
            prebuffer_secs: 40.0,
            runs,
        }
    }

    /// Expands the spec to its cell list (deterministic order).
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &env in &self.envs {
            for &competitor in &self.competitors {
                let schedulers: &[SchedulerKind] = match competitor {
                    Competitor::MsPlayer => &self.schedulers,
                    _ => &[SchedulerKind::Fixed],
                };
                for &scheduler in schedulers {
                    for &chunk_kb in &self.chunk_kb {
                        for run in 0..self.runs {
                            let seed = crate::BASE_SEED ^ (run.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                            out.push(Cell {
                                env,
                                competitor,
                                scheduler,
                                chunk_kb,
                                prebuffer_secs: self.prebuffer_secs,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Worker count: `MSP_THREADS` env var, else the machine's available
/// parallelism, else 1.
pub fn threads() -> usize {
    std::env::var("MSP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs every cell on the calling thread, in order.
pub fn run_serial(cells: &[Cell]) -> Vec<CellResult> {
    cells.iter().map(Cell::run).collect()
}

/// Runs the cells across `n_threads` workers with work stealing, returning
/// results **in cell order** — bit-for-bit identical to [`run_serial`].
///
/// Cells are dealt round-robin into per-worker deques; a worker pops from
/// the front of its own deque and, when empty, steals from the *back* of
/// the busiest sibling. Each result is tagged with its cell index, so the
/// merge is a deterministic scatter regardless of which worker ran what.
pub fn run_parallel(cells: &[Cell], n_threads: usize) -> Vec<CellResult> {
    let n_threads = n_threads.max(1).min(cells.len().max(1));
    if n_threads <= 1 || cells.len() <= 1 {
        return run_serial(cells);
    }

    // Per-worker deques, dealt round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..n_threads)
        .map(|w| {
            Mutex::new(
                (0..cells.len())
                    .filter(|i| i % n_threads == w)
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();

    let mut slots: Vec<Option<CellResult>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    let mut tagged: Vec<Vec<(usize, CellResult)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..n_threads {
            let queues = &queues;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, CellResult)> = Vec::new();
                loop {
                    // Own queue first.
                    let mine = queues[w].lock().expect("queue poisoned").pop_front();
                    let idx = match mine {
                        Some(i) => i,
                        None => {
                            // Steal from the back of each sibling in turn.
                            // Queues only ever shrink after the deal, so a
                            // full scan finding them all empty means the
                            // work is genuinely drained (cells already
                            // claimed are running on their owners).
                            let stolen = (0..queues.len())
                                .filter(|&v| v != w)
                                .find_map(|v| queues[v].lock().expect("queue poisoned").pop_back());
                            match stolen {
                                Some(i) => i,
                                None => break, // everything drained
                            }
                        }
                    };
                    done.push((idx, cells[idx].run()));
                }
                done
            }));
        }
        for h in handles {
            tagged.push(h.join().expect("sweep worker panicked"));
        }
    });

    for (idx, result) in tagged.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "cell {idx} ran twice");
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} never ran")))
        .collect()
}

/// Timing + throughput summary of one sweep execution.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Label, used in the output filename (`BENCH_<name>.json`).
    pub name: String,
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Number of cells (sessions) executed.
    pub sessions: u64,
    /// Total simulator events processed across all sessions.
    pub events: u64,
    /// Wall-clock duration of the sweep.
    pub wall_secs: f64,
    /// Serial wall-clock reference, when measured alongside.
    pub serial_wall_secs: Option<f64>,
}

impl BenchReport {
    /// Builds a report by timing `f`.
    pub fn measure<F>(name: &str, threads: usize, f: F) -> (BenchReport, Vec<CellResult>)
    where
        F: FnOnce() -> Vec<CellResult>,
    {
        let t0 = Instant::now();
        let results = f();
        let wall = t0.elapsed().as_secs_f64();
        let report = BenchReport {
            name: name.to_string(),
            threads,
            sessions: results.len() as u64,
            events: results.iter().map(|r| r.metrics.events).sum(),
            wall_secs: wall,
            serial_wall_secs: None,
        };
        (report, results)
    }

    /// Sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / self.wall_secs.max(1e-12)
    }

    /// Simulator events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-12)
    }

    /// Speedup over the serial reference, when one was recorded.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_wall_secs.map(|s| s / self.wall_secs.max(1e-12))
    }

    /// Renders the report as a JSON value.
    pub fn to_json(&self) -> msim_json::Value {
        let mut v = msim_json::Value::object()
            .with("name", self.name.as_str())
            .with("threads", self.threads as u64)
            .with("sessions", self.sessions)
            .with("events", self.events)
            .with("wall_secs", self.wall_secs)
            .with("sessions_per_sec", self.sessions_per_sec())
            .with("events_per_sec", self.events_per_sec());
        if let Some(s) = self.serial_wall_secs {
            v = v.with("serial_wall_secs", s);
            if let Some(x) = self.speedup() {
                v = v.with("speedup", x);
            }
        }
        v
    }
}

/// Directory for bench JSON artifacts: `MSP_BENCH_DIR`, else
/// `target/bench/` under the workspace root.
pub fn bench_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("MSP_BENCH_DIR") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        return dir;
    }
    let mut base = std::env::current_dir().unwrap_or_else(|_| ".".into());
    for _ in 0..4 {
        if base.join("target").is_dir() && base.join("Cargo.toml").is_file() {
            break;
        }
        if let Some(parent) = base.parent() {
            base = parent.to_path_buf();
        }
    }
    let dir = base.join("target").join("bench");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes `BENCH_<report.name>.json` into [`bench_dir`], returning the
/// path.
pub fn write_bench_json(report: &BenchReport) -> std::io::Result<std::path::PathBuf> {
    let path = bench_dir().join(format!("BENCH_{}.json", report.name));
    std::fs::write(&path, msim_json::to_string_pretty(&report.to_json()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            envs: vec![Env::Testbed],
            competitors: vec![Competitor::MsPlayer, Competitor::WifiOnly],
            schedulers: vec![SchedulerKind::Harmonic, SchedulerKind::Ratio],
            chunk_kb: vec![256],
            prebuffer_secs: 10.0,
            runs: 2,
        }
    }

    #[test]
    fn expansion_order_is_stable() {
        let spec = tiny_spec();
        let a = spec.cells();
        let b = spec.cells();
        assert_eq!(a, b);
        // MSPlayer × 2 schedulers × 2 seeds + WifiOnly × 1 × 2 seeds.
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].scheduler, SchedulerKind::Harmonic);
        assert_eq!(a[4].competitor, Competitor::WifiOnly);
    }

    #[test]
    fn parallel_merge_is_cell_ordered() {
        let cells = tiny_spec().cells();
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn single_thread_parallel_equals_serial() {
        let cells = tiny_spec().cells();
        assert_eq!(run_serial(&cells), run_parallel(&cells, 1));
    }

    #[test]
    fn bench_report_math() {
        let r = BenchReport {
            name: "t".into(),
            threads: 2,
            sessions: 10,
            events: 1000,
            wall_secs: 2.0,
            serial_wall_secs: Some(4.0),
        };
        assert_eq!(r.sessions_per_sec(), 5.0);
        assert_eq!(r.events_per_sec(), 500.0);
        assert_eq!(r.speedup(), Some(2.0));
        let json = msim_json::to_string(&r.to_json());
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"events_per_sec\""));
    }
}
