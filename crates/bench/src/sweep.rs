//! Deterministic parallel sweep engine.
//!
//! Every figure in the paper is a sweep over workload cells, each cell one
//! session. Cells are enumerated from [`WorkloadSpec`]s (open registry —
//! see [`crate::workload`]); the engine fans them across a **work-stealing
//! thread pool** (std threads only — no external deps) and merges results
//! **in cell order**, so the output is bit-for-bit identical to the serial
//! runner no matter how the OS schedules the workers (asserted by
//! `tests/sweep_determinism.rs`).
//!
//! Cells that share a workload also share a warmed [`SessionHost`] per
//! worker, so the per-session control-plane bootstrap is paid once per
//! (worker, workload) instead of once per cell — without affecting results,
//! since a host batch is bit-identical to independent sessions.
//!
//! * Thread count: `MSP_THREADS` env var, else
//!   [`std::thread::available_parallelism`].
//! * Each run can emit a machine-readable `BENCH_<name>.json` (wall time,
//!   sessions/sec, events/sec, per-cell-kind wall-time percentiles) via
//!   [`write_bench_json`], giving the repo a recorded perf trajectory.

use crate::workload::WorkloadSpec;
use crate::{Competitor, Env};
use msplayer_core::config::SchedulerKind;
use msplayer_core::metrics::SessionMetrics;
use msplayer_core::sim::SessionHost;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One sweep cell: a fully determined session to run.
///
/// The workload handle carries the path set, service profile, player
/// family, and stop condition; the cell pins one (scheduler, chunk, seed)
/// point of the workload's grid.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The workload this cell belongs to.
    pub workload: Arc<WorkloadSpec>,
    /// Scheduler under test (single-path commercial workloads pin
    /// `Fixed`).
    pub scheduler: SchedulerKind,
    /// Initial/base chunk size in KB.
    pub chunk_kb: u64,
    /// Session seed.
    pub seed: u64,
    /// Interned kind label, shared by every cell of the same
    /// (workload, scheduler) group — [`Cell::kind`] hands out `&str`
    /// without allocating per cell.
    kind: Arc<str>,
}

/// Cells compare by their determining parameters (workload name + grid
/// point) — two cells with equal parameters run identical sessions.
impl PartialEq for Cell {
    fn eq(&self, other: &Cell) -> bool {
        self.workload.name == other.workload.name
            && self.scheduler == other.scheduler
            && self.chunk_kb == other.chunk_kb
            && self.seed == other.seed
    }
}

impl Cell {
    /// Builds a cell, interning its kind label. Cells created through
    /// [`expand_workload`] share one label allocation per
    /// (workload, scheduler) group.
    pub fn new(
        workload: Arc<WorkloadSpec>,
        scheduler: SchedulerKind,
        chunk_kb: u64,
        seed: u64,
    ) -> Cell {
        let kind: Arc<str> = kind_label(&workload, scheduler).into();
        Cell {
            workload,
            scheduler,
            chunk_kb,
            seed,
            kind,
        }
    }

    /// The cell's kind label (`<workload>/<scheduler>`): the grouping key
    /// for the per-kind timing percentiles in `BENCH_*.json`. Borrowed
    /// from the interned label — no allocation per call.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Runs this cell's session on a one-shot host. Prefer
    /// [`Cell::run_on`] with a [`HostCache`] when running many cells.
    pub fn run(&self) -> CellResult {
        let mut host = SessionHost::new(self.workload.service.clone());
        self.run_on(&mut host)
    }

    /// Runs this cell's session over an already-warmed host (which must
    /// have been built from this cell's workload service spec).
    pub fn run_on(&self, host: &mut SessionHost) -> CellResult {
        let spec = self
            .workload
            .session_spec(self.scheduler, self.chunk_kb, self.seed);
        let t0 = Instant::now();
        let metrics = host.run(&spec).expect("registered workloads validate");
        CellResult {
            cell: self.clone(),
            outcome: CellOutcome::Done(Box::new(metrics)),
            wall_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// The one-line `sweep` case-mode invocation reproducing this cell —
    /// attached to watchdog rows so a timed-out cell is immediately
    /// re-runnable in isolation.
    pub fn repro(&self) -> String {
        format!(
            "sweep --workload {:?} --scheduler {} --chunk-kb {} --seed {}",
            self.workload.name,
            self.scheduler.name(),
            self.chunk_kb,
            self.seed
        )
    }
}

/// The kind label of a (workload, scheduler) cell group.
fn kind_label(workload: &WorkloadSpec, scheduler: SchedulerKind) -> String {
    format!("{}/{}", workload.name, scheduler.name())
}

/// Expands one workload into its cell list (scheduler → chunk → seed, all
/// deterministic). The kind label is interned once per scheduler group and
/// shared by its cells.
pub fn expand_workload(workload: &Arc<WorkloadSpec>) -> Vec<Cell> {
    let mut out = Vec::new();
    for &scheduler in &workload.schedulers {
        let kind: Arc<str> = kind_label(workload, scheduler).into();
        for &chunk_kb in &workload.chunk_kb {
            for run in 0..workload.runs {
                out.push(Cell {
                    workload: Arc::clone(workload),
                    scheduler,
                    chunk_kb,
                    seed: workload.seed(run),
                    kind: Arc::clone(&kind),
                });
            }
        }
    }
    out
}

/// What running one cell produced: a completed session, or a typed
/// watchdog row when the cell blew its wall-time budget.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The session ran to completion. Boxed: full session metrics dwarf
    /// the timeout variant, and sweeps hold thousands of these.
    Done(Box<SessionMetrics>),
    /// The cell exceeded the sweep's per-cell wall-time budget (see
    /// [`SweepOptions::cell_budget`]). The sweep keeps going; the row
    /// carries the one-line repro so the hang is reproducible in
    /// isolation.
    TimedOut {
        /// The budget that was exceeded, in seconds.
        budget_secs: f64,
        /// One-line `sweep` case-mode invocation reproducing the cell.
        repro: String,
    },
}

/// A cell together with its complete session metrics.
///
/// Equality compares the cell parameters and *everything* in the outcome
/// (chunk records, f64 goodputs, event counts) — which is what lets the
/// determinism tests assert bit-identical parallel/serial output. The
/// measured wall time is deliberately excluded: it is a property of the
/// execution, not of the session.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: Cell,
    /// Completed metrics, or the typed watchdog row.
    pub outcome: CellOutcome,
    /// Wall-clock seconds this cell's session took to execute (the
    /// budget, for timed-out cells).
    pub wall_secs: f64,
}

impl CellResult {
    /// The session metrics, when the cell completed.
    pub fn metrics(&self) -> Option<&SessionMetrics> {
        match &self.outcome {
            CellOutcome::Done(m) => Some(m.as_ref()),
            CellOutcome::TimedOut { .. } => None,
        }
    }

    /// The session metrics; panics on a watchdog row. For call sites that
    /// run without a cell budget (where a timeout is impossible).
    pub fn expect_metrics(&self) -> &SessionMetrics {
        match &self.outcome {
            CellOutcome::Done(m) => m.as_ref(),
            CellOutcome::TimedOut { repro, .. } => {
                panic!("cell timed out under the watchdog (repro: {repro})")
            }
        }
    }

    /// Did the watchdog cut this cell short?
    pub fn timed_out(&self) -> bool {
        matches!(self.outcome, CellOutcome::TimedOut { .. })
    }
}

impl PartialEq for CellResult {
    fn eq(&self, other: &CellResult) -> bool {
        self.cell == other.cell && self.outcome == other.outcome
    }
}

/// Execution options for a sweep run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Per-cell wall-time budget. A cell still running past the budget is
    /// abandoned and reported as [`CellOutcome::TimedOut`] instead of
    /// hanging the whole sweep; the sweep continues on a fresh runner.
    /// `None` (the default) preserves the historical run-to-completion
    /// behaviour with zero overhead.
    pub cell_budget: Option<Duration>,
}

impl SweepOptions {
    /// Options from the environment: `MSP_CELL_BUDGET_SECS` (fractional
    /// seconds; unset or 0 disables the watchdog).
    pub fn from_env() -> SweepOptions {
        let cell_budget = std::env::var("MSP_CELL_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|&s| s > 0.0)
            .map(Duration::from_secs_f64);
        SweepOptions { cell_budget }
    }
}

/// A watchdog-guarded cell runner: cells execute on a helper thread that
/// owns its [`HostCache`]; if one exceeds the budget, the thread is
/// abandoned (it parks on a dead channel when the hung session ever
/// finishes) and a fresh runner takes over for the next cell.
struct WatchdogRunner {
    budget: Duration,
    lane: Option<RunnerLane>,
}

struct RunnerLane {
    tx: mpsc::Sender<Cell>,
    rx: mpsc::Receiver<CellResult>,
}

impl WatchdogRunner {
    fn new(budget: Duration) -> WatchdogRunner {
        WatchdogRunner { budget, lane: None }
    }

    fn lane(&mut self) -> &RunnerLane {
        if self.lane.is_none() {
            let (cell_tx, cell_rx) = mpsc::channel::<Cell>();
            let (result_tx, result_rx) = mpsc::channel::<CellResult>();
            std::thread::spawn(move || {
                let mut hosts = HostCache::new();
                while let Ok(cell) = cell_rx.recv() {
                    let result = cell.run_on(hosts.host_for(&cell.workload));
                    if result_tx.send(result).is_err() {
                        // The sweep abandoned this lane mid-cell (watchdog
                        // fired); drop the stale result and retire.
                        return;
                    }
                }
            });
            self.lane = Some(RunnerLane {
                tx: cell_tx,
                rx: result_rx,
            });
        }
        self.lane.as_ref().expect("just installed")
    }

    fn run(&mut self, cell: &Cell) -> CellResult {
        let budget = self.budget;
        let lane = self.lane();
        if lane.tx.send(cell.clone()).is_err() {
            // Lane thread died (a previous hung cell panicked after
            // abandonment); replace it and retry once.
            self.lane = None;
            let lane = self.lane();
            lane.tx.send(cell.clone()).expect("fresh lane accepts work");
        }
        let lane = self.lane.as_ref().expect("lane exists");
        let t0 = Instant::now();
        // The budget is a contract on elapsed wall time, not on channel
        // luck: a result that arrives after the deadline (possible when
        // this thread was descheduled between send and receive — the
        // queued message would otherwise win over the timeout) is still
        // a timeout. That keeps TimedOut independent of scheduler noise.
        if let Ok(result) = lane.rx.recv_timeout(budget) {
            if t0.elapsed() <= budget {
                return result;
            }
        }
        // Budget blown (or lane lost): abandon the lane — its host
        // cache goes with it — and emit the typed row.
        self.lane = None;
        CellResult {
            cell: cell.clone(),
            outcome: CellOutcome::TimedOut {
                budget_secs: budget.as_secs_f64(),
                repro: cell.repro(),
            },
            wall_secs: budget.as_secs_f64(),
        }
    }
}

/// A sweep specification over the historical closed enums, expanded to
/// cells in a fixed nested order (env → competitor → scheduler → seed).
///
/// Compatibility shell: [`SweepSpec::cells`] maps each (env, competitor)
/// pair onto a [`WorkloadSpec`] via
/// [`WorkloadSpec::from_env_competitor`] and enumerates those — seeds and
/// session shapes are unchanged. New scenarios should register
/// [`WorkloadSpec`]s directly instead of growing these enums.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Environments to sweep.
    pub envs: Vec<Env>,
    /// Competitors to sweep.
    pub competitors: Vec<Competitor>,
    /// Schedulers to sweep (applied to MSPlayer cells only; single-path
    /// competitors get one cell per (env, chunk) regardless).
    pub schedulers: Vec<SchedulerKind>,
    /// Initial chunk sizes (KB) to sweep.
    pub chunk_kb: Vec<u64>,
    /// Pre-buffering target.
    pub prebuffer_secs: f64,
    /// Seeded repetitions per configuration.
    pub runs: u64,
}

impl SweepSpec {
    /// The Fig. 3-style sweep: MSPlayer on the emulated testbed across the
    /// three schedulers and four initial chunk sizes, `runs` seeds per
    /// cell.
    pub fn fig3(runs: u64) -> SweepSpec {
        SweepSpec {
            envs: vec![Env::Testbed],
            competitors: vec![Competitor::MsPlayer],
            schedulers: vec![
                SchedulerKind::Harmonic,
                SchedulerKind::Ewma,
                SchedulerKind::Ratio,
            ],
            chunk_kb: vec![16, 64, 256, 1024],
            prebuffer_secs: 40.0,
            runs,
        }
    }

    /// The workloads this spec describes, in expansion order.
    pub fn workloads(&self) -> Vec<Arc<WorkloadSpec>> {
        let mut out = Vec::new();
        for &env in &self.envs {
            for &competitor in &self.competitors {
                out.push(Arc::new(WorkloadSpec::from_env_competitor(
                    env,
                    competitor,
                    self.schedulers.clone(),
                    self.chunk_kb.clone(),
                    self.prebuffer_secs,
                    self.runs,
                )));
            }
        }
        out
    }

    /// Expands the spec to its cell list (deterministic order).
    pub fn cells(&self) -> Vec<Cell> {
        self.workloads().iter().flat_map(expand_workload).collect()
    }
}

/// Worker count: `MSP_THREADS` env var, else the machine's available
/// parallelism, else 1.
pub fn threads() -> usize {
    std::env::var("MSP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A per-worker cache of warmed [`SessionHost`]s, one per workload.
///
/// Keyed by the workload's `Arc` pointer: cells expanded from the same
/// registration share a host, cells from different registrations (even
/// with equal specs) get their own. The list stays tiny — a handful of
/// workloads per sweep — so a linear scan beats a hash map.
#[derive(Default)]
pub struct HostCache {
    hosts: Vec<(Arc<WorkloadSpec>, SessionHost)>,
}

impl HostCache {
    /// An empty cache.
    pub fn new() -> HostCache {
        HostCache::default()
    }

    /// The cached host for `workload`, building it on first use. The key
    /// `Arc` is retained by the cache, so its address can never be
    /// recycled for a different workload while the entry lives.
    pub fn host_for(&mut self, workload: &Arc<WorkloadSpec>) -> &mut SessionHost {
        if let Some(i) = self
            .hosts
            .iter()
            .position(|(k, _)| Arc::ptr_eq(k, workload))
        {
            return &mut self.hosts[i].1;
        }
        self.hosts.push((
            Arc::clone(workload),
            SessionHost::new(workload.service.clone()),
        ));
        &mut self.hosts.last_mut().expect("just pushed").1
    }
}

/// Per-thread cell executor: the direct host-cache path when no budget is
/// configured (zero overhead — the historical behaviour), the watchdog
/// lane otherwise.
enum CellExecutor {
    Direct(HostCache),
    Watchdog(WatchdogRunner),
}

impl CellExecutor {
    fn new(opts: &SweepOptions) -> CellExecutor {
        match opts.cell_budget {
            None => CellExecutor::Direct(HostCache::new()),
            Some(budget) => CellExecutor::Watchdog(WatchdogRunner::new(budget)),
        }
    }

    fn run(&mut self, cell: &Cell) -> CellResult {
        match self {
            CellExecutor::Direct(hosts) => cell.run_on(hosts.host_for(&cell.workload)),
            CellExecutor::Watchdog(runner) => runner.run(cell),
        }
    }
}

/// Runs every cell on the calling thread, in order, sharing hosts across
/// cells of the same workload.
pub fn run_serial(cells: &[Cell]) -> Vec<CellResult> {
    run_serial_with(cells, &SweepOptions::default())
}

/// [`run_serial`] with execution options (per-cell watchdog budget).
pub fn run_serial_with(cells: &[Cell], opts: &SweepOptions) -> Vec<CellResult> {
    let mut exec = CellExecutor::new(opts);
    cells.iter().map(|c| exec.run(c)).collect()
}

/// Runs the cells across `n_threads` workers with work stealing, returning
/// results **in cell order** — bit-for-bit identical to [`run_serial`].
///
/// Cells are dealt round-robin into per-worker deques; a worker pops from
/// the front of its own deque and, when empty, steals from the *back* of
/// the busiest sibling. Each result is tagged with its cell index, so the
/// merge is a deterministic scatter regardless of which worker ran what.
/// Every worker keeps its own [`HostCache`] — hosts are not shared across
/// threads, and host reuse cannot change results (bit-identical batch
/// guarantee).
pub fn run_parallel(cells: &[Cell], n_threads: usize) -> Vec<CellResult> {
    run_parallel_with(cells, n_threads, &SweepOptions::default())
}

/// [`run_parallel`] with execution options (per-cell watchdog budget —
/// each worker guards its own cells, so one hung cell stalls at most one
/// worker for one budget instead of wedging the pool).
pub fn run_parallel_with(cells: &[Cell], n_threads: usize, opts: &SweepOptions) -> Vec<CellResult> {
    let n_threads = n_threads.max(1).min(cells.len().max(1));
    if n_threads <= 1 || cells.len() <= 1 {
        return run_serial_with(cells, opts);
    }

    // Per-worker deques, dealt round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..n_threads)
        .map(|w| {
            Mutex::new(
                (0..cells.len())
                    .filter(|i| i % n_threads == w)
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();

    let mut slots: Vec<Option<CellResult>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    let mut tagged: Vec<Vec<(usize, CellResult)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..n_threads {
            let queues = &queues;
            let opts = *opts;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, CellResult)> = Vec::new();
                let mut exec = CellExecutor::new(&opts);
                loop {
                    // Own queue first.
                    let mine = queues[w].lock().expect("queue poisoned").pop_front();
                    let idx = match mine {
                        Some(i) => i,
                        None => {
                            // Steal from the back of each sibling in turn.
                            // Queues only ever shrink after the deal, so a
                            // full scan finding them all empty means the
                            // work is genuinely drained (cells already
                            // claimed are running on their owners).
                            let stolen = (0..queues.len())
                                .filter(|&v| v != w)
                                .find_map(|v| queues[v].lock().expect("queue poisoned").pop_back());
                            match stolen {
                                Some(i) => i,
                                None => break, // everything drained
                            }
                        }
                    };
                    done.push((idx, exec.run(&cells[idx])));
                }
                done
            }));
        }
        for h in handles {
            tagged.push(h.join().expect("sweep worker panicked"));
        }
    });

    for (idx, result) in tagged.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "cell {idx} ran twice");
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} never ran")))
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted sample, `q` in (0, 1].
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-cell-kind wall-time statistics (milliseconds), recorded in
/// `BENCH_*.json` so scheduler-level regressions are attributable to the
/// kind that slowed down.
#[derive(Clone, Debug, PartialEq)]
pub struct CellKindStats {
    /// The kind label (`<workload>/<scheduler>`).
    pub kind: String,
    /// Cells of this kind in the sweep.
    pub cells: u64,
    /// Median per-cell wall time, ms.
    pub p50_ms: f64,
    /// 95th-percentile per-cell wall time, ms.
    pub p95_ms: f64,
    /// 99th-percentile per-cell wall time, ms.
    pub p99_ms: f64,
    /// Total wall time spent in this kind, ms.
    pub total_ms: f64,
}

/// Groups results by cell kind and computes per-kind wall-time
/// percentiles. Output order follows first appearance in `results`
/// (deterministic, since results are merged in cell order).
pub fn cell_kind_stats(results: &[CellResult]) -> Vec<CellKindStats> {
    let mut order: Vec<String> = Vec::new();
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for r in results {
        let kind = r.cell.kind();
        let idx = match order.iter().position(|k| k == kind) {
            Some(i) => i,
            None => {
                order.push(kind.to_string());
                samples.push(Vec::new());
                order.len() - 1
            }
        };
        samples[idx].push(r.wall_secs * 1e3);
    }
    order
        .into_iter()
        .zip(samples)
        .map(|(kind, mut ms)| {
            let total_ms = ms.iter().sum();
            ms.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
            CellKindStats {
                kind,
                cells: ms.len() as u64,
                p50_ms: percentile_sorted(&ms, 0.50),
                p95_ms: percentile_sorted(&ms, 0.95),
                p99_ms: percentile_sorted(&ms, 0.99),
                total_ms,
            }
        })
        .collect()
}

/// One phase's share of a profiled pass: where the wall time went.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseProfile {
    /// Phase name as instrumented via [`msim_core::telemetry::span`]
    /// (e.g. `session.stream`).
    pub phase: String,
    /// Spans closed during the profiled pass.
    pub calls: u64,
    /// Wall nanoseconds inside the phase during the profiled pass.
    pub nanos: u64,
}

impl PhaseProfile {
    /// Wall milliseconds inside the phase.
    pub fn ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Runs every cell serially with telemetry spans enabled and attributes
/// the wall time to instrumented phases (span nanos/calls deltas across
/// the pass). This is a *separate* profiled pass: headline `BenchReport`
/// timings stay telemetry-disabled, so the span overhead — small but
/// nonzero — never contaminates the recorded throughput trajectory.
pub fn profile_phases(cells: &[Cell]) -> Vec<PhaseProfile> {
    let was = msim_core::telemetry::enabled();
    msim_core::telemetry::set_enabled(true);
    let before = msim_core::telemetry::phase_values();
    let _ = run_serial(cells);
    let after = msim_core::telemetry::phase_values();
    msim_core::telemetry::set_enabled(was);
    let prior = |name: &str| {
        before
            .iter()
            .find(|p| p.name == name)
            .map(|p| (p.nanos, p.calls))
            .unwrap_or((0, 0))
    };
    let mut out: Vec<PhaseProfile> = after
        .iter()
        .map(|p| {
            let (nanos0, calls0) = prior(&p.name);
            PhaseProfile {
                phase: p.name.clone(),
                calls: p.calls - calls0,
                nanos: p.nanos - nanos0,
            }
        })
        .filter(|p| p.calls > 0)
        .collect();
    out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.phase.cmp(&b.phase)));
    out
}

/// Timing + throughput summary of one sweep execution.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Label, used in the output filename (`BENCH_<name>.json`).
    pub name: String,
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Number of cells (sessions) executed.
    pub sessions: u64,
    /// Total simulator events processed across all sessions.
    pub events: u64,
    /// Wall-clock duration of the sweep.
    pub wall_secs: f64,
    /// Serial wall-clock reference, when measured alongside.
    pub serial_wall_secs: Option<f64>,
    /// Per-cell-kind wall-time percentiles.
    pub cell_kinds: Vec<CellKindStats>,
    /// Cells the watchdog cut short (0 without a cell budget).
    pub timed_out: u64,
    /// Per-phase wall-time attribution from the separate profiled pass
    /// (empty unless [`profile_phases`] was run and attached).
    pub phase_profile: Vec<PhaseProfile>,
}

impl BenchReport {
    /// Builds a report by timing `f`.
    ///
    /// Per-cell-kind percentiles are recorded for single-threaded runs
    /// only: under a thread pool, per-cell wall times are inflated by
    /// worker contention, which would poison the regression-attribution
    /// data the percentiles exist for.
    pub fn measure<F>(name: &str, threads: usize, f: F) -> (BenchReport, Vec<CellResult>)
    where
        F: FnOnce() -> Vec<CellResult>,
    {
        let t0 = Instant::now();
        let results = f();
        let wall = t0.elapsed().as_secs_f64();
        let report = BenchReport {
            name: name.to_string(),
            threads,
            sessions: results.len() as u64,
            events: results
                .iter()
                .filter_map(|r| r.metrics().map(|m| m.events))
                .sum(),
            wall_secs: wall,
            serial_wall_secs: None,
            cell_kinds: if threads <= 1 {
                cell_kind_stats(&results)
            } else {
                Vec::new()
            },
            timed_out: results.iter().filter(|r| r.timed_out()).count() as u64,
            phase_profile: Vec::new(),
        };
        (report, results)
    }

    /// Sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / self.wall_secs.max(1e-12)
    }

    /// Simulator events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-12)
    }

    /// Speedup over the serial reference, when one was recorded.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_wall_secs.map(|s| s / self.wall_secs.max(1e-12))
    }

    /// Renders the report as a JSON value. The pre-existing fields (name,
    /// threads, sessions, events, wall_secs, sessions_per_sec,
    /// events_per_sec, serial_wall_secs, speedup) are stable; `cell_kinds`
    /// extends the schema (present on single-threaded reports only — see
    /// [`BenchReport::measure`]), and `stream_epoch` records which
    /// deviate-stream definition ([`msim_core::rng::STREAM_EPOCH`]) the
    /// numbers were measured against, so `bench_report` can flag stale
    /// baselines.
    pub fn to_json(&self) -> msim_json::Value {
        let mut v = msim_json::Value::object()
            .with("name", self.name.as_str())
            .with("stream_epoch", msim_core::rng::STREAM_EPOCH as u64)
            .with("threads", self.threads as u64)
            .with("sessions", self.sessions)
            .with("events", self.events)
            .with("wall_secs", self.wall_secs)
            .with("sessions_per_sec", self.sessions_per_sec())
            .with("events_per_sec", self.events_per_sec());
        if let Some(s) = self.serial_wall_secs {
            v = v.with("serial_wall_secs", s);
            if let Some(x) = self.speedup() {
                v = v.with("speedup", x);
            }
        }
        if self.timed_out > 0 {
            v = v.with("timed_out", self.timed_out);
        }
        if !self.cell_kinds.is_empty() {
            let kinds: Vec<msim_json::Value> = self
                .cell_kinds
                .iter()
                .map(|k| {
                    msim_json::Value::object()
                        .with("kind", k.kind.as_str())
                        .with("cells", k.cells)
                        .with("p50_ms", k.p50_ms)
                        .with("p95_ms", k.p95_ms)
                        .with("p99_ms", k.p99_ms)
                        .with("total_ms", k.total_ms)
                })
                .collect();
            v = v.with("cell_kinds", msim_json::Value::Array(kinds));
        }
        if !self.phase_profile.is_empty() {
            let phases: Vec<msim_json::Value> = self
                .phase_profile
                .iter()
                .map(|p| {
                    msim_json::Value::object()
                        .with("phase", p.phase.as_str())
                        .with("calls", p.calls)
                        .with("nanos", p.nanos)
                })
                .collect();
            v = v.with("phase_profile", msim_json::Value::Array(phases));
        }
        v
    }
}

/// Directory for bench JSON artifacts: `MSP_BENCH_DIR`, else
/// `target/bench/` under the workspace root.
pub fn bench_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("MSP_BENCH_DIR") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        return dir;
    }
    let mut base = std::env::current_dir().unwrap_or_else(|_| ".".into());
    for _ in 0..4 {
        if base.join("target").is_dir() && base.join("Cargo.toml").is_file() {
            break;
        }
        if let Some(parent) = base.parent() {
            base = parent.to_path_buf();
        }
    }
    let dir = base.join("target").join("bench");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes `BENCH_<report.name>.json` into [`bench_dir`], returning the
/// path.
pub fn write_bench_json(report: &BenchReport) -> std::io::Result<std::path::PathBuf> {
    let path = bench_dir().join(format!("BENCH_{}.json", report.name));
    std::fs::write(&path, msim_json::to_string_pretty(&report.to_json()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            envs: vec![Env::Testbed],
            competitors: vec![Competitor::MsPlayer, Competitor::WifiOnly],
            schedulers: vec![SchedulerKind::Harmonic, SchedulerKind::Ratio],
            chunk_kb: vec![256],
            prebuffer_secs: 10.0,
            runs: 2,
        }
    }

    #[test]
    fn expansion_order_is_stable() {
        let spec = tiny_spec();
        let a = spec.cells();
        let b = spec.cells();
        assert_eq!(a, b);
        // MSPlayer × 2 schedulers × 2 seeds + WifiOnly × 1 × 2 seeds.
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].scheduler, SchedulerKind::Harmonic);
        assert_eq!(a[4].workload.name, "testbed/WiFi");
        assert_eq!(a[4].scheduler, SchedulerKind::Fixed);
    }

    #[test]
    fn parallel_merge_is_cell_ordered() {
        let cells = tiny_spec().cells();
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn single_thread_parallel_equals_serial() {
        let cells = tiny_spec().cells();
        assert_eq!(run_serial(&cells), run_parallel(&cells, 1));
    }

    #[test]
    fn host_reuse_matches_one_shot_cells() {
        let cells = tiny_spec().cells();
        let shared = run_serial(&cells);
        let one_shot: Vec<CellResult> = cells.iter().map(Cell::run).collect();
        assert_eq!(shared, one_shot, "host reuse changed a session");
    }

    #[test]
    fn cell_kinds_group_and_count() {
        let cells = tiny_spec().cells();
        let results = run_serial(&cells);
        let kinds = cell_kind_stats(&results);
        assert_eq!(kinds.len(), 3, "2 MSPlayer schedulers + WiFi/Fixed");
        assert_eq!(kinds[0].kind, "testbed/MSPlayer/Harmonic");
        assert!(kinds.iter().all(|k| k.cells == 2));
        for k in &kinds {
            assert!(k.p50_ms <= k.p95_ms && k.p95_ms <= k.p99_ms, "{k:?}");
            assert!(k.total_ms > 0.0);
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&s, 0.50), 2.0);
        assert_eq!(percentile_sorted(&s, 0.95), 4.0);
        assert_eq!(percentile_sorted(&s, 1.0), 4.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn watchdog_times_out_slow_cell_and_sweep_continues() {
        let cells = tiny_spec().cells();
        // A 1ns budget: every cell (real sessions take microseconds at
        // least) becomes a typed TimedOut row instead of hanging.
        let opts = SweepOptions {
            cell_budget: Some(Duration::from_nanos(1)),
        };
        let results = run_serial_with(&cells, &opts);
        assert_eq!(results.len(), cells.len(), "sweep kept going");
        let first = &results[0];
        assert!(first.timed_out());
        assert!(first.metrics().is_none());
        match &first.outcome {
            CellOutcome::TimedOut { budget_secs, repro } => {
                assert!(*budget_secs > 0.0);
                assert!(repro.contains("sweep --workload"), "{repro}");
                assert!(repro.contains("--scheduler"), "{repro}");
                assert!(repro.contains("--seed"), "{repro}");
            }
            other => panic!("{other:?}"),
        }
        // The report counts the watchdog rows instead of crashing on them.
        let (report, _) = BenchReport::measure("wd", 1, || run_serial_with(&cells, &opts));
        assert_eq!(report.timed_out, report.sessions);
        assert!(msim_json::to_string(&report.to_json()).contains("\"timed_out\""));
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let cells = tiny_spec().cells();
        let opts = SweepOptions {
            cell_budget: Some(Duration::from_secs(120)),
        };
        assert_eq!(run_serial(&cells), run_serial_with(&cells, &opts));
        assert_eq!(run_serial(&cells), run_parallel_with(&cells, 3, &opts));
    }

    #[test]
    fn bench_report_math() {
        let r = BenchReport {
            name: "t".into(),
            threads: 2,
            sessions: 10,
            events: 1000,
            wall_secs: 2.0,
            serial_wall_secs: Some(4.0),
            cell_kinds: vec![CellKindStats {
                kind: "testbed/MSPlayer/Harmonic".into(),
                cells: 10,
                p50_ms: 1.0,
                p95_ms: 2.0,
                p99_ms: 3.0,
                total_ms: 12.0,
            }],
            timed_out: 0,
            phase_profile: vec![PhaseProfile {
                phase: "session.stream".into(),
                calls: 10,
                nanos: 2_000_000,
            }],
        };
        assert_eq!(r.sessions_per_sec(), 5.0);
        assert_eq!(r.events_per_sec(), 500.0);
        assert_eq!(r.speedup(), Some(2.0));
        let json = msim_json::to_string(&r.to_json());
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"cell_kinds\""));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"phase_profile\""));
        assert!(json.contains("\"session.stream\""));
    }

    #[test]
    fn profile_phases_attributes_instrumented_spans() {
        let cells = tiny_spec().cells();
        let profile = profile_phases(&cells);
        let stream = profile
            .iter()
            .find(|p| p.phase == "session.stream")
            .expect("session.stream phase instrumented");
        // ≥ rather than ==: the registry is process-global, and sibling
        // tests running sessions concurrently also land spans while the
        // profiled window is open.
        assert!(stream.calls >= cells.len() as u64, "one stream span/cell");
        assert!(stream.nanos > 0);
        // Sorted hottest-first.
        for w in profile.windows(2) {
            assert!(w[0].nanos >= w[1].nanos);
        }
    }
}
