//! The frozen sampling-stream fingerprint corpus.
//!
//! The vectorized sampling engine (stream epoch 2 — draw tables filled in
//! blocks through the `vmath` kernels) was the one sanctioned redefinition
//! of the repo's deviate bit-streams. This module pins the *new* streams:
//! a committed JSON artifact maps `(workload, scheduler, chunk, seed)` to
//! the [`digest_metrics`] of the session it produces. Three properties are
//! asserted over it (see `tests/sampling_corpus.rs`):
//!
//! 1. **Frozen replay** — every committed digest reproduces on the block
//!    (production) path, so any accidental stream drift is a red test, not
//!    a silent figure change;
//! 2. **Differential modes** — the scalar-reference fill path
//!    ([`DeviateMode::ScalarRef`]) digests identically, proving the block
//!    math *is* the scalar math and not an approximation of it;
//! 3. **Batching invisibility** — warm-host [`run_batch`] runs digest
//!    identically to fresh-host serial runs.
//!
//! The corpus covers every builtin workload, so a new workload registered
//! without a fingerprint shows up as a coverage failure rather than
//! sliding in unpinned.
//!
//! [`run_batch`]: msplayer_core::sim::SessionHost::run_batch

use crate::cluster::merge::{digest_metrics, hex_u64, parse_hex_u64};
use crate::workload::WorkloadRegistry;
use msim_core::rng::DeviateMode;
use msim_json::Value;
use msplayer_core::config::SchedulerKind;
use msplayer_core::sim::SessionHost;
use std::path::{Path, PathBuf};

/// One pinned `(workload grid point, seed) → digest` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Workload name (registry key).
    pub workload: String,
    /// Scheduler label ([`SchedulerKind::name`]).
    pub scheduler: String,
    /// Base chunk size in KB.
    pub chunk_kb: u64,
    /// Session seed.
    pub seed: u64,
    /// [`digest_metrics`] of the completed session.
    pub digest: u64,
}

/// Seeds pinned per workload. Two seeds keep the corpus sensitive to
/// seed-dependent paths (the first seed of a workload often exercises a
/// different scheduler trajectory than the second) at ~2× the cost.
pub const SEEDS_PER_WORKLOAD: u64 = 2;

/// The committed corpus location: `tests/sampling_corpus/fingerprints.json`
/// at the workspace root (sibling of the chaos corpus).
pub fn corpus_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("sampling_corpus")
        .join("fingerprints.json")
}

/// The grid points the corpus pins: for every builtin workload, its first
/// (scheduler, chunk) cell at [`SEEDS_PER_WORKLOAD`] seeds. One cell per
/// workload keeps the corpus fast enough for tier-1 while still covering
/// every path profile, player family, and stop condition in the registry.
pub fn corpus_points(reg: &WorkloadRegistry) -> Vec<(String, SchedulerKind, u64, u64)> {
    let mut points = Vec::new();
    for w in reg.specs() {
        let scheduler = w.schedulers[0];
        let chunk_kb = w.chunk_kb[0];
        for run in 0..SEEDS_PER_WORKLOAD {
            points.push((w.name.clone(), scheduler, chunk_kb, w.seed(run)));
        }
    }
    points
}

/// Runs one grid point to completion on a fresh host and digests its
/// metrics. `mode` selects the deviate fill path for every stochastic
/// stream of every link in the session.
pub fn digest_point(
    reg: &WorkloadRegistry,
    workload: &str,
    scheduler: SchedulerKind,
    chunk_kb: u64,
    seed: u64,
    mode: DeviateMode,
) -> u64 {
    let w = reg
        .by_name(workload)
        .unwrap_or_else(|| panic!("workload {workload:?} not in registry"));
    let mut spec = w.session_spec(scheduler, chunk_kb, seed);
    for path in &mut spec.paths {
        path.profile = path.profile.clone().with_deviate_mode(mode);
    }
    let mut host = SessionHost::new(w.service.clone());
    let metrics = host.run(&spec).expect("registered workloads validate");
    digest_metrics(&metrics)
}

/// Computes the full corpus in the given mode (fresh host per session).
pub fn compute_fingerprints(reg: &WorkloadRegistry, mode: DeviateMode) -> Vec<Fingerprint> {
    corpus_points(reg)
        .into_iter()
        .map(|(workload, scheduler, chunk_kb, seed)| {
            let digest = digest_point(reg, &workload, scheduler, chunk_kb, seed, mode);
            Fingerprint {
                workload,
                scheduler: scheduler.name().to_string(),
                chunk_kb,
                seed,
                digest,
            }
        })
        .collect()
}

/// Serialises the corpus. Seeds and digests travel as fixed-width hex
/// (the JSON layer stores numbers as `f64`, exact only to 2^53).
pub fn to_json(fps: &[Fingerprint]) -> Value {
    let rows: Vec<Value> = fps
        .iter()
        .map(|f| {
            Value::object()
                .with("workload", f.workload.as_str())
                .with("scheduler", f.scheduler.as_str())
                .with("chunk_kb", f.chunk_kb)
                .with("seed", hex_u64(f.seed))
                .with("digest", hex_u64(f.digest))
        })
        .collect();
    Value::object()
        .with("schema", "sampling-fingerprints")
        .with("stream_epoch", msim_core::rng::STREAM_EPOCH as u64)
        .with("fingerprints", Value::Array(rows))
}

/// Parses a corpus artifact, rejecting rows recorded against a different
/// stream epoch — replaying those *should* fail, so failing at load time
/// gives the actionable message instead of a wall of digest mismatches.
pub fn from_json(v: &Value) -> Result<Vec<Fingerprint>, String> {
    let epoch = v
        .get("stream_epoch")
        .and_then(Value::as_u64)
        .ok_or("corpus missing stream_epoch")?;
    if epoch != msim_core::rng::STREAM_EPOCH as u64 {
        return Err(format!(
            "corpus stream_epoch {epoch} != current {} — regenerate with \
             `cargo test -p msplayer-bench --test sampling_corpus -- --ignored`",
            msim_core::rng::STREAM_EPOCH
        ));
    }
    let rows = v
        .get("fingerprints")
        .and_then(Value::as_array)
        .ok_or("corpus missing fingerprints array")?;
    rows.iter()
        .map(|r| {
            let text = |k: &str| {
                r.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("fingerprint row missing {k:?}"))
            };
            Ok(Fingerprint {
                workload: text("workload")?,
                scheduler: text("scheduler")?,
                chunk_kb: r
                    .get("chunk_kb")
                    .and_then(Value::as_u64)
                    .ok_or("fingerprint row missing chunk_kb")?,
                seed: parse_hex_u64(&text("seed")?)?,
                digest: parse_hex_u64(&text("digest")?)?,
            })
        })
        .collect()
}

/// Loads the committed corpus from [`corpus_path`].
pub fn load_corpus() -> Result<Vec<Fingerprint>, String> {
    let path = corpus_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = msim_json::from_str(&text).map_err(|e| format!("{}: {e:?}", path.display()))?;
    from_json(&v)
}

/// Writes `fps` to [`corpus_path`] (the `--ignored` regenerator).
pub fn save_corpus(fps: &[Fingerprint]) -> std::io::Result<PathBuf> {
    let path = corpus_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, msim_json::to_string_pretty(&to_json(fps)))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_round_trips_through_json() {
        let fps = vec![Fingerprint {
            workload: "testbed/MSPlayer".into(),
            scheduler: "Harmonic".into(),
            chunk_kb: 256,
            seed: 0x1234_5678_9abc_def0,
            digest: 0xfeed_face_cafe_beef,
        }];
        let parsed = from_json(&to_json(&fps)).expect("round trip");
        assert_eq!(parsed, fps);
    }

    #[test]
    fn stale_epoch_is_rejected_at_load() {
        let stale = to_json(&[]).with("stream_epoch", 1u64);
        let err = from_json(&stale).expect_err("stale epoch must not load");
        assert!(err.contains("stream_epoch"), "unhelpful error: {err}");
    }
}
