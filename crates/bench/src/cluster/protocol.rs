//! The coordinator/worker wire protocol: line-delimited JSON frames.
//!
//! One frame per line, no embedded newlines (guaranteed by the canonical
//! `msim_json` rendering). The byte transport is
//! [`msim_testbed::lines`] — a child's stdio in spawned mode, TCP in
//! multi-host mode; the frames are identical either way.
//!
//! Robustness posture: [`Frame::from_line`] returns `Err` on anything
//! malformed, and the coordinator treats a malformed frame from a worker
//! the same as a crash — requeue its lease, replace the worker. A
//! protocol error is evidence of a sick peer, not something to limp
//! through.

use super::manifest::SweepManifest;
use super::merge::CellRow;
use msim_json::Value;

/// One protocol frame, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Coordinator → worker: identity, plus the manifest the worker must
    /// expand (the first frame a worker receives).
    Hello {
        /// The id assigned to this worker.
        worker: u64,
        /// The sweep manifest (workers expand it themselves; leases then
        /// carry only shard indices).
        manifest: SweepManifest,
    },
    /// Coordinator → worker: run one shard.
    Lease {
        /// Shard index into [`SweepManifest::shards`].
        shard: u64,
        /// 1-based attempt number (for provenance and duplicate
        /// resolution).
        attempt: u64,
    },
    /// Coordinator → worker: drain and exit 0.
    Shutdown,

    /// Worker → coordinator: manifest expanded, ready for leases.
    Ready {
        /// Echo of the assigned worker id.
        worker: u64,
    },
    /// Worker → coordinator: still alive mid-shard (sent between cells).
    Heartbeat {
        /// Worker id.
        worker: u64,
        /// The shard being worked.
        shard: u64,
        /// Cells completed so far in this shard.
        cells_done: u64,
        /// Telemetry counter *deltas* since the worker's previous
        /// heartbeat, as `(metric key, increment)` pairs. Empty when the
        /// worker has telemetry off; omitted from the wire line then, so
        /// old coordinators parse new workers and vice versa.
        counters: Vec<(String, u64)>,
    },
    /// Worker → coordinator: shard complete.
    Done {
        /// Worker id.
        worker: u64,
        /// The completed shard.
        shard: u64,
        /// Echo of the lease's attempt number.
        attempt: u64,
        /// Wall-clock microseconds the shard took (provenance only).
        wall_us: u64,
        /// One row per cell of the shard, in shard order.
        rows: Vec<CellRow>,
    },
    /// Worker → coordinator: shard failed in a way the worker survived
    /// (e.g. manifest expansion error). The coordinator requeues.
    Fail {
        /// Worker id.
        worker: u64,
        /// The failed shard.
        shard: u64,
        /// Human-readable reason.
        message: String,
    },
}

impl Frame {
    /// Serializes to one wire line (single-line JSON, no newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Frame::Hello { worker, manifest } => Value::object()
                .with("type", "hello")
                .with("worker", *worker)
                .with("manifest", manifest.to_json()),
            Frame::Lease { shard, attempt } => Value::object()
                .with("type", "lease")
                .with("shard", *shard)
                .with("attempt", *attempt),
            Frame::Shutdown => Value::object().with("type", "shutdown"),
            Frame::Ready { worker } => Value::object()
                .with("type", "ready")
                .with("worker", *worker),
            Frame::Heartbeat {
                worker,
                shard,
                cells_done,
                counters,
            } => {
                let mut obj = Value::object()
                    .with("type", "heartbeat")
                    .with("worker", *worker)
                    .with("shard", *shard)
                    .with("cells_done", *cells_done);
                if !counters.is_empty() {
                    obj = obj.with(
                        "counters",
                        Value::Array(
                            counters
                                .iter()
                                .map(|(k, d)| Value::object().with("k", k.as_str()).with("d", *d))
                                .collect(),
                        ),
                    );
                }
                obj
            }
            Frame::Done {
                worker,
                shard,
                attempt,
                wall_us,
                rows,
            } => Value::object()
                .with("type", "done")
                .with("worker", *worker)
                .with("shard", *shard)
                .with("attempt", *attempt)
                .with("wall_us", *wall_us)
                .with(
                    "rows",
                    Value::Array(rows.iter().map(CellRow::to_json).collect()),
                ),
            Frame::Fail {
                worker,
                shard,
                message,
            } => Value::object()
                .with("type", "fail")
                .with("worker", *worker)
                .with("shard", *shard)
                .with("message", message.as_str()),
        };
        msim_json::to_string(&v)
    }

    /// Parses one wire line.
    pub fn from_line(line: &str) -> Result<Frame, String> {
        let v = msim_json::from_str(line).map_err(|e| format!("unparseable frame: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("frame has no type")?;
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ty} frame: missing integer {k:?}"))
        };
        match ty {
            "hello" => Ok(Frame::Hello {
                worker: num("worker")?,
                manifest: SweepManifest::from_json(
                    v.get("manifest").ok_or("hello frame: missing manifest")?,
                )?,
            }),
            "lease" => Ok(Frame::Lease {
                shard: num("shard")?,
                attempt: num("attempt")?,
            }),
            "shutdown" => Ok(Frame::Shutdown),
            "ready" => Ok(Frame::Ready {
                worker: num("worker")?,
            }),
            "heartbeat" => {
                let counters = match v.get("counters") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|item| {
                            let k = item
                                .get("k")
                                .and_then(Value::as_str)
                                .ok_or("heartbeat counter: missing k")?;
                            let d = item
                                .get("d")
                                .and_then(Value::as_u64)
                                .ok_or("heartbeat counter: missing d")?;
                            Ok::<_, String>((k.to_string(), d))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    // Absent field: an older worker, or telemetry off.
                    _ => Vec::new(),
                };
                Ok(Frame::Heartbeat {
                    worker: num("worker")?,
                    shard: num("shard")?,
                    cells_done: num("cells_done")?,
                    counters,
                })
            }
            "done" => {
                let rows = match v.get("rows") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(CellRow::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("done frame: missing rows array".into()),
                };
                Ok(Frame::Done {
                    worker: num("worker")?,
                    shard: num("shard")?,
                    attempt: num("attempt")?,
                    wall_us: num("wall_us")?,
                    rows,
                })
            }
            "fail" => Ok(Frame::Fail {
                worker: num("worker")?,
                shard: num("shard")?,
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => Err(format!("unknown frame type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let line = f.to_line();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Frame::from_line(&line).unwrap(), f);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            worker: 3,
            manifest: SweepManifest::smoke(),
        });
        roundtrip(Frame::Lease {
            shard: 9,
            attempt: 2,
        });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Ready { worker: 3 });
        roundtrip(Frame::Heartbeat {
            worker: 1,
            shard: 4,
            cells_done: 2,
            counters: Vec::new(),
        });
        roundtrip(Frame::Heartbeat {
            worker: 1,
            shard: 4,
            cells_done: 2,
            counters: vec![
                ("msp_sessions_total".into(), 12),
                ("msp_admission_checks_total{verdict=\"ok\"}".into(), 7),
            ],
        });
        roundtrip(Frame::Done {
            worker: 1,
            shard: 4,
            attempt: 1,
            wall_us: 123_456,
            rows: vec![
                CellRow {
                    index: 16,
                    digest: u64::MAX,
                },
                CellRow {
                    index: 17,
                    digest: 1,
                },
            ],
        });
        roundtrip(Frame::Fail {
            worker: 2,
            shard: 0,
            message: "manifest: unknown workload".into(),
        });
    }

    #[test]
    fn heartbeat_without_counters_parses_as_empty() {
        // Wire line from a pre-telemetry worker.
        let f =
            Frame::from_line("{\"type\":\"heartbeat\",\"worker\":1,\"shard\":4,\"cells_done\":2}")
                .unwrap();
        assert_eq!(
            f,
            Frame::Heartbeat {
                worker: 1,
                shard: 4,
                cells_done: 2,
                counters: Vec::new(),
            }
        );
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"lease\"}",
            "{\"type\":\"done\",\"worker\":1,\"shard\":0,\"attempt\":1,\"wall_us\":1}",
            "{\"type\":\"done\",\"worker\":1,\"shard\":0,\"attempt\":1,\"wall_us\":1,\"rows\":[[0]]}",
            "{\"type\":\"hello\",\"worker\":0}",
        ] {
            assert!(Frame::from_line(bad).is_err(), "{bad:?}");
        }
    }
}
