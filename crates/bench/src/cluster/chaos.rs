//! Self-chaos for the sweep service: seeded fault schedules, replayable
//! violations.
//!
//! Each case derives — deterministically from one seed — a cluster shape
//! (worker count, shard size), a fault schedule (which workers crash,
//! stall, corrupt, or duplicate, and when), and optionally a simulated
//! coordinator crash (`stop_after`) followed by a checkpoint resume. The
//! case then runs a **real** coordinator with **real** worker processes
//! and asserts the two invariants the service stakes its name on:
//!
//! 1. the merged artifact is bit-identical to the serial in-process
//!    reference, and
//! 2. no duplicate completion ever disagreed about a digest.
//!
//! Violating seeds are recorded as JSON cases under
//! `tests/cluster_corpus/` (same pattern as the session-level chaos
//! corpus) and replayed forever by `tests/cluster_corpus.rs`.

use super::coordinator::{run_cluster, serial_artifact, ClusterConfig, Transport};
use super::manifest::SweepManifest;
use super::merge::fnv1a;
use super::worker::WorkerChaos;
use msim_json::Value;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Salt for the cluster chaos seed stream (distinct from both the bench
/// seeds and the session-chaos explorer).
pub const CLUSTER_CHAOS_SALT: u64 = 0xC1_05_7E_12;

/// The seed of cluster-chaos iteration `i` in rotation `window`.
pub fn cluster_seed(window: u64, i: u64) -> u64 {
    crate::BASE_SEED
        ^ CLUSTER_CHAOS_SALT
        ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ window.wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One replayable cluster-chaos case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterChaosCase {
    /// The deriving seed.
    pub seed: u64,
    /// Worker count.
    pub workers: u64,
    /// Cells per shard.
    pub shard_cells: u64,
    /// Per-initial-worker chaos directives (`""` = clean worker); see
    /// [`WorkerChaos::parse`].
    pub directives: Vec<String>,
    /// Simulated coordinator crash: abort after this many completions,
    /// then resume from the checkpoint.
    pub stop_after: Option<u64>,
    /// Violations observed when recorded (documentation; replay
    /// re-derives its own verdict).
    pub recorded_violations: Vec<String>,
}

impl ClusterChaosCase {
    /// Derives the full fault schedule from a seed.
    pub fn from_seed(seed: u64) -> ClusterChaosCase {
        let mut s = seed;
        let workers = 2 + splitmix(&mut s) % 2; // 2–3
        let shard_cells = 2 + splitmix(&mut s) % 4; // 2–5
        let directives = (0..workers)
            .map(|_| {
                let roll = splitmix(&mut s);
                let lease = roll >> 8 & 1;
                match roll % 6 {
                    0 => String::new(), // clean worker
                    1 => WorkerChaos {
                        lease,
                        kind: super::worker::Misbehavior::CrashAfterCells(splitmix(&mut s) % 3),
                    }
                    .to_directive(),
                    2 => WorkerChaos {
                        lease,
                        kind: super::worker::Misbehavior::StallMs(900),
                    }
                    .to_directive(),
                    3 => WorkerChaos {
                        lease,
                        kind: super::worker::Misbehavior::CorruptDone,
                    }
                    .to_directive(),
                    4 => WorkerChaos {
                        lease,
                        kind: super::worker::Misbehavior::TruncateDone,
                    }
                    .to_directive(),
                    _ => WorkerChaos {
                        lease,
                        kind: super::worker::Misbehavior::DuplicateDone,
                    }
                    .to_directive(),
                }
            })
            .collect();
        let stop_after = match splitmix(&mut s) % 3 {
            0 => Some(1 + splitmix(&mut s) % 2),
            _ => None,
        };
        ClusterChaosCase {
            seed,
            workers,
            shard_cells,
            directives,
            stop_after,
            recorded_violations: Vec::new(),
        }
    }

    /// The manifest every chaos case sweeps: one 2-path workload, 2 runs
    /// — small enough that a case (including its serial reference) runs
    /// in well under a second of compute.
    pub fn manifest(&self) -> SweepManifest {
        SweepManifest {
            name: format!("cluster_chaos_{:016x}", self.seed),
            workloads: vec!["testbed/MSPlayer".into()],
            runs: 2,
            shard_cells: self.shard_cells,
        }
    }

    /// Serializes to the corpus JSON object (seed as hex — JSON numbers
    /// are lossy above 2^53).
    pub fn to_json(&self) -> Value {
        let directives: Vec<Value> = self
            .directives
            .iter()
            .map(|d| Value::String(d.clone()))
            .collect();
        let violations: Vec<Value> = self
            .recorded_violations
            .iter()
            .map(|v| Value::String(v.clone()))
            .collect();
        let mut v = Value::object()
            .with("seed", format!("{:016x}", self.seed).as_str())
            .with("workers", self.workers)
            .with("shard_cells", self.shard_cells)
            .with("directives", Value::Array(directives))
            .with("recorded_violations", Value::Array(violations));
        if let Some(stop) = self.stop_after {
            v = v.with("stop_after", stop);
        }
        v
    }

    /// Parses a corpus JSON object.
    pub fn from_json(v: &Value) -> Result<ClusterChaosCase, String> {
        let seed = u64::from_str_radix(
            v.get("seed")
                .and_then(Value::as_str)
                .ok_or("cluster case: missing seed")?,
            16,
        )
        .map_err(|e| format!("cluster case: bad seed: {e}"))?;
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("cluster case: missing integer {k:?}"))
        };
        let strings = |k: &str| -> Result<Vec<String>, String> {
            match v.get(k) {
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("cluster case: non-string entry in {k:?}"))
                    })
                    .collect(),
                Some(_) => Err(format!("cluster case: {k:?} is not an array")),
                None => Ok(Vec::new()),
            }
        };
        Ok(ClusterChaosCase {
            seed,
            workers: num("workers")?,
            shard_cells: num("shard_cells")?,
            directives: strings("directives")?,
            stop_after: v.get("stop_after").and_then(Value::as_u64),
            recorded_violations: strings("recorded_violations")?,
        })
    }

    /// Deterministic corpus filename (FNV-1a over the canonical JSON of
    /// the identifying fields).
    pub fn file_name(&self) -> String {
        let mut identity = self.clone();
        identity.recorded_violations = Vec::new();
        let h = fnv1a(msim_json::to_string(&identity.to_json()).into_bytes());
        format!("case-{h:016x}.json")
    }
}

/// The verdict of one cluster-chaos run.
#[derive(Clone, Debug)]
pub struct ClusterCaseOutcome {
    /// Invariant violations (empty = the cluster held).
    pub violations: Vec<String>,
    /// Fault counters aggregated across the run (and the resume run, if
    /// any) — lets callers assert the schedule actually exercised faults.
    pub stats: super::coordinator::ClusterStats,
}

impl ClusterCaseOutcome {
    /// Did the case hold every invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one case against a real coordinator + worker processes.
/// `program` is the `msplayer-sweepd` binary (tests pass
/// `env!("CARGO_BIN_EXE_msplayer-sweepd")`); `scratch` hosts the
/// checkpoint journal and is wiped first.
pub fn run_cluster_case(
    case: &ClusterChaosCase,
    program: &Path,
    scratch: &Path,
) -> ClusterCaseOutcome {
    let mut violations = Vec::new();
    let mut stats = super::coordinator::ClusterStats::default();
    let manifest = case.manifest();
    let _ = std::fs::remove_dir_all(scratch);
    if let Err(e) = std::fs::create_dir_all(scratch) {
        return ClusterCaseOutcome {
            violations: vec![format!("setup: scratch dir: {e}")],
            stats,
        };
    }
    let checkpoint = scratch.join("journal.ndjson");

    let worker_chaos: Vec<Option<WorkerChaos>> = case
        .directives
        .iter()
        .map(|d| {
            if d.is_empty() {
                None
            } else {
                WorkerChaos::parse(d).ok()
            }
        })
        .collect();
    let mut config = ClusterConfig::new(manifest.clone(), program.to_path_buf());
    config.workers = case.workers as usize;
    config.lease_timeout = Duration::from_millis(400);
    config.backoff_base = Duration::from_millis(10);
    config.backoff_cap = Duration::from_millis(100);
    config.max_attempts = 4;
    config.checkpoint = Some(checkpoint.clone());
    config.worker_chaos = worker_chaos;
    config.stop_after_shards = case.stop_after;
    config.transport = Transport::Spawn {
        program: program.to_path_buf(),
    };

    // Phase 1: the chaotic run (possibly aborted early to simulate a
    // coordinator crash).
    let first = match run_cluster(&config) {
        Ok(outcome) => outcome,
        Err(e) => {
            return ClusterCaseOutcome {
                violations: vec![format!("coordinator error: {e}")],
                stats,
            }
        }
    };
    violations.extend(first.violations.iter().cloned());
    accumulate(&mut stats, &first.stats);
    let final_outcome = if case.stop_after.is_some() {
        if first.completed {
            // stop_after larger than the shard count: the run finished
            // before the simulated crash could fire. Fine — use it.
            first
        } else {
            // Phase 2: resume from the checkpoint with clean workers.
            config.stop_after_shards = None;
            config.worker_chaos = Vec::new();
            match run_cluster(&config) {
                Ok(outcome) => {
                    violations.extend(outcome.violations.iter().cloned());
                    accumulate(&mut stats, &outcome.stats);
                    if outcome.stats.resumed_shards == 0 && stats.inline_runs == 0 {
                        violations
                            .push("resume: second run restored nothing from the checkpoint".into());
                    }
                    outcome
                }
                Err(e) => {
                    return ClusterCaseOutcome {
                        violations: vec![format!("resume coordinator error: {e}")],
                        stats,
                    }
                }
            }
        }
    } else {
        first
    };

    if !final_outcome.completed {
        violations.push("cluster run did not complete".into());
    }
    // The headline invariant: merged bytes == serial bytes.
    match (&final_outcome.artifact, serial_artifact(&manifest)) {
        (Some(merged), Ok(serial)) => {
            let merged_bytes = msim_json::to_string_pretty(merged);
            let serial_bytes = msim_json::to_string_pretty(&serial);
            if merged_bytes != serial_bytes {
                violations.push(format!(
                    "crash-identical merge violated: cluster artifact diverges from the \
                     serial reference (cluster {} bytes, serial {} bytes)",
                    merged_bytes.len(),
                    serial_bytes.len()
                ));
            }
        }
        (None, _) => {} // already reported as not-completed
        (_, Err(e)) => violations.push(format!("serial reference failed: {e}")),
    }

    let _ = std::fs::remove_dir_all(scratch);
    ClusterCaseOutcome { violations, stats }
}

fn accumulate(
    into: &mut super::coordinator::ClusterStats,
    from: &super::coordinator::ClusterStats,
) {
    into.reassignments += from.reassignments;
    into.duplicates += from.duplicates;
    into.protocol_errors += from.protocol_errors;
    into.respawns += from.respawns;
    into.inline_runs += from.inline_runs;
    into.resumed_shards += from.resumed_shards;
}

/// The committed cluster-chaos corpus directory:
/// `tests/cluster_corpus/` at the workspace root.
pub fn cluster_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("cluster_corpus")
}

/// Writes one case into `dir` under its deterministic filename.
pub fn record_cluster_case(case: &ClusterChaosCase, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(case.file_name());
    std::fs::write(&path, msim_json::to_string_pretty(&case.to_json()))?;
    Ok(path)
}

/// Loads every `*.json` case in `dir`, sorted by filename. A missing
/// directory is an empty corpus.
pub fn load_cluster_corpus(dir: &Path) -> Result<Vec<(PathBuf, ClusterChaosCase)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = msim_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let case =
            ClusterChaosCase::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

/// Sweeps `seeds` deterministic cases, recording violators when asked.
/// Returns (cases run, violating cases). Stops between cases when a
/// shutdown was requested, returning what it finished.
pub fn explore_cluster(
    window: u64,
    seeds: u64,
    program: &Path,
    scratch_base: &Path,
    record: bool,
) -> (u64, Vec<ClusterChaosCase>) {
    let mut violating = Vec::new();
    let mut run = 0;
    for i in 0..seeds {
        if msim_testbed::shutdown_requested() {
            return (run, violating);
        }
        let seed = cluster_seed(window, i);
        let case = ClusterChaosCase::from_seed(seed);
        let scratch = scratch_base.join(format!("case-{seed:016x}"));
        let outcome = run_cluster_case(&case, program, &scratch);
        run += 1;
        if !outcome.ok() {
            let mut found = case;
            found.recorded_violations = outcome.violations;
            if record {
                let _ = record_cluster_case(&found, &cluster_corpus_dir());
            }
            violating.push(found);
        }
    }
    (run, violating)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_deterministic() {
        let a = ClusterChaosCase::from_seed(42);
        let b = ClusterChaosCase::from_seed(42);
        assert_eq!(a, b);
        assert_ne!(a, ClusterChaosCase::from_seed(43));
        assert!(a.workers >= 2 && a.workers <= 3);
        assert!(a.shard_cells >= 2 && a.shard_cells <= 5);
        assert_eq!(a.directives.len(), a.workers as usize);
        for d in a.directives.iter().filter(|d| !d.is_empty()) {
            WorkerChaos::parse(d).expect("derived directives parse");
        }
    }

    #[test]
    fn case_json_roundtrip_and_stable_file_name() {
        // A seed above 2^53 exercises the hex path.
        let mut case = ClusterChaosCase::from_seed(u64::MAX - 12345);
        case.recorded_violations = vec!["crash-identical merge violated".into()];
        let back = ClusterChaosCase::from_json(
            &msim_json::from_str(&msim_json::to_string_pretty(&case.to_json())).unwrap(),
        )
        .unwrap();
        assert_eq!(back, case);
        // Recorded violations don't perturb the identity filename.
        let mut clean = case.clone();
        clean.recorded_violations = Vec::new();
        assert_eq!(case.file_name(), clean.file_name());
        assert_ne!(case.file_name(), ClusterChaosCase::from_seed(7).file_name());
    }

    #[test]
    fn seed_stream_rotates_by_window() {
        assert_eq!(cluster_seed(0, 5), cluster_seed(0, 5));
        assert_ne!(cluster_seed(0, 5), cluster_seed(1, 5));
        assert_ne!(cluster_seed(0, 5), cluster_seed(0, 6));
    }
}
